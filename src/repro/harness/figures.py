"""One experiment per evaluation figure of the paper (Figures 9–20).

Every function returns a :class:`~repro.harness.report.FigureResult`
whose rows regenerate the paper's series.  ``quick=True`` (the default,
used by tests and the standard benchmark run) shrinks query counts and
input rates so a figure completes in seconds; ``quick=False`` runs the
paper-scale query counts (minutes, still a single Python process).

Scale disclaimer: absolute tuples/second are one Python process, nothing
like a 4-node JVM cluster; EXPERIMENTS.md compares *shapes* (who wins,
how curves bend), never absolute numbers.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.harness.report import FigureResult
from repro.harness.runner import (
    RunnerConfig,
    run_scenario,
    sustainable_query_search,
)
from repro.workloads.datagen import DataGenerator
from repro.workloads.querygen import QueryGenerator
from repro.workloads.scenarios import ScheduledRequest, WorkloadSchedule

NODE_COUNTS = (4, 8)
KINDS = ("join", "agg")


def _sc1_configs(quick: bool) -> List[Tuple[float, int]]:
    """(queries/second, query parallelism) — the paper's SC1 points."""
    if quick:
        return [(1.0, 10), (5.0, 30), (20.0, 100)]
    return [(1.0, 20), (10.0, 60), (100.0, 1000)]


def _sc2_configs(quick: bool) -> List[Tuple[int, int]]:
    """(queries per batch, batch interval seconds) — SC2 points."""
    if quick:
        return [(5, 5), (10, 5), (15, 5)]
    return [(10, 10), (30, 10), (50, 10)]


def _rate(quick: bool) -> float:
    # Full mode runs the paper's query counts; the input rate stays at
    # simulation scale (a pure-Python data path is ~100x a JVM cluster).
    return 400.0 if quick else 500.0


def _duration(quick: bool) -> float:
    return 12.0 if quick else 30.0


# ---------------------------------------------------------------------------
# Figure 9 — SC1 slowest & overall data throughput
# ---------------------------------------------------------------------------

def fig09_sc1_throughput(quick: bool = True) -> FigureResult:
    """Figure 9: slowest and overall data throughput for SC1."""
    result = FigureResult(
        figure_id="Figure 9",
        title="SC1 data throughput (slowest and overall)",
        columns=(
            "nodes", "kind", "config", "sut",
            "slowest_tps", "overall_tps", "sustained",
        ),
        paper_expectation=(
            "Flink slightly ahead of AStream for a single query; slowest "
            "throughput falls with query parallelism at a flattening "
            "slope; overall throughput rises sharply with parallelism; "
            "8 nodes ≈ √2 × 4 nodes; Flink cannot sustain ad-hoc "
            "multi-query workloads."
        ),
    )
    rate = _rate(quick)
    duration = _duration(quick)
    for nodes in NODE_COUNTS:
        for kind in KINDS:
            for sut in ("flink", "astream"):
                metrics = run_scenario(
                    RunnerConfig(
                        sut=sut, nodes=nodes,
                        input_rate_tps=rate, duration_s=duration,
                    ),
                    scenario="single",
                    kind=kind,
                )
                result.add(
                    nodes=nodes, kind=kind, config="single query", sut=sut,
                    slowest_tps=metrics.slowest_data_throughput_tps,
                    overall_tps=metrics.overall_data_throughput_tps,
                    sustained=metrics.sustained,
                )
            for qps, parallelism in _sc1_configs(quick):
                metrics = run_scenario(
                    RunnerConfig(
                        sut="astream", nodes=nodes,
                        input_rate_tps=rate, duration_s=duration,
                    ),
                    scenario="sc1",
                    queries_per_second=qps,
                    query_parallelism=parallelism,
                    kind=kind,
                )
                result.add(
                    nodes=nodes, kind=kind,
                    config=f"{qps:g}q/s {parallelism}qp", sut="astream",
                    slowest_tps=metrics.slowest_data_throughput_tps,
                    overall_tps=metrics.overall_data_throughput_tps,
                    sustained=metrics.sustained,
                )
    # The Flink-cannot-sustain data point: the mildest ad-hoc config.
    qps, parallelism = _sc1_configs(quick)[0]
    flink_adhoc = run_scenario(
        RunnerConfig(
            sut="flink", nodes=4, input_rate_tps=rate, duration_s=duration,
        ),
        scenario="sc1",
        queries_per_second=qps,
        query_parallelism=parallelism,
        kind="join",
    )
    result.add(
        nodes=4, kind="join", config=f"{qps:g}q/s {parallelism}qp",
        sut="flink",
        slowest_tps=flink_adhoc.slowest_data_throughput_tps,
        overall_tps=flink_adhoc.overall_data_throughput_tps,
        sustained=_flink_adhoc_sustained(flink_adhoc),
    )
    return result


def _flink_adhoc_sustained(metrics) -> bool:
    """Flink 'sustains' an ad-hoc workload only if every query deployed
    within bounded latency — unbounded deployment queueing is the
    paper's ever-increasing-latency failure."""
    if not metrics.sustained:
        return False
    latencies = metrics.report.deployment_latencies_ms
    if not latencies:
        return True
    # Queueing failure: latencies grow monotonically past 10 s.
    return max(latencies) < 10_000


# ---------------------------------------------------------------------------
# Figure 10 — deployment latency timeline, 1 q/s up to 20 queries
# ---------------------------------------------------------------------------

def _attach_first_result_lags(
    arrangements: bool, late_queries: int = 5
) -> List[Tuple[int, int]]:
    """(request ms, first-result lag ms) for queries deployed 1/s late.

    A base aggregation runs from t=0; identical late twins attach every
    second starting at 2 s.  The lag is deterministic event time — the
    late query's first result window end minus its creation time — so
    the warm-attach advantage (arranged history backfilled at submit)
    is machine-independent.  The ISSUE 10 axis on Figure 10: deployment
    latency says when the query is *live*, this says when it first
    *answers*.
    """
    from repro.core.engine import AStreamEngine, EngineConfig
    from repro.core.query import AggregationQuery, TruePredicate, WindowSpec

    engine = AStreamEngine(
        EngineConfig(
            streams=("A",),
            parallelism=1,
            shared_arrangements=arrangements,
        )
    )
    def make_query():
        return AggregationQuery(
            stream="A",
            predicate=TruePredicate(),
            window_spec=WindowSpec.tumbling(1_000),
        )

    data = DataGenerator(seed=11)
    engine.submit(make_query(), now_ms=0)  # the base query arranges history
    created: List[Tuple[str, int]] = []
    horizon = (late_queries + 4) * 1_000
    for step in range(horizon // 250):
        now = step * 250
        engine.watermark(now)
        if now >= 2_000 and now % 1_000 == 0 and len(created) < late_queries:
            query = make_query()
            engine.submit(query, now_ms=now)
            created.append((query.query_id, now))
        engine.tick(now)
        for offset in range(20):
            engine.push("A", now + offset * 12, data.next_tuple())
    engine.watermark(horizon + 10_000)
    lags = []
    for query_id, created_ms in created:
        results = engine.canonical_results(query_id)
        first = min(output.timestamp for output in results)
        lags.append((created_ms, first - created_ms))
    engine.shutdown()
    return lags


def fig10_deployment_timeline(quick: bool = True) -> FigureResult:
    """Figure 10: per-query deployment latency, Flink vs AStream."""
    parallelism = 10 if quick else 20
    result = FigureResult(
        figure_id="Figure 10",
        title=f"Deployment latency timeline, 1 q/s up to {parallelism} queries",
        columns=("sut", "query_index", "requested_at_s", "latency_s"),
        paper_expectation=(
            "Flink latency climbs roughly linearly (to ~80 s at 20 "
            "queries; 910 s summed); AStream pays ~7 s for the first "
            "deployment then stays within the 1 s changelog timeout."
        ),
    )
    for sut in ("flink", "astream"):
        metrics = run_scenario(
            RunnerConfig(
                sut=sut, nodes=4, input_rate_tps=100.0,
                duration_s=parallelism + 5.0,
            ),
            scenario="sc1",
            queries_per_second=1.0,
            query_parallelism=parallelism,
            kind="join",
        )
        for index, (requested_at, latency) in enumerate(
            metrics.deployment_timeline(), start=1
        ):
            result.add(
                sut=sut, query_index=index,
                requested_at_s=requested_at / 1000.0,
                latency_s=latency / 1000.0,
            )
    # Arrangements axis (ISSUE 10): for the same 1 q/s cadence, the
    # event-time lag until each late query's *first result* — a cold
    # deploy waits out a full window of fresh data, a warm attach
    # serves backfilled pre-creation windows at submit time.
    for label, arrangements in (
        ("astream-cold-attach", False),
        ("astream-warm-attach", True),
    ):
        lags = _attach_first_result_lags(arrangements)
        for index, (requested_ms, lag_ms) in enumerate(lags, start=1):
            result.add(
                sut=label, query_index=index,
                requested_at_s=requested_ms / 1000.0,
                latency_s=lag_ms / 1000.0,
            )
    return result


# ---------------------------------------------------------------------------
# Figure 11 — SC1 deployment latency bars
# ---------------------------------------------------------------------------

def fig11_sc1_deployment(quick: bool = True) -> FigureResult:
    """Figure 11: mean ad-hoc query deployment latency for SC1."""
    result = FigureResult(
        figure_id="Figure 11",
        title="SC1 query deployment latency",
        columns=("nodes", "kind", "config", "sut", "mean_deploy_s", "max_deploy_s"),
        paper_expectation=(
            "Flink single-query deployment ≈ 5 s; AStream single query "
            "pays the one-off topology deployment; higher query rates "
            "amortise changelog generation, so 100 q/s → 1000 qp has "
            "*lower* per-query latency than 1 q/s → 20 qp."
        ),
    )
    rate = 100.0
    for nodes in NODE_COUNTS:
        for kind in KINDS:
            for sut in ("astream", "flink"):
                metrics = run_scenario(
                    RunnerConfig(
                        sut=sut, nodes=nodes, input_rate_tps=rate,
                        duration_s=8.0,
                    ),
                    scenario="single",
                    kind=kind,
                )
                result.add(
                    nodes=nodes, kind=kind, config="single query", sut=sut,
                    mean_deploy_s=metrics.mean_deployment_latency_ms / 1000.0,
                    max_deploy_s=metrics.max_deployment_latency_ms / 1000.0,
                )
            for qps, parallelism in _sc1_configs(quick):
                duration = parallelism / qps + 6.0
                # Arrangements axis (ISSUE 10): deployment latency must
                # stay within the changelog bound with warm attach on —
                # the backfill fold happens at submit, so a regression
                # here means attach got expensive.
                for config_label, overrides in (
                    (f"{qps:g}q/s {parallelism}qp", {}),
                    (
                        f"{qps:g}q/s {parallelism}qp +arr",
                        {"shared_arrangements": True},
                    ),
                ):
                    metrics = run_scenario(
                        RunnerConfig(
                            sut="astream", nodes=nodes, input_rate_tps=rate,
                            duration_s=duration,
                            engine_overrides=overrides,
                        ),
                        scenario="sc1",
                        queries_per_second=qps,
                        query_parallelism=parallelism,
                        kind=kind,
                    )
                    result.add(
                        nodes=nodes, kind=kind,
                        config=config_label, sut="astream",
                        mean_deploy_s=metrics.mean_deployment_latency_ms / 1000.0,
                        max_deploy_s=metrics.max_deployment_latency_ms / 1000.0,
                    )
    return result


# ---------------------------------------------------------------------------
# Figure 12 — SC1 average event-time latency
# ---------------------------------------------------------------------------

def fig12_sc1_latency(quick: bool = True) -> FigureResult:
    """Figure 12: average event-time latency for SC1."""
    result = FigureResult(
        figure_id="Figure 12",
        title="SC1 average event-time latency",
        columns=("nodes", "kind", "config", "sut", "latency_ms"),
        paper_expectation=(
            "Join latency exceeds aggregation latency; latency grows "
            "with query parallelism but stays sustainable; Flink ad-hoc "
            "latency exceeds 8 s and keeps growing (not sustainable)."
        ),
    )
    rate = _rate(quick)
    for nodes in NODE_COUNTS:
        for kind in KINDS:
            for sut in ("astream", "flink"):
                metrics = run_scenario(
                    RunnerConfig(
                        sut=sut, nodes=nodes, input_rate_tps=rate,
                        duration_s=_duration(quick),
                    ),
                    scenario="single",
                    kind=kind,
                )
                result.add(
                    nodes=nodes, kind=kind, config="single query", sut=sut,
                    latency_ms=metrics.mean_event_time_latency_ms,
                )
            for qps, parallelism in _sc1_configs(quick):
                metrics = run_scenario(
                    RunnerConfig(
                        sut="astream", nodes=nodes, input_rate_tps=rate,
                        duration_s=_duration(quick),
                    ),
                    scenario="sc1",
                    queries_per_second=qps,
                    query_parallelism=parallelism,
                    kind=kind,
                )
                result.add(
                    nodes=nodes, kind=kind,
                    config=f"{qps:g}q/s {parallelism}qp", sut="astream",
                    latency_ms=metrics.mean_event_time_latency_ms,
                )
    return result


# ---------------------------------------------------------------------------
# Figures 13/14/15 — SC2 latency, throughput, deployment latency
# ---------------------------------------------------------------------------

def _sc2_metrics(quick: bool, nodes: int, kind: str, per_batch: int, interval: int):
    batches = 3 if quick else 6
    return run_scenario(
        RunnerConfig(
            sut="astream", nodes=nodes, input_rate_tps=_rate(quick),
            duration_s=batches * interval + 4.0,
        ),
        scenario="sc2",
        queries_per_batch=per_batch,
        batch_interval_s=interval,
        batches=batches,
        kind=kind,
    )


def fig13_sc2_latency(quick: bool = True) -> FigureResult:
    """Figure 13: average event-time latency for SC2."""
    result = FigureResult(
        figure_id="Figure 13",
        title="SC2 average event-time latency",
        columns=("nodes", "kind", "config", "latency_ms"),
        paper_expectation=(
            "SC2 latency is lower than SC1's: the workload churns but "
            "does not accumulate queries, so most queries are "
            "short-running (all under ~1 s in the paper)."
        ),
    )
    for nodes in NODE_COUNTS:
        for kind in KINDS:
            for per_batch, interval in _sc2_configs(quick):
                metrics = _sc2_metrics(quick, nodes, kind, per_batch, interval)
                result.add(
                    nodes=nodes, kind=kind,
                    config=f"{per_batch}q/{interval}s",
                    latency_ms=metrics.mean_event_time_latency_ms,
                )
    return result


def fig14_sc2_throughput(quick: bool = True) -> FigureResult:
    """Figure 14: slowest and overall data throughput for SC2."""
    result = FigureResult(
        figure_id="Figure 14",
        title="SC2 data throughput (slowest and overall)",
        columns=("nodes", "kind", "config", "slowest_tps", "overall_tps"),
        paper_expectation=(
            "SC2's slowest throughput exceeds SC1's at comparable query "
            "counts: fewer simultaneously active queries and smaller "
            "bitsets; AStream sustained ≥10× Flink's rate before the "
            "Flink runs were stopped."
        ),
    )
    for nodes in NODE_COUNTS:
        for kind in KINDS:
            for per_batch, interval in _sc2_configs(quick):
                metrics = _sc2_metrics(quick, nodes, kind, per_batch, interval)
                result.add(
                    nodes=nodes, kind=kind,
                    config=f"{per_batch}q/{interval}s",
                    slowest_tps=metrics.slowest_data_throughput_tps,
                    overall_tps=metrics.overall_data_throughput_tps,
                )
    return result


def fig15_sc2_deployment(quick: bool = True) -> FigureResult:
    """Figure 15: ad-hoc query deployment latency for SC2."""
    result = FigureResult(
        figure_id="Figure 15",
        title="SC2 query deployment latency",
        columns=("nodes", "kind", "config", "mean_deploy_s", "max_deploy_s"),
        paper_expectation=(
            "SC2 deployment latency exceeds SC1's: continuous creation "
            "and deletion generates changelogs throughout the run."
        ),
    )
    for nodes in NODE_COUNTS:
        for kind in KINDS:
            for per_batch, interval in _sc2_configs(quick):
                metrics = _sc2_metrics(quick, nodes, kind, per_batch, interval)
                result.add(
                    nodes=nodes, kind=kind,
                    config=f"{per_batch}q/{interval}s",
                    mean_deploy_s=metrics.mean_deployment_latency_ms / 1000.0,
                    max_deploy_s=metrics.max_deployment_latency_ms / 1000.0,
                )
    return result


# ---------------------------------------------------------------------------
# Figure 16 — complex query timeline
# ---------------------------------------------------------------------------

def fig16_complex_timeline(quick: bool = True) -> FigureResult:
    """Figure 16: throughput / latency / query count under complex queries.

    Three phases as in §4.7: sharp query-count increases, a gradual
    drain-and-refill, then fluctuation.  Complex queries pipeline a
    selection, an n-ary windowed join, and a windowed aggregation.
    """
    streams = ("A", "B", "C") if quick else ("A", "B", "C", "D", "E")
    arity = len(streams) - 1
    phase_s = 8 if quick else 60
    generator = QueryGenerator(
        streams=streams, seed=11, window_max_seconds=3, max_join_arity=arity
    )
    requests: List[ScheduledRequest] = []
    active: List = []

    def create(count: int, at_s: float) -> None:
        for _ in range(count):
            query = generator.complex_query()
            active.append(query)
            requests.append(
                ScheduledRequest(at_ms=int(at_s * 1000), kind="create", query=query)
            )

    def delete(count: int, at_s: float) -> None:
        for _ in range(min(count, len(active))):
            query = active.pop(0)
            requests.append(
                ScheduledRequest(
                    at_ms=int(at_s * 1000), kind="delete", query_id=query.query_id
                )
            )

    # Phase 1: two sharp increases.
    create(5, 1.0)
    create(10, phase_s * 0.5)
    # Phase 2: gradual drain then gradual refill.
    for index in range(6):
        delete(2, phase_s * (1.0 + index * 0.1))
    for index in range(6):
        create(2, phase_s * (1.8 + index * 0.1))
    # Phase 3: fluctuation.
    for index in range(4):
        create(3, phase_s * (2.6 + index * 0.2))
        delete(3, phase_s * (2.7 + index * 0.2))
    schedule = WorkloadSchedule(name="complex timeline", requests=requests)

    config = RunnerConfig(
        sut="astream",
        nodes=4,
        streams=streams,
        max_join_arity=arity,
        input_rate_tps=150.0 if quick else 400.0,
        duration_s=phase_s * 3.5,
    )
    metrics = run_scenario(config, schedule=schedule, kind="complex")
    result = FigureResult(
        figure_id="Figure 16",
        title="Complex ad-hoc queries: throughput, latency, query count",
        columns=("time_s", "throughput_tps", "latency_ms", "query_count"),
        paper_expectation=(
            "Sharp query-count increases leave event-time latency "
            "roughly stable (no plan change); slowest throughput drops "
            "with query throughput; fluctuations keep both stable."
        ),
    )
    rate_series = dict(metrics.report.step_rate_series)
    queries_series = metrics.report.active_queries_series
    # Bucket the timestamped latency samples to the same 2 s grid.
    latency_buckets: Dict[int, List[float]] = {}
    for now_ms, lag_ms in metrics.qos.latency_series:
        latency_buckets.setdefault(now_ms - now_ms % 2_000, []).append(lag_ms)
    for time_ms, count in queries_series:
        if time_ms % 2_000:
            continue
        bucket = latency_buckets.get(time_ms - 2_000, [])
        result.add(
            time_s=time_ms / 1000.0,
            throughput_tps=rate_series.get(time_ms, 0.0),
            latency_ms=sum(bucket) / len(bucket) if bucket else 0.0,
            query_count=count,
        )
    result.notes = (
        f"mean event-time latency {metrics.engine_latency_ms:.0f} ms; "
        f"sustained={metrics.sustained}"
    )
    return result


# ---------------------------------------------------------------------------
# Figure 17 — slowest throughput vs query parallelism (log-log)
# ---------------------------------------------------------------------------

def fig17_parallelism_sweep(quick: bool = True) -> FigureResult:
    """Figure 17: slowest data throughput across query parallelism."""
    parallelisms = (1, 4, 16, 64) if quick else (1, 10, 100, 1000)
    result = FigureResult(
        figure_id="Figure 17",
        title="Slowest data throughput vs query parallelism (SC1)",
        columns=("nodes", "kind", "query_parallelism", "slowest_tps"),
        paper_expectation=(
            "Log-log decline whose slope flattens with more queries: "
            "the probability of sharing a tuple rises with the query "
            "count, so each additional query costs less."
        ),
    )
    for nodes in NODE_COUNTS:
        for kind in KINDS:
            for parallelism in parallelisms:
                metrics = run_scenario(
                    RunnerConfig(
                        sut="astream", nodes=nodes,
                        input_rate_tps=200.0, duration_s=10.0,
                    ),
                    scenario="sc1",
                    queries_per_second=max(parallelism / 4.0, 1.0),
                    query_parallelism=parallelism,
                    kind=kind,
                )
                result.add(
                    nodes=nodes, kind=kind, query_parallelism=parallelism,
                    slowest_tps=metrics.slowest_data_throughput_tps,
                )
    return result


def fig17_measured_scaling(
    quick: bool = True, worker_counts: Tuple[int, ...] = (1, 2, 4)
) -> FigureResult:
    """Figure 17 companion: *measured* scaling on the process backend.

    Runs the same SC1 workload at each worker count on
    ``backend="process"`` and reports two scaling views per run:

    * ``speedup_vs_1`` — wall-clock service throughput relative to one
      worker.  This is real parallel speed-up, but it only materialises
      when the machine has at least ``workers`` cores;
    * ``cpu_scaling_vs_1`` — how the per-worker CPU time per record
      divides as shards are added.  Sharding is effective exactly when
      each worker burns ~1/N of the single-worker CPU, and that holds
      regardless of how many cores the host can run concurrently — on a
      single-core container it is the only honest scaling signal.

    The workload is query-heavy (shard CPU dominates the coordinator's
    partition+pickle cost) and ships no delivery samples, the regime the
    backend is built for.
    """
    import os

    parallelism = 48 if quick else 160
    result = FigureResult(
        figure_id="Figure 17 (measured)",
        title="Measured process-backend scaling (SC1 aggregation)",
        columns=(
            "workers", "kind", "service_tps", "speedup_vs_1",
            "worker_cpu_s", "cpu_scaling_vs_1", "cores",
        ),
        paper_expectation=(
            "Per-worker CPU per record divides ~linearly with the "
            "worker count; wall-clock service throughput follows when "
            "the host has as many cores as workers."
        ),
    )
    cores = os.cpu_count() or 1
    base_tps = None
    base_cpu = None
    for workers in worker_counts:
        before = os.times()
        metrics = run_scenario(
            RunnerConfig(
                sut="astream",
                backend="process",
                workers=workers,
                deliver_sample_every=0,
                retain_results=False,
                input_rate_tps=250.0 if quick else 400.0,
                duration_s=8.0 if quick else 10.0,
                batch_size=64,
            ),
            scenario="sc1",
            queries_per_second=float(parallelism),
            query_parallelism=parallelism,
            kind="agg",
        )
        after = os.times()
        # run_scenario shut the pool down, so the workers are reaped and
        # their CPU time has been folded into the parent's children
        # counters.
        children_cpu = (
            (after.children_user - before.children_user)
            + (after.children_system - before.children_system)
        )
        worker_cpu = children_cpu / workers
        service_tps = metrics.report.service_rate_tps
        if base_tps is None:
            base_tps, base_cpu = service_tps, worker_cpu
        result.add(
            workers=workers,
            kind="agg",
            service_tps=service_tps,
            speedup_vs_1=service_tps / base_tps if base_tps else 0.0,
            worker_cpu_s=worker_cpu,
            cpu_scaling_vs_1=base_cpu / worker_cpu if worker_cpu else 0.0,
            cores=cores,
        )
    return result


# ---------------------------------------------------------------------------
# Figure 18 — overhead proportions of AStream components
# ---------------------------------------------------------------------------

def fig18_overhead(quick: bool = True) -> FigureResult:
    """Figure 18: component overhead share and total sharing overhead."""
    parallelisms = (1, 2, 8, 32) if quick else (1, 10, 100, 400, 1000)
    result = FigureResult(
        figure_id="Figure 18",
        title="AStream overhead: component proportions and total",
        columns=(
            "query_parallelism",
            "queryset_gen_pct", "bitset_ops_pct", "router_copy_pct",
            "total_overhead_pct",
        ),
        paper_expectation=(
            "With few queries the three components weigh about equally; "
            "with many, router data copy dominates.  Total sharing "
            "overhead ≈ 9 % for a single query, under 2 % beyond a few "
            "hundred queries."
        ),
    )
    for parallelism in parallelisms:
        scenario_kwargs = dict(
            scenario="sc1",
            queries_per_second=max(parallelism / 4.0, 1.0),
            query_parallelism=parallelism,
            kind="join",
        )
        metrics = run_scenario(
            RunnerConfig(
                sut="astream", nodes=4, input_rate_tps=300.0,
                duration_s=10.0, profile=True,
            ),
            **scenario_kwargs,
        )
        stats = metrics.engine.component_stats()
        # Overhead components per Figure 18a: query-set generation
        # (selection tagging), bitset operations (shared-op filtering),
        # and the router's per-query data copy.
        queryset_ns = stats["selection_ns"]
        bitset_ns = stats["shared_op_ns"] * _bitset_share(stats)
        router_ns = stats["router_ns"]
        overhead_ns = queryset_ns + bitset_ns + router_ns
        if overhead_ns <= 0:
            continue
        # Figure 18b's definition: the cost of ad-hoc sharing support,
        # measured as AStream's throughput deficit against the same
        # queries running unshared with free deployment.  Sharing wins
        # outright past a handful of queries, so the overhead bottoms
        # out at zero.
        unshared = run_scenario(
            RunnerConfig(
                sut="flink-free", nodes=4, input_rate_tps=300.0,
                duration_s=10.0,
            ),
            **scenario_kwargs,
        )
        astream_rate = metrics.report.service_rate_tps
        unshared_rate = unshared.report.service_rate_tps
        total_overhead_pct = 0.0
        if unshared_rate > 0:
            total_overhead_pct = max(
                0.0, 100.0 * (1.0 - astream_rate / unshared_rate)
            )
        result.add(
            query_parallelism=parallelism,
            queryset_gen_pct=100.0 * queryset_ns / overhead_ns,
            bitset_ops_pct=100.0 * bitset_ns / overhead_ns,
            router_copy_pct=100.0 * router_ns / overhead_ns,
            total_overhead_pct=total_overhead_pct,
        )
    return result


def _bitset_share(stats: Dict[str, float]) -> float:
    """Fraction of shared-operator time attributable to bitset filtering.

    Shared-operator profile time covers slice management, the actual
    join/fold work, and bitset filtering; the bitset share is estimated
    from the operation counters (a bitset AND is cheap relative to a
    join probe, weighted 1:4)."""
    bitset_ops = stats["bitset_ops"]
    probes = max(stats["results_emitted"], 1.0)
    return min(1.0, bitset_ops / (bitset_ops + 4.0 * probes))


# ---------------------------------------------------------------------------
# Figure 19 — impact of ad-hoc queries on long-running queries
# ---------------------------------------------------------------------------

def fig19_adhoc_impact(quick: bool = True) -> FigureResult:
    """Figure 19: slowest throughput of standing queries as ad-hoc join
    queries come and go (4-node cluster)."""
    standing_counts = (5, 15, 30) if quick else (10, 50, 100)
    adhoc_counts = (0, 5, 10) if quick else (0, 10, 20, 50)
    result = FigureResult(
        figure_id="Figure 19",
        title="Effect of ad-hoc join queries on standing queries",
        columns=("scenario", "standing", "adhoc", "slowest_tps"),
        paper_expectation=(
            "Adding ad-hoc queries barely affects large standing "
            "populations; small populations in SC1 suffer more than in "
            "SC2 (SC2's churn keeps bitsets and the active set small)."
        ),
    )
    for scenario_name in ("SC1", "SC2"):
        for standing in standing_counts:
            for adhoc in adhoc_counts:
                metrics = _fig19_run(scenario_name, standing, adhoc, quick)
                result.add(
                    scenario=scenario_name, standing=standing, adhoc=adhoc,
                    slowest_tps=metrics.slowest_data_throughput_tps,
                )
    return result


def _fig19_run(scenario_name: str, standing: int, adhoc: int, quick: bool):
    """Best-of-two runs: single quick runs carry ±20 % wall-clock noise,
    which would swamp the few-percent effects this figure measures."""
    first = _fig19_run_once(scenario_name, standing, adhoc, quick)
    second = _fig19_run_once(scenario_name, standing, adhoc, quick)
    return max(
        (first, second), key=lambda m: m.slowest_data_throughput_tps
    )


def _fig19_run_once(scenario_name: str, standing: int, adhoc: int, quick: bool):
    generator = QueryGenerator(streams=("A", "B"), seed=5, window_max_seconds=3)
    duration = 12.0
    requests: List[ScheduledRequest] = []
    # Standing long-running join queries, all up at t=0.
    standing_queries = [generator.join_query() for _ in range(standing)]
    for query in standing_queries:
        requests.append(ScheduledRequest(at_ms=0, kind="create", query=query))
    if scenario_name == "SC2":
        # Churn half the standing population mid-run.
        for index, query in enumerate(standing_queries[: standing // 2]):
            requests.append(
                ScheduledRequest(
                    at_ms=6_000 + index, kind="delete", query_id=query.query_id
                )
            )
            replacement = generator.join_query()
            requests.append(
                ScheduledRequest(
                    at_ms=6_000 + index, kind="create", query=replacement
                )
            )
    # Ad-hoc burst in the middle of the run, deleted before the end.
    for index in range(adhoc):
        query = generator.join_query()
        requests.append(
            ScheduledRequest(at_ms=4_000 + index, kind="create", query=query)
        )
        requests.append(
            ScheduledRequest(
                at_ms=9_000 + index, kind="delete", query_id=query.query_id
            )
        )
    schedule = WorkloadSchedule(
        name=f"fig19 {scenario_name} {standing}+{adhoc}", requests=requests
    )
    return run_scenario(
        RunnerConfig(
            sut="astream", nodes=4,
            input_rate_tps=200.0 if quick else 500.0, duration_s=duration,
        ),
        schedule=schedule,
    )


# ---------------------------------------------------------------------------
# Figure 20 — scalability with node count
# ---------------------------------------------------------------------------

def fig20_scalability(quick: bool = True) -> FigureResult:
    """Figure 20: sustainable ad-hoc query count vs cluster size."""
    node_counts = (2, 4, 8) if quick else (2, 4, 8, 16)
    result = FigureResult(
        figure_id="Figure 20",
        title="Sustainable ad-hoc queries vs node count",
        columns=("nodes", "scenario", "sustainable_queries"),
        paper_expectation=(
            "Sustainable query count grows with node count; SC2 scales "
            "better than SC1 (periodic deletion keeps active sets and "
            "bitsets small)."
        ),
    )
    high = 128 if quick else 1024
    for nodes in node_counts:
        for scenario_name in ("sc1", "sc2"):
            config = RunnerConfig(
                sut="astream", nodes=nodes,
                input_rate_tps=150.0, duration_s=6.0,
            )
            count = sustainable_query_search(
                config,
                scenario=scenario_name,
                kind="join",
                high=high,
                min_throughput_tps=25_000.0,
            )
            result.add(
                nodes=nodes, scenario=scenario_name.upper(),
                sustainable_queries=count,
            )
    return result


ALL_FIGURES = {
    "fig09": fig09_sc1_throughput,
    "fig10": fig10_deployment_timeline,
    "fig11": fig11_sc1_deployment,
    "fig12": fig12_sc1_latency,
    "fig13": fig13_sc2_latency,
    "fig14": fig14_sc2_throughput,
    "fig15": fig15_sc2_deployment,
    "fig16": fig16_complex_timeline,
    "fig17": fig17_parallelism_sweep,
    "fig17_measured": fig17_measured_scaling,
    "fig18": fig18_overhead,
    "fig19": fig19_adhoc_impact,
    "fig20": fig20_scalability,
}
