"""Metric views over driver reports (paper §4.3).

The paper evaluates SUTs on:

* **Event-time latency** — tuple event time → emission from the SUT,
  including time queued in the driver's tuple FIFO;
* **Sustainable throughput** — the highest input rate the SUT can serve
  without ever-growing queues;
* **Query deployment latency** — user request → query actually live;
* **Slowest data throughput** — the minimum sustainable throughput among
  active queries (a cloud owner's minimum-QoS view);
* **Overall data throughput** — the sum over active queries;
* **Query throughput** — query creations/deletions per second served
  with bounded deployment latency.

:class:`ScenarioMetrics` derives all of these from a
:class:`~repro.workloads.driver.RunReport` plus the cluster's speed-up
factor, so figure code never recomputes formulas.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from repro.workloads.driver import RunReport


@dataclass
class ScenarioMetrics:
    """§4.3 metrics computed from one run."""

    report: RunReport
    speedup: float = 1.0
    """Cluster scaling multiplier relative to the in-process measurement."""
    engine: Any = None
    """The SUT engine, for component-level introspection (Figure 18)."""
    qos: Any = None
    """The QoS monitor, for latency-timeline figures (Figure 16)."""

    # -- data throughput -------------------------------------------------------

    @property
    def slowest_data_throughput_tps(self) -> float:
        """Minimum sustainable per-query input rate.

        Every active query observes the full input stream, so the slowest
        query's sustainable rate equals the measured end-to-end service
        rate of the shared (or forked) pipeline.
        """
        return self.report.slowest_throughput_tps(self.speedup)

    @property
    def overall_data_throughput_tps(self) -> float:
        """Sum of all active queries' data throughputs."""
        return self.report.overall_throughput_tps(self.speedup)

    # -- latency --------------------------------------------------------------------

    @property
    def mean_event_time_latency_ms(self) -> float:
        """Mean event-time latency including modelled queue waiting."""
        return self.report.total_latency_ms()

    @property
    def engine_latency_ms(self) -> float:
        """In-engine event-time latency (window residence + processing)."""
        return self.report.mean_event_latency_ms

    @property
    def p99_event_time_latency_ms(self) -> float:
        """99th percentile of sampled in-engine latency."""
        return self.report.p99_event_latency_ms

    # -- deployment ---------------------------------------------------------------------

    @property
    def mean_deployment_latency_ms(self) -> float:
        """Average create-request deployment latency."""
        return self.report.mean_deployment_latency_ms()

    @property
    def max_deployment_latency_ms(self) -> float:
        """Worst create-request deployment latency."""
        if not self.report.deployment_latencies_ms:
            return 0.0
        return max(self.report.deployment_latencies_ms)

    @property
    def total_deployment_latency_ms(self) -> float:
        """Sum over requests (the paper quotes 910 s for Flink, Fig. 10)."""
        return sum(self.report.deployment_latencies_ms)

    def deployment_timeline(self) -> List[Tuple[int, float]]:
        """(request time, deployment latency) pairs — Figure 10's series."""
        return list(self.report.deployment_series)

    # -- query throughput -----------------------------------------------------------------

    @property
    def query_throughput_qps(self) -> float:
        """Query creations served per second of virtual run time."""
        duration_s = self._duration_s()
        if duration_s <= 0:
            return 0.0
        return len(self.report.deployment_latencies_ms) / duration_s

    # -- fault tolerance ------------------------------------------------------------------

    @property
    def recovery_count(self) -> int:
        """Supervised recoveries performed during the run."""
        return len(self.report.recovery_events)

    @property
    def mean_mttr_ms(self) -> float:
        """Mean time-to-recovery over the run's recovery events."""
        events = self.report.recovery_events
        if not events:
            return 0.0
        return sum(event.mttr_ms for event in events) / len(events)

    @property
    def total_replayed_elements(self) -> int:
        """Log elements replayed across all recoveries (replay overhead)."""
        return sum(event.replayed_elements for event in self.report.recovery_events)

    @property
    def dead_letter_count(self) -> int:
        """Requests/tuples the driver gave up on after retries."""
        return len(self.report.dead_letters)

    # -- sustainability ------------------------------------------------------------------------

    @property
    def sustained(self) -> bool:
        """True when the run stayed within queueing bounds and no failure."""
        return self.report.sustained

    @property
    def failure(self) -> Optional[str]:
        """Failure description for unsustainable runs."""
        return self.report.failure

    def _duration_s(self) -> float:
        if not self.report.active_queries_series:
            return 0.0
        return self.report.active_queries_series[-1][0] / 1_000.0
