"""Experiment harness: metrics, runner, and one experiment per figure.

* :mod:`repro.harness.metrics` — the §4.3 metric definitions (slowest /
  overall data throughput, query throughput, deployment latency,
  event-time latency) as computed views over driver reports;
* :mod:`repro.harness.runner` — builds SUTs, runs scenarios, searches
  for sustainable query counts;
* :mod:`repro.harness.figures` — experiment definitions for Figures
  9–20 of the paper, each returning a :class:`~repro.harness.report.FigureResult`;
* :mod:`repro.harness.report` — ASCII-table rendering and the
  EXPERIMENTS.md row format.

Scale note: experiments run at simulation scale (seconds of virtual
time, 10³–10⁵ tuples) — the shapes reproduce, the absolute numbers are a
single Python process, not a 4/8-node JVM cluster.  Multi-node numbers
are derived via the calibrated cluster speed-up model.
"""

from repro.harness.metrics import ScenarioMetrics
from repro.harness.report import FigureResult, render_table
from repro.harness.runner import (
    RunnerConfig,
    run_scenario,
    sustainable_query_search,
)

__all__ = [
    "FigureResult",
    "RunnerConfig",
    "ScenarioMetrics",
    "render_table",
    "run_scenario",
    "sustainable_query_search",
]
