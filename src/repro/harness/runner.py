"""Experiment runner: build SUTs, run scenarios, search sustainability.

Every figure experiment funnels through :func:`run_scenario`, which
wires a generator, a schedule, an engine (one of three SUT kinds), the
QoS monitor, and the driver together:

* ``"astream"`` — the shared engine with the full deployment model;
* ``"flink"`` — the query-at-a-time baseline with its real (queued,
  multi-second) deployment model — this is the paper's Flink;
* ``"flink-free"`` — the baseline with deployment costs zeroed out.
  The paper cannot measure multi-query Flink data throughput because
  Flink fails outright; this SUT isolates the *data-path* sharing
  benefit for the overhead analyses (Figures 17–19) by letting every
  baseline query start instantly.

Engines run with operator ``parallelism=1`` in-process; multi-node
throughput is derived through the calibrated cluster speed-up
(√(nodes/4), matching the paper's own 4→8-node ratios).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.baseline import BaselineDeploymentModel, QueryAtATimeEngine
from repro.core.engine import AStreamEngine, EngineConfig
from repro.core.parallel_engine import ProcessAStreamEngine
from repro.core.qos import QoSMonitor
from repro.minispe.cluster import ClusterSpec, SimulatedCluster
from repro.harness.metrics import ScenarioMetrics
from repro.workloads.driver import (
    AStreamAdapter,
    BaselineAdapter,
    Driver,
    DriverConfig,
)
from repro.workloads.querygen import QueryGenerator
from repro.workloads.scenarios import WorkloadSchedule, sc1_schedule, sc2_schedule


@dataclass
class RunnerConfig:
    """One scenario run's full parameterisation."""

    sut: str = "astream"  # astream | flink | flink-free
    backend: str = "inline"
    """Execution backend for the astream SUT: ``inline`` runs operators
    in-process; ``process`` shards them across worker processes (real
    parallelism instead of the modelled cluster speed-up)."""
    workers: int = 2
    """Worker-process count for ``backend="process"``."""
    deliver_sample_every: int = 1
    """Process backend only: ship every Nth delivery sample over IPC for
    QoS latency (0 disables delivery shipping entirely — throughput
    figures that never read latency avoid the per-result IPC cost)."""
    nodes: int = 4
    streams: Tuple[str, ...] = ("A", "B")
    max_join_arity: int = 1
    input_rate_tps: float = 1_000.0
    duration_s: float = 12.0
    step_ms: int = 250
    watermark_interval_ms: int = 500
    latency_sample_every: int = 64
    seed: int = 1
    window_max_seconds: int = 3
    profile: bool = False
    retain_results: bool = False
    """Figures only need counts; retaining payloads wastes memory."""
    batch_size: int = 1
    """Data-path micro-batch size (see ``DriverConfig.batch_size``)."""
    observe: bool = False
    """Enable the runtime telemetry layer (``repro.obs``): metrics
    registry, sampled span tracing, structured event log.  Off by
    default — the data path then pays a single ``is None`` check."""
    obs_sample_every: int = 32
    """Trace one source push in N when ``observe`` is on."""
    engine_overrides: dict = field(default_factory=dict)

    def cluster(self) -> SimulatedCluster:
        """A fresh simulated cluster for this run."""
        return SimulatedCluster(ClusterSpec(nodes=self.nodes))

    def generator(self) -> QueryGenerator:
        """A fresh deterministic query generator for this run."""
        return QueryGenerator(
            streams=self.streams,
            seed=self.seed,
            window_max_seconds=self.window_max_seconds,
        )

    def driver_config(self) -> DriverConfig:
        """The matching driver configuration."""
        return DriverConfig(
            input_rate_tps=self.input_rate_tps,
            duration_s=self.duration_s,
            step_ms=self.step_ms,
            watermark_interval_ms=self.watermark_interval_ms,
            latency_sample_every=self.latency_sample_every,
            batch_size=self.batch_size,
        )


def build_sut(config: RunnerConfig, qos: QoSMonitor):
    """Construct the engine + adapter pair for a runner config."""
    cluster = config.cluster()
    if config.sut == "astream":
        engine_config = EngineConfig(
            streams=config.streams,
            max_join_arity=config.max_join_arity,
            parallelism=1,
            retain_results=config.retain_results,
            profile=config.profile,
            observe=config.observe,
            obs_sample_every=config.obs_sample_every,
            **config.engine_overrides,
        )
        if config.backend == "process":
            # Real worker processes: slot accounting stays on the
            # simulated cluster, but mode="process" pins speedup() to
            # 1.0 so the modelled scale-out never multiplies measured
            # throughput.
            engine = ProcessAStreamEngine(
                engine_config,
                cluster=SimulatedCluster(
                    ClusterSpec(nodes=config.nodes), mode="process"
                ),
                on_deliver=(
                    qos.on_deliver if config.deliver_sample_every else None
                ),
                workers=config.workers,
                deliver_sample_every=config.deliver_sample_every,
            )
            return engine, AStreamAdapter(engine)
        if config.backend != "inline":
            raise ValueError(f"unknown backend {config.backend!r}")
        engine = AStreamEngine(
            engine_config,
            cluster=cluster,
            on_deliver=qos.on_deliver,
        )
        return engine, AStreamAdapter(engine)
    if config.sut == "flink":
        engine = QueryAtATimeEngine(
            cluster=cluster,
            parallelism=1,
            on_deliver=qos.on_deliver,
            retain_results=config.retain_results,
        )
        return engine, BaselineAdapter(engine)
    if config.sut == "flink-free":
        # Generous cluster + zero deployment cost: pure data-path baseline.
        engine = QueryAtATimeEngine(
            cluster=SimulatedCluster(ClusterSpec(nodes=max(config.nodes, 64))),
            deployment=BaselineDeploymentModel(
                cold_start_ms=0,
                job_submit_ms=0,
                job_stop_ms=0,
                per_instance_ms=0,
            ),
            parallelism=1,
            on_deliver=qos.on_deliver,
            retain_results=config.retain_results,
        )
        return engine, BaselineAdapter(engine)
    raise ValueError(f"unknown SUT kind {config.sut!r}")


def run_scenario(
    config: RunnerConfig,
    schedule: Optional[WorkloadSchedule] = None,
    scenario: str = "sc1",
    queries_per_second: float = 1.0,
    query_parallelism: int = 10,
    queries_per_batch: int = 10,
    batch_interval_s: int = 10,
    batches: int = 3,
    kind: str = "join",
) -> ScenarioMetrics:
    """Run one scenario and return its §4.3 metrics.

    Pass an explicit ``schedule`` or let the runner build SC1/SC2/single
    from the keyword parameters.
    """
    generator = config.generator()
    if schedule is None:
        if scenario == "sc1":
            schedule = sc1_schedule(
                generator, queries_per_second, query_parallelism, kind
            )
        elif scenario == "sc2":
            schedule = sc2_schedule(
                generator, queries_per_batch, batch_interval_s, batches, kind
            )
        elif scenario == "single":
            schedule = sc1_schedule(generator, 1.0, 1, kind)
        else:
            raise ValueError(f"unknown scenario {scenario!r}")
    qos = QoSMonitor(sample_every=config.latency_sample_every)
    engine, adapter = build_sut(config, qos)
    driver = Driver(
        adapter,
        schedule,
        config.streams,
        config.driver_config(),
        qos=qos,
    )
    report = driver.run()
    # The modelled cluster speed-up only applies to the inline backend:
    # process runs measure real parallel wall time, so scaling them by
    # the model would double-count (see SimulatedCluster.speedup).
    speedup = 1.0 if config.backend == "process" else (config.nodes / 4) ** 0.5
    metrics = ScenarioMetrics(report=report, speedup=speedup)
    metrics.engine = engine  # expose for component-level figures
    metrics.qos = qos        # expose for latency-timeline figures
    if config.observe and getattr(engine, "obs", None) is not None:
        # Snapshot before any shutdown so the merged cross-shard view
        # (and the event log) survive the worker pool.
        metrics.obs_snapshot = engine.obs_snapshot()
        metrics.obs_events = engine.obs.events.to_jsonl()
        # Per-query CPU cost attribution (shared covering work split
        # across members) feeds the inspector's cost panel.
        try:
            metrics.obs_snapshot["cost"] = engine.cost_attribution()
        except Exception:
            pass
    if config.backend == "process":
        # Stop the worker pool now; merged results and cached component
        # stats stay readable on the engine, and sweeps don't pile up
        # live processes.
        engine.shutdown()
    return metrics


def sustainable_query_search(
    config: RunnerConfig,
    scenario: str = "sc1",
    kind: str = "join",
    low: int = 1,
    high: int = 256,
    min_throughput_tps: float = 200.0,
) -> int:
    """Largest query count the SUT sustains at the configured input rate.

    Binary search over query parallelism (SC1) or batch size (SC2): a
    count *sustains* when the run finishes without failure and the
    scaled service rate still covers the input rate (Figure 20's
    methodology: constant data throughput, grow the ad-hoc query count
    until the SUT falls over).
    """

    def sustains(count: int) -> bool:
        try:
            if scenario == "sc1":
                # Fast ramp: the full population is active almost the
                # whole run, so the measurement reflects `count`
                # simultaneously active long-running queries.
                metrics = run_scenario(
                    config,
                    scenario="sc1",
                    queries_per_second=float(count),
                    query_parallelism=count,
                    kind=kind,
                )
            else:
                metrics = run_scenario(
                    config,
                    scenario="sc2",
                    queries_per_batch=count,
                    batch_interval_s=3,
                    batches=max(2, int(config.duration_s) // 3),
                    kind=kind,
                )
        except Exception:
            return False
        if not metrics.sustained:
            return False
        return metrics.slowest_data_throughput_tps >= min_throughput_tps

    if not sustains(low):
        return 0
    while low < high:
        middle = (low + high + 1) // 2
        if sustains(middle):
            low = middle
        else:
            high = middle - 1
    return low


def _results_dir() -> "Path":
    """Directory for runner artefacts, next to the benchmark results."""
    from pathlib import Path

    repo_root = Path(__file__).resolve().parents[3]
    results = repo_root / "benchmarks" / "results"
    if not results.parent.is_dir():  # installed outside the repo tree
        results = Path.cwd()
    results.mkdir(parents=True, exist_ok=True)
    return results


def main(argv: Optional[list] = None) -> int:
    """Command-line scenario runner.

    Runs one SC1/SC2 scenario against a chosen SUT and backend and
    prints the §4.3 metrics; ``--profile`` additionally captures a
    cProfile of the whole run plus the engine's per-operator cumulative
    counters and writes both next to the benchmark results
    (``benchmarks/results/profile_*.txt``).

    Example::

        python -m repro.harness.runner --backend process --workers 4
    """
    import argparse

    parser = argparse.ArgumentParser(description=main.__doc__)
    parser.add_argument("--sut", default="astream",
                        choices=("astream", "flink", "flink-free"))
    parser.add_argument("--backend", default="inline",
                        choices=("inline", "process"),
                        help="astream execution backend")
    parser.add_argument("--workers", type=int, default=2,
                        help="worker processes for --backend process")
    parser.add_argument("--scenario", default="sc1",
                        choices=("sc1", "sc2", "single"))
    parser.add_argument("--kind", default="agg", choices=("join", "agg"))
    parser.add_argument("--rate", type=float, default=400.0,
                        help="input rate (tuples/second per stream)")
    parser.add_argument("--duration", type=float, default=10.0,
                        help="run duration in virtual seconds")
    parser.add_argument("--queries-per-second", type=float, default=4.0)
    parser.add_argument("--query-parallelism", type=int, default=16)
    parser.add_argument("--nodes", type=int, default=4)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--batch-size", type=int, default=1,
                        help="data-path micro-batch size")
    parser.add_argument("--state-backend", default="memory",
                        choices=("memory", "lsm"),
                        help="keyed-state backend for shared aggregations: "
                             "'lsm' spills accumulators to disk so state "
                             "can exceed RAM")
    parser.add_argument("--state-dir", default=None, metavar="DIR",
                        help="spill root for --state-backend lsm "
                             "(default: a temp dir removed at shutdown)")
    parser.add_argument("--arrangements", action="store_true",
                        help="maintain shared arrangements and warm-attach "
                             "new queries (backfills pre-creation windows)")
    parser.add_argument("--profile", action="store_true",
                        help="cProfile the run and dump per-operator "
                             "cumulative stats next to benchmark results "
                             "(process backend also ships per-worker "
                             "profiles back)")
    parser.add_argument("--observe", action="store_true",
                        help="enable the runtime telemetry layer and "
                             "print the pipeline-inspector dashboard")
    parser.add_argument("--obs-out", default=None, metavar="DIR",
                        help="directory for telemetry artifacts (metrics "
                             "json/prom + events jsonl); defaults to "
                             "benchmarks/results")
    parser.add_argument("--obs-sample-every", type=int, default=32,
                        help="trace one source push in N (with --observe)")
    parser.add_argument("--verbose", action="store_true",
                        help="console logging for repro.* loggers (DEBUG)")
    args = parser.parse_args(argv)

    if args.verbose:
        from repro.logsetup import configure_logging

        configure_logging(verbose=True)

    config = RunnerConfig(
        sut=args.sut,
        backend=args.backend,
        workers=args.workers,
        nodes=args.nodes,
        input_rate_tps=args.rate,
        duration_s=args.duration,
        seed=args.seed,
        batch_size=args.batch_size,
        profile=args.profile,
        observe=args.observe,
        obs_sample_every=args.obs_sample_every,
        engine_overrides=dict(
            state_backend=args.state_backend,
            state_dir=args.state_dir,
            shared_arrangements=args.arrangements,
        ),
    )
    scenario_kwargs = dict(
        scenario=args.scenario,
        queries_per_second=args.queries_per_second,
        query_parallelism=args.query_parallelism,
        kind=args.kind,
    )

    profiler = None
    if args.profile:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    metrics = run_scenario(config, **scenario_kwargs)
    if profiler is not None:
        profiler.disable()

    report = metrics.report
    print(f"sut={args.sut} backend={args.backend} workers={args.workers} "
          f"scenario={args.scenario} kind={args.kind}")
    print(f"service_tps={report.service_rate_tps:,.0f} "
          f"wall_s={report.wall_seconds:.2f} "
          f"results={sum(report.per_query_results.values()):,}")
    print(f"slowest_tps={metrics.slowest_data_throughput_tps:,.0f} "
          f"mean_deploy_ms={metrics.mean_deployment_latency_ms:.1f} "
          f"sustained={report.sustained}")

    run_tag = f"{args.scenario}_{args.sut}_{args.backend}"

    if args.observe:
        from repro.harness.inspector import render_dashboard
        from repro.obs import write_obs_artifacts

        snapshot = getattr(metrics, "obs_snapshot", None)
        if snapshot is not None:
            engine = metrics.engine
            events = (
                engine.obs.events.events()
                if getattr(engine, "obs", None) is not None
                else []
            )
            print()
            print(render_dashboard(snapshot, events=events, title=run_tag))
            out_dir = args.obs_out if args.obs_out else _results_dir()
            paths = write_obs_artifacts(
                snapshot,
                getattr(metrics, "obs_events", ""),
                out_dir,
                prefix=run_tag,
            )
            for kind, path in sorted(paths.items()):
                print(f"obs {kind} written to {path}")

    if profiler is not None:
        import io
        import pstats

        out = _results_dir() / f"profile_{run_tag}.txt"
        buffer = io.StringIO()
        stats = pstats.Stats(profiler, stream=buffer)
        stats.sort_stats("cumulative").print_stats(40)
        lines = [buffer.getvalue(), "", "# per-operator cumulative stats"]
        engine = metrics.engine
        if hasattr(engine, "component_stats"):
            for name, value in sorted(engine.component_stats().items()):
                lines.append(f"{name}: {value:,.0f}")
        out.write_text("\n".join(lines) + "\n")
        print(f"profile written to {out}")
        # Process backend: per-worker cProfile reports shipped back
        # through the shutdown sync (cached coordinator-side).
        worker_profiles = getattr(engine, "worker_profiles", None)
        if worker_profiles is not None:
            for shard, report in sorted(worker_profiles().items()):
                worker_out = _results_dir() / (
                    f"profile_worker{shard}_{run_tag}.txt"
                )
                worker_out.write_text(report)
                print(f"worker {shard} profile written to {worker_out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
