"""Experiment runner: build SUTs, run scenarios, search sustainability.

Every figure experiment funnels through :func:`run_scenario`, which
wires a generator, a schedule, an engine (one of three SUT kinds), the
QoS monitor, and the driver together:

* ``"astream"`` — the shared engine with the full deployment model;
* ``"flink"`` — the query-at-a-time baseline with its real (queued,
  multi-second) deployment model — this is the paper's Flink;
* ``"flink-free"`` — the baseline with deployment costs zeroed out.
  The paper cannot measure multi-query Flink data throughput because
  Flink fails outright; this SUT isolates the *data-path* sharing
  benefit for the overhead analyses (Figures 17–19) by letting every
  baseline query start instantly.

Engines run with operator ``parallelism=1`` in-process; multi-node
throughput is derived through the calibrated cluster speed-up
(√(nodes/4), matching the paper's own 4→8-node ratios).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.baseline import BaselineDeploymentModel, QueryAtATimeEngine
from repro.core.engine import AStreamEngine, EngineConfig
from repro.core.qos import QoSMonitor
from repro.minispe.cluster import ClusterSpec, SimulatedCluster
from repro.harness.metrics import ScenarioMetrics
from repro.workloads.driver import (
    AStreamAdapter,
    BaselineAdapter,
    Driver,
    DriverConfig,
)
from repro.workloads.querygen import QueryGenerator
from repro.workloads.scenarios import WorkloadSchedule, sc1_schedule, sc2_schedule


@dataclass
class RunnerConfig:
    """One scenario run's full parameterisation."""

    sut: str = "astream"  # astream | flink | flink-free
    nodes: int = 4
    streams: Tuple[str, ...] = ("A", "B")
    max_join_arity: int = 1
    input_rate_tps: float = 1_000.0
    duration_s: float = 12.0
    step_ms: int = 250
    watermark_interval_ms: int = 500
    latency_sample_every: int = 64
    seed: int = 1
    window_max_seconds: int = 3
    profile: bool = False
    retain_results: bool = False
    """Figures only need counts; retaining payloads wastes memory."""
    batch_size: int = 1
    """Data-path micro-batch size (see ``DriverConfig.batch_size``)."""
    engine_overrides: dict = field(default_factory=dict)

    def cluster(self) -> SimulatedCluster:
        """A fresh simulated cluster for this run."""
        return SimulatedCluster(ClusterSpec(nodes=self.nodes))

    def generator(self) -> QueryGenerator:
        """A fresh deterministic query generator for this run."""
        return QueryGenerator(
            streams=self.streams,
            seed=self.seed,
            window_max_seconds=self.window_max_seconds,
        )

    def driver_config(self) -> DriverConfig:
        """The matching driver configuration."""
        return DriverConfig(
            input_rate_tps=self.input_rate_tps,
            duration_s=self.duration_s,
            step_ms=self.step_ms,
            watermark_interval_ms=self.watermark_interval_ms,
            latency_sample_every=self.latency_sample_every,
            batch_size=self.batch_size,
        )


def build_sut(config: RunnerConfig, qos: QoSMonitor):
    """Construct the engine + adapter pair for a runner config."""
    cluster = config.cluster()
    if config.sut == "astream":
        engine = AStreamEngine(
            EngineConfig(
                streams=config.streams,
                max_join_arity=config.max_join_arity,
                parallelism=1,
                retain_results=config.retain_results,
                profile=config.profile,
                **config.engine_overrides,
            ),
            cluster=cluster,
            on_deliver=qos.on_deliver,
        )
        return engine, AStreamAdapter(engine)
    if config.sut == "flink":
        engine = QueryAtATimeEngine(
            cluster=cluster,
            parallelism=1,
            on_deliver=qos.on_deliver,
            retain_results=config.retain_results,
        )
        return engine, BaselineAdapter(engine)
    if config.sut == "flink-free":
        # Generous cluster + zero deployment cost: pure data-path baseline.
        engine = QueryAtATimeEngine(
            cluster=SimulatedCluster(ClusterSpec(nodes=max(config.nodes, 64))),
            deployment=BaselineDeploymentModel(
                cold_start_ms=0,
                job_submit_ms=0,
                job_stop_ms=0,
                per_instance_ms=0,
            ),
            parallelism=1,
            on_deliver=qos.on_deliver,
            retain_results=config.retain_results,
        )
        return engine, BaselineAdapter(engine)
    raise ValueError(f"unknown SUT kind {config.sut!r}")


def run_scenario(
    config: RunnerConfig,
    schedule: Optional[WorkloadSchedule] = None,
    scenario: str = "sc1",
    queries_per_second: float = 1.0,
    query_parallelism: int = 10,
    queries_per_batch: int = 10,
    batch_interval_s: int = 10,
    batches: int = 3,
    kind: str = "join",
) -> ScenarioMetrics:
    """Run one scenario and return its §4.3 metrics.

    Pass an explicit ``schedule`` or let the runner build SC1/SC2/single
    from the keyword parameters.
    """
    generator = config.generator()
    if schedule is None:
        if scenario == "sc1":
            schedule = sc1_schedule(
                generator, queries_per_second, query_parallelism, kind
            )
        elif scenario == "sc2":
            schedule = sc2_schedule(
                generator, queries_per_batch, batch_interval_s, batches, kind
            )
        elif scenario == "single":
            schedule = sc1_schedule(generator, 1.0, 1, kind)
        else:
            raise ValueError(f"unknown scenario {scenario!r}")
    qos = QoSMonitor(sample_every=config.latency_sample_every)
    engine, adapter = build_sut(config, qos)
    driver = Driver(
        adapter,
        schedule,
        config.streams,
        config.driver_config(),
        qos=qos,
    )
    report = driver.run()
    metrics = ScenarioMetrics(
        report=report, speedup=(config.nodes / 4) ** 0.5
    )
    metrics.engine = engine  # expose for component-level figures
    metrics.qos = qos        # expose for latency-timeline figures
    return metrics


def sustainable_query_search(
    config: RunnerConfig,
    scenario: str = "sc1",
    kind: str = "join",
    low: int = 1,
    high: int = 256,
    min_throughput_tps: float = 200.0,
) -> int:
    """Largest query count the SUT sustains at the configured input rate.

    Binary search over query parallelism (SC1) or batch size (SC2): a
    count *sustains* when the run finishes without failure and the
    scaled service rate still covers the input rate (Figure 20's
    methodology: constant data throughput, grow the ad-hoc query count
    until the SUT falls over).
    """

    def sustains(count: int) -> bool:
        try:
            if scenario == "sc1":
                # Fast ramp: the full population is active almost the
                # whole run, so the measurement reflects `count`
                # simultaneously active long-running queries.
                metrics = run_scenario(
                    config,
                    scenario="sc1",
                    queries_per_second=float(count),
                    query_parallelism=count,
                    kind=kind,
                )
            else:
                metrics = run_scenario(
                    config,
                    scenario="sc2",
                    queries_per_batch=count,
                    batch_interval_s=3,
                    batches=max(2, int(config.duration_s) // 3),
                    kind=kind,
                )
        except Exception:
            return False
        if not metrics.sustained:
            return False
        return metrics.slowest_data_throughput_tps >= min_throughput_tps

    if not sustains(low):
        return 0
    while low < high:
        middle = (low + high + 1) // 2
        if sustains(middle):
            low = middle
        else:
            high = middle - 1
    return low
