"""Shared state plane: pluggable state stores and shared arrangements.

This package is the storage subsystem behind AStream's shared data and
state plane (ROADMAP item 2):

* :mod:`repro.store.backend` — the :class:`StateStore` interface with the
  in-memory default backend;
* :mod:`repro.store.lsm` — the out-of-core spill-to-disk LSM backend
  (append-only segment files + memtable + sparse index) that lets keyed
  state exceed RAM;
* :mod:`repro.store.spill` — dict-shaped slice-store views that let the
  shared operators spill per-slice accumulator maps through one LSM
  store without changing their data-path code shape;
* :mod:`repro.store.arrangement` — multi-version, compacting keyed
  indexes with reader leases ("Shared Arrangements", McSherry et al.)
  that let a newly created ad-hoc query *attach* to existing state at
  the current frontier instead of warming up from scratch.
"""

from repro.store.arrangement import (
    Arrangement,
    ArrangementManager,
    ReaderLease,
)
from repro.store.backend import (
    STATE_BACKENDS,
    MemoryStateStore,
    StateStore,
    make_state_store,
)
from repro.store.lsm import LSMStateStore, materialize_checkpoint
from repro.store.spill import SpilledSliceStore, SpillingStoreHost

__all__ = [
    "STATE_BACKENDS",
    "StateStore",
    "MemoryStateStore",
    "LSMStateStore",
    "make_state_store",
    "materialize_checkpoint",
    "SpilledSliceStore",
    "SpillingStoreHost",
    "Arrangement",
    "ArrangementManager",
    "ReaderLease",
]
