"""The pluggable :class:`StateStore` interface and the in-memory default.

A state store is a flat keyed map with explicit lifecycle hooks the
checkpoint plane drives: ``flush`` persists buffered writes, ``compact``
reorganises storage at checkpoint barriers (the substrate has no
background threads), ``checkpoint`` returns a picklable payload that
:meth:`restore` accepts — for the in-memory backend the payload carries
the entries themselves; for the LSM backend it carries a *manifest* of
immutable on-disk segments, which is what makes engine checkpoints
incremental (only segments newer than the previous checkpoint are new
data).

Keys may be any hashable picklable object; values any picklable object.
The store treats values as opaque — copy-on-write concerns live in the
callers (:class:`repro.minispe.state.KeyedState`).
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Optional, Tuple

STATE_BACKENDS = ("memory", "lsm")
"""Backends selectable via ``EngineConfig.state_backend``."""


class StateStore:
    """Abstract keyed store with checkpoint/restore support."""

    backend = "abstract"

    def get(self, key: Any, default: Any = None) -> Any:
        """Value for ``key`` or ``default``."""
        raise NotImplementedError

    def put(self, key: Any, value: Any) -> None:
        """Insert or overwrite ``key``."""
        raise NotImplementedError

    def delete(self, key: Any) -> None:
        """Remove ``key`` (no-op if absent)."""
        raise NotImplementedError

    def __contains__(self, key: Any) -> bool:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def keys(self) -> Iterator[Any]:
        """Iterate over live keys."""
        raise NotImplementedError

    def items(self) -> Iterator[Tuple[Any, Any]]:
        """Iterate over live ``(key, value)`` pairs."""
        raise NotImplementedError

    def clear(self) -> None:
        """Drop every entry."""
        raise NotImplementedError

    def flush(self) -> None:
        """Persist buffered writes (no-op for memory)."""

    def compact(self) -> None:
        """Reorganise storage; called at checkpoint barriers."""

    def checkpoint(self) -> Dict[str, Any]:
        """Picklable payload from which :meth:`restore` rebuilds state."""
        raise NotImplementedError

    def restore(self, payload: Dict[str, Any]) -> None:
        """Replace contents from a :meth:`checkpoint` payload.

        Implementations accept payloads from *either* backend so state
        can migrate between memory and lsm deployments.
        """
        raise NotImplementedError

    def stats(self) -> Dict[str, Any]:
        """Introspection counters (backend, sizes, spill activity)."""
        raise NotImplementedError

    def close(self) -> None:
        """Release resources (file handles, owned directories)."""


def _restore_entries(store: StateStore, payload: Dict[str, Any]) -> None:
    """Cross-backend restore: materialise a payload into ``store``."""
    backend = payload.get("backend")
    store.clear()
    if backend == "memory":
        for key, value in payload["entries"].items():
            store.put(key, value)
    elif backend == "lsm":
        from repro.store.lsm import materialize_checkpoint

        for key, value in materialize_checkpoint(payload).items():
            store.put(key, value)
    else:
        raise ValueError(f"unknown state payload backend {backend!r}")


class MemoryStateStore(StateStore):
    """The default dict-backed store (state must fit in RAM)."""

    backend = "memory"

    def __init__(self) -> None:
        self._entries: Dict[Any, Any] = {}

    def get(self, key: Any, default: Any = None) -> Any:
        return self._entries.get(key, default)

    def put(self, key: Any, value: Any) -> None:
        self._entries[key] = value

    def delete(self, key: Any) -> None:
        self._entries.pop(key, None)

    def __contains__(self, key: Any) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def keys(self) -> Iterator[Any]:
        return iter(list(self._entries.keys()))

    def items(self) -> Iterator[Tuple[Any, Any]]:
        return iter(list(self._entries.items()))

    def clear(self) -> None:
        self._entries.clear()

    def checkpoint(self) -> Dict[str, Any]:
        return {"backend": "memory", "entries": dict(self._entries)}

    def restore(self, payload: Dict[str, Any]) -> None:
        if payload.get("backend") == "memory":
            self._entries = dict(payload["entries"])
        else:
            _restore_entries(self, payload)

    def stats(self) -> Dict[str, Any]:
        return {
            "backend": self.backend,
            "entries": len(self._entries),
            "spilled_bytes": 0,
            "segments": 0,
        }


def make_state_store(
    backend: str = "memory",
    *,
    directory: Optional[str] = None,
    memtable_entries: int = 16_384,
    wal: bool = False,
) -> StateStore:
    """Build a state store for ``backend`` ("memory" or "lsm")."""
    if backend == "memory":
        return MemoryStateStore()
    if backend == "lsm":
        from repro.store.lsm import LSMStateStore

        return LSMStateStore(
            directory, memtable_entries=memtable_entries, wal=wal
        )
    raise ValueError(
        f"unknown state backend {backend!r} (expected one of {STATE_BACKENDS})"
    )
