"""Dict-shaped slice-store views over one shared spill store.

The shared aggregation operator keeps, per window slice, a store shaped
``{slot: {key: accumulator}}``.  With the lsm backend the *values* must
be able to exceed RAM, but the operator's fold/fire/migrate code paths
only use a narrow mapping protocol (``setdefault``/``get``/``items``/
truthiness).  :class:`SpilledSliceStore` mimics exactly that protocol
while routing every accumulator through one per-operator
:class:`~repro.store.lsm.LSMStateStore` under the composite key
``(slice start, slot, key)``:

* one physical store per operator instance keeps file counts bounded
  (a slice is a view, not a directory);
* per-view key registries stay in memory — keys are small, values are
  the thing that spills (same trade RocksDB-backed engines make with
  their bloom/index blocks);
* each view front-runs the store with a bounded write-back buffer: the
  *current* slice's accumulators are updated as plain dict entries and
  only pushed down (pickled) when the buffer exceeds the memtable cap or
  at an explicit barrier — snapshot and migration call
  :meth:`SpilledSliceStore.spill_hot` so every checkpoint still captures
  the full state;
* dropping an expired slice tombstones its keys so the LSM's compaction
  reclaims the space at the next checkpoint barrier.

Slice starts are unique among live slices (the slice index is keyed by
start, and the expiry horizon is monotonic), so the composite key cannot
collide across a slice's lifetime.
"""

from __future__ import annotations

import tempfile
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.store.lsm import LSMStateStore

__all__ = ["SpillingStoreHost", "SpilledSliceStore"]


_ABSENT = object()


class _SlotView:
    """The ``{key: accumulator}`` mapping of one (slice, slot).

    Writes land in ``_hot`` — a plain dict write-back buffer — and only
    reach the LSM store when the buffer exceeds ``limit`` or
    :meth:`spill` is called at a barrier, so the per-record fold path
    costs a dict update, not a pickle.
    """

    __slots__ = ("_store", "_slice_start", "_slot", "_keys", "_hot", "_limit")

    def __init__(
        self,
        store: LSMStateStore,
        slice_start: int,
        slot: int,
        limit: int = 16_384,
    ) -> None:
        self._store = store
        self._slice_start = slice_start
        self._slot = slot
        self._keys: set = set()
        self._hot: dict = {}
        self._limit = limit

    def get(self, key: Any, default: Any = None) -> Any:
        value = self._hot.get(key, _ABSENT)
        if value is not _ABSENT:
            return value
        if key not in self._keys:
            return default
        return self._store.get((self._slice_start, self._slot, key), default)

    def __setitem__(self, key: Any, value: Any) -> None:
        self._hot[key] = value
        self._keys.add(key)
        if len(self._hot) > self._limit:
            self.spill()

    def spill(self) -> int:
        """Push the write-back buffer down into the LSM store.

        Returns how many buffered accumulators were written.  Called on
        buffer overflow and at snapshot/migration barriers, so a store
        checkpoint taken right after always holds the complete view.
        """
        spilled = len(self._hot)
        start, slot = self._slice_start, self._slot
        for key, value in self._hot.items():
            self._store.put((start, slot, key), value)
        self._hot.clear()
        return spilled

    def __contains__(self, key: Any) -> bool:
        return key in self._keys

    def __len__(self) -> int:
        return len(self._keys)

    def __bool__(self) -> bool:
        return bool(self._keys)

    def keys(self) -> Iterator[Any]:
        return iter(list(self._keys))

    def items(self) -> Iterator[Tuple[Any, Any]]:
        for key in list(self._keys):
            value = self._hot.get(key, _ABSENT)
            if value is _ABSENT:
                value = self._store.get(
                    (self._slice_start, self._slot, key)
                )
            yield key, value

    def drop(self) -> int:
        """Tombstone every entry; returns how many were dropped.

        Buffered-only keys never reached the store, so their deletes
        are O(1) no-ops; stored keys get tombstones for compaction to
        reclaim.
        """
        dropped = len(self._keys)
        for key in self._keys:
            self._store.delete((self._slice_start, self._slot, key))
        self._keys.clear()
        self._hot.clear()
        return dropped


class SpilledSliceStore:
    """A ``{slot: per-key map}`` facade attached to ``Slice.store``."""

    __slots__ = ("_store", "_slice_start", "_views", "_buffer_entries")

    def __init__(
        self,
        store: LSMStateStore,
        slice_start: int,
        buffer_entries: int = 16_384,
    ) -> None:
        self._store = store
        self._slice_start = slice_start
        self._views: Dict[int, _SlotView] = {}
        self._buffer_entries = buffer_entries

    @property
    def slice_start(self) -> int:
        """The slice's start time — the composite-key prefix."""
        return self._slice_start

    def setdefault(self, slot: int, _default: Any = None) -> _SlotView:
        """The slot's per-key view, created empty if absent."""
        view = self._views.get(slot)
        if view is None:
            view = _SlotView(
                self._store, self._slice_start, slot, self._buffer_entries
            )
            self._views[slot] = view
        return view

    def get(self, slot: int, default: Any = None) -> Any:
        """The slot's per-key view, or ``default`` if absent."""
        return self._views.get(slot, default)

    def items(self) -> Iterator[Tuple[int, _SlotView]]:
        """``(slot, view)`` pairs in slot order (firing determinism)."""
        return iter(sorted(self._views.items()))

    def __contains__(self, slot: int) -> bool:
        return slot in self._views

    def __bool__(self) -> bool:
        return any(view for view in self._views.values())

    def __len__(self) -> int:
        return len(self._views)

    def drop(self) -> int:
        """Tombstone the whole slice's spilled state (on expiry)."""
        dropped = 0
        for view in self._views.values():
            dropped += view.drop()
        self._views.clear()
        return dropped

    def spill_hot(self) -> int:
        """Push every slot view's write-back buffer into the store.

        The barrier the operator runs before ``store.checkpoint()`` (and
        before handing state to a migration), so on-disk segments hold
        the complete slice.  Returns the number of entries written.
        """
        return sum(view.spill() for view in self._views.values())

    def key_manifest(self) -> Dict[int, List[Any]]:
        """``{slot: [keys]}`` — the metadata an operator snapshot keeps
        so a restore can rebuild the views without scanning segments."""
        return {
            slot: list(view._keys)
            for slot, view in self._views.items()
            if view
        }

    def adopt_keys(self, manifest: Dict[int, List[Any]]) -> None:
        """Rebuild views from a snapshot's key manifest (restore path)."""
        for slot, keys in manifest.items():
            view = self.setdefault(slot)
            view._keys.update(keys)


class SpillingStoreHost:
    """Owns one operator instance's LSM store and builds slice views.

    The host creates a unique subdirectory under the engine's state root
    so parallel instances (and respawned recovery instances) never
    collide; the root's owner — engine or coordinator — removes the tree
    at shutdown.
    """

    def __init__(
        self,
        state_dir: Optional[str],
        memtable_entries: int = 16_384,
        prefix: str = "op-",
    ) -> None:
        directory = None
        if state_dir is not None:
            directory = tempfile.mkdtemp(dir=state_dir, prefix=prefix)
        self._buffer_entries = memtable_entries
        self.store = LSMStateStore(
            directory, memtable_entries=memtable_entries, wal=False
        )

    def make_slice_store(self, slice_start: int) -> SpilledSliceStore:
        """A dict-shaped spill view for the slice at ``slice_start``."""
        return SpilledSliceStore(
            self.store, slice_start, self._buffer_entries
        )

    def stats(self) -> Dict[str, Any]:
        """The underlying store's stats (segments, spilled bytes)."""
        return self.store.stats()

    def close(self) -> None:
        """Close the store (removing its directory only if host-owned)."""
        self.store.close()
