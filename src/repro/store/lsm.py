"""Out-of-core LSM-style state store (spill-to-disk backend).

Layout (all files live in one directory per store instance):

* **memtable** — a plain dict of raw (hashable) keys to live values;
  the hot path never serialises.  A put/delete beyond
  ``memtable_entries`` triggers a flush.
* **segments** — append-only immutable files written at flush time.
  Entries are sorted by the pickled key bytes; each entry is
  ``[klen u32][vlen u32][key bytes][value bytes]`` with
  ``vlen == 0xFFFFFFFF`` marking a tombstone.  A sparse index (one
  ``(key bytes, offset)`` probe every ``sparse_every`` entries) is kept
  in memory and persisted to a ``.idx`` sidecar; a missing sidecar is
  rebuilt by scanning the segment.
* **MANIFEST** — the authoritative list of live segment paths plus the
  flush counter, replaced atomically (`os.replace`) after every flush or
  compaction.
* **WAL** (optional, ``wal=True``) — a length-prefixed redo log of
  puts/deletes since the last flush, replayed on reopen so an unclosed
  ("crashed") store loses nothing.  The engine integration runs with
  ``wal=False``: there the input log + replay provides exactly-once, the
  same division of labour as Flink over RocksDB.

Reads check the memtable, then a bounded LRU **read cache** (the block
cache of this design: without it every update of a flushed hot key
would pay a disk seek), then segments newest-first via the sparse
index (binary search + a bounded forward scan).  ``compact()`` — called
at checkpoint barriers, never from a background thread — merges all
segments newest-wins and drops tombstones.  ``checkpoint()`` flushes and
returns a *manifest payload* (segment paths, not contents); segments
referenced by a checkpoint are pinned and never unlinked by compaction,
and adopted segments from a restored payload are never unlinked at all
(they belong to the store that wrote them).

The live-key directory (``_live``) stays in memory and maps every raw
key to its exact ``(segment, offset)`` home, so a spilled read is one
seek + one entry decode regardless of segment count: values spill, keys
do not — millions of keys per shard is fine, value bytes are the thing
that outgrows RAM.  The sparse per-segment index remains for restored
payloads whose sidecar is missing and as the fallback probe path.
"""

from __future__ import annotations

import heapq
import io
from collections import OrderedDict
import os
import pickle
import shutil
import struct
import tempfile
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.store.backend import StateStore, _restore_entries

_HEADER = struct.Struct("<II")
_TOMBSTONE_LEN = 0xFFFFFFFF
_MANIFEST = "MANIFEST"
_WAL = "wal.log"
_PROTO = 4


class _Tombstone:
    """Singleton deletion marker (picklable, identity-compared)."""

    _instance: Optional["_Tombstone"] = None

    def __new__(cls) -> "_Tombstone":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "<tombstone>"


TOMBSTONE = _Tombstone()


def _encode(obj: Any) -> bytes:
    return pickle.dumps(obj, protocol=_PROTO)


def _decode(raw: bytes) -> Any:
    return pickle.loads(raw)


class _Segment:
    """One immutable sorted segment file with a sparse in-memory index."""

    def __init__(
        self,
        path: str,
        sparse_every: int = 64,
        preloaded: Optional[Tuple[int, List[Tuple[bytes, int]]]] = None,
    ) -> None:
        self.path = path
        self.name = os.path.basename(path)
        self._sparse_every = sparse_every
        self._file: Optional[io.BufferedReader] = None
        self.count = 0
        self.size_bytes = 0
        self.sparse: List[Tuple[bytes, int]] = []
        if preloaded is not None:
            # Fresh from _write_segment: the writer already knows the
            # index, so skip the rescan of the file it just wrote.
            self.size_bytes = os.path.getsize(self.path)
            self.count, self.sparse = preloaded
        else:
            self._load_index()

    # -- index -------------------------------------------------------------

    @property
    def _idx_path(self) -> str:
        return self.path + ".idx"

    def _load_index(self) -> None:
        self.size_bytes = os.path.getsize(self.path)
        try:
            with open(self._idx_path, "rb") as handle:
                sidecar = pickle.load(handle)
            self.count = sidecar["count"]
            self.sparse = sidecar["sparse"]
        except (OSError, pickle.UnpicklingError, KeyError, EOFError):
            self._rebuild_index()

    def _rebuild_index(self) -> None:
        self.count = 0
        self.sparse = []
        for key_bytes, _value, offset in self._iter_raw():
            if self.count % self._sparse_every == 0:
                self.sparse.append((key_bytes, offset))
            self.count += 1

    def write_index(self) -> None:
        with open(self._idx_path, "wb") as handle:
            pickle.dump(
                {"count": self.count, "sparse": self.sparse},
                handle,
                protocol=_PROTO,
            )

    # -- reads -------------------------------------------------------------

    def _handle(self) -> io.BufferedReader:
        if self._file is None:
            self._file = open(self.path, "rb")
        return self._file

    def _iter_raw(self) -> Iterator[Tuple[bytes, Optional[bytes], int]]:
        """Yield ``(key bytes, value bytes | None, entry offset)``."""
        handle = open(self.path, "rb")
        try:
            offset = 0
            while True:
                header = handle.read(_HEADER.size)
                if len(header) < _HEADER.size:
                    return
                klen, vlen = _HEADER.unpack(header)
                key_bytes = handle.read(klen)
                if vlen == _TOMBSTONE_LEN:
                    value = None
                    entry_len = _HEADER.size + klen
                else:
                    value = handle.read(vlen)
                    entry_len = _HEADER.size + klen + vlen
                yield key_bytes, value, offset
                offset += entry_len
        finally:
            handle.close()

    def iter_entries(self) -> Iterator[Tuple[bytes, Optional[bytes]]]:
        """All ``(key bytes, value bytes | None)`` pairs in key order."""
        for key_bytes, value, _offset in self._iter_raw():
            yield key_bytes, value

    def get(self, key_bytes: bytes) -> Tuple[bool, Optional[bytes]]:
        """Return ``(found, value bytes | None-for-tombstone)``."""
        if not self.sparse:
            return False, None
        lo, hi = 0, len(self.sparse)
        while lo < hi:
            mid = (lo + hi) // 2
            if self.sparse[mid][0] <= key_bytes:
                lo = mid + 1
            else:
                hi = mid
        if lo == 0:
            return False, None
        _probe_key, offset = self.sparse[lo - 1]
        handle = self._handle()
        handle.seek(offset)
        for _ in range(self._sparse_every):
            header = handle.read(_HEADER.size)
            if len(header) < _HEADER.size:
                return False, None
            klen, vlen = _HEADER.unpack(header)
            entry_key = handle.read(klen)
            if entry_key == key_bytes:
                if vlen == _TOMBSTONE_LEN:
                    return True, None
                return True, handle.read(vlen)
            if entry_key > key_bytes:
                return False, None
            if vlen != _TOMBSTONE_LEN:
                handle.seek(vlen, os.SEEK_CUR)
        return False, None

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None


def _write_segment(
    path: str,
    entries: List[Tuple[bytes, Optional[bytes]]],
    sparse_every: int = 64,
) -> Tuple[_Segment, List[int]]:
    """Write sorted ``(key bytes, value bytes | None)`` entries to disk.

    Returns the segment plus each entry's value location — ``(value
    byte offset, value length)``, None for tombstones — aligned with
    ``entries``, so callers can record exact read locations.
    """
    locations: List[Optional[Tuple[int, int]]] = []
    sparse: List[Tuple[bytes, int]] = []
    offset = 0
    with open(path, "wb") as handle:
        for position, (key_bytes, value_bytes) in enumerate(entries):
            if position % sparse_every == 0:
                sparse.append((key_bytes, offset))
            if value_bytes is None:
                locations.append(None)
                handle.write(_HEADER.pack(len(key_bytes), _TOMBSTONE_LEN))
                handle.write(key_bytes)
                offset += _HEADER.size + len(key_bytes)
            else:
                locations.append(
                    (offset + _HEADER.size + len(key_bytes), len(value_bytes))
                )
                handle.write(_HEADER.pack(len(key_bytes), len(value_bytes)))
                handle.write(key_bytes)
                handle.write(value_bytes)
                offset += _HEADER.size + len(key_bytes) + len(value_bytes)
    segment = _Segment(
        path, sparse_every=sparse_every, preloaded=(len(entries), sparse)
    )
    segment.write_index()
    return segment, locations


class LSMStateStore(StateStore):
    """Spill-to-disk keyed store; see the module docstring for layout."""

    backend = "lsm"

    def __init__(
        self,
        directory: Optional[str] = None,
        *,
        memtable_entries: int = 16_384,
        wal: bool = False,
        sparse_every: int = 64,
    ) -> None:
        if memtable_entries < 1:
            raise ValueError(
                f"memtable_entries must be >= 1, got {memtable_entries}"
            )
        self._owns_dir = directory is None
        self._dir = directory or tempfile.mkdtemp(prefix="lsm-")
        os.makedirs(self._dir, exist_ok=True)
        self._memtable_entries = memtable_entries
        # Decoded values recently read back from segments; capped at the
        # memtable size so total resident entries stay O(2x the cap).
        self._read_cache: OrderedDict = OrderedDict()
        self._sparse_every = sparse_every
        self._wal_enabled = wal
        self._wal_file: Optional[io.BufferedWriter] = None
        self._memtable: Dict[Any, Any] = {}
        # key -> (segment, value offset, value len) of its newest
        # on-disk entry, or None while the key only exists in the
        # memtable: one seek + one read + one decode per spilled get.
        self._live: Dict[Any, Optional[Tuple[_Segment, int, int]]] = {}
        self._segments: List[_Segment] = []  # oldest -> newest
        self._counter = 0
        self._pinned: set = set()  # segment paths referenced by checkpoints
        self._checkpointed: set = set()  # paths shipped in any checkpoint
        self.flushes = 0
        self.compactions = 0
        self.cache_hits = 0
        self.segment_reads = 0
        self._open_existing()

    # -- open / manifest ---------------------------------------------------

    @property
    def directory(self) -> str:
        """The on-disk directory of this store."""
        return self._dir

    def _manifest_path(self) -> str:
        return os.path.join(self._dir, _MANIFEST)

    def _wal_path(self) -> str:
        return os.path.join(self._dir, _WAL)

    def _open_existing(self) -> None:
        manifest_path = self._manifest_path()
        if os.path.exists(manifest_path):
            with open(manifest_path, "rb") as handle:
                manifest = pickle.load(handle)
            self._counter = manifest["counter"]
            for path in manifest["segments"]:
                self._segments.append(
                    _Segment(path, sparse_every=self._sparse_every)
                )
            self._rebuild_live()
        if self._wal_enabled:
            self._replay_wal()
            self._wal_file = open(self._wal_path(), "ab")

    def _write_manifest(self) -> None:
        payload = pickle.dumps(
            {
                "counter": self._counter,
                "segments": [segment.path for segment in self._segments],
            },
            protocol=_PROTO,
        )
        tmp = self._manifest_path() + ".tmp"
        with open(tmp, "wb") as handle:
            handle.write(payload)
        os.replace(tmp, self._manifest_path())

    def _rebuild_live(self) -> None:
        """Rebuild the key directory by scanning segments oldest-first."""
        self._live.clear()
        for segment in self._segments:
            for key_bytes, value, offset in segment._iter_raw():
                key = _decode(key_bytes)
                if value is None:
                    self._live.pop(key, None)
                else:
                    self._live[key] = (
                        segment,
                        offset + _HEADER.size + len(key_bytes),
                        len(value),
                    )

    # -- WAL ---------------------------------------------------------------

    def _replay_wal(self) -> None:
        path = self._wal_path()
        if not os.path.exists(path):
            return
        with open(path, "rb") as handle:
            while True:
                header = handle.read(4)
                if len(header) < 4:
                    break
                (length,) = struct.unpack("<I", header)
                payload = handle.read(length)
                if len(payload) < length:
                    break  # torn tail from a crash mid-append
                try:
                    key, value = pickle.loads(payload)
                except (pickle.UnpicklingError, EOFError):
                    break
                self._apply(key, value, log=False)

    def _wal_append(self, key: Any, value: Any) -> None:
        payload = pickle.dumps((key, value), protocol=_PROTO)
        self._wal_file.write(struct.pack("<I", len(payload)))
        self._wal_file.write(payload)
        self._wal_file.flush()

    def _reset_wal(self) -> None:
        if not self._wal_enabled:
            return
        if self._wal_file is not None:
            self._wal_file.close()
        self._wal_file = open(self._wal_path(), "wb")

    # -- core ops ----------------------------------------------------------

    def _apply(self, key: Any, value: Any, log: bool = True) -> None:
        if log and self._wal_enabled and self._wal_file is not None:
            self._wal_append(key, value)
        self._memtable[key] = value
        self._read_cache.pop(key, None)
        if value is TOMBSTONE or isinstance(value, _Tombstone):
            self._live.pop(key, None)
        else:
            self._live.setdefault(key, None)

    def get(self, key: Any, default: Any = None) -> Any:
        value = self._memtable.get(key, _MISSING)
        if value is not _MISSING:
            if isinstance(value, _Tombstone):
                return default
            return value
        if key not in self._live:
            return default
        cached = self._read_cache.get(key, _MISSING)
        if cached is not _MISSING:
            self._read_cache.move_to_end(key)
            self.cache_hits += 1
            return cached
        location = self._live.get(key, _MISSING)
        if location is _MISSING:
            # Never stored (or deleted): the directory answers absent
            # reads in O(1) instead of probing every segment.
            return default
        if location is not None:
            segment, offset, length = location
            handle = segment._handle()
            handle.seek(offset)
            value = _decode(handle.read(length))
            self.segment_reads += 1
            self._read_cache[key] = value
            while len(self._read_cache) > self._memtable_entries:
                self._read_cache.popitem(last=False)
            return value
        # Directory says the key only lives in the memtable, yet the
        # memtable missed — the safety net for inconsistent hand-built
        # payloads: probe newest segment first.
        key_bytes = _encode(key)
        for segment in reversed(self._segments):
            found, value_bytes = segment.get(key_bytes)
            if found:
                self.segment_reads += 1
                if value_bytes is None:
                    return default
                value = _decode(value_bytes)
                self._read_cache[key] = value
                while len(self._read_cache) > self._memtable_entries:
                    self._read_cache.popitem(last=False)
                return value
        return default

    def put(self, key: Any, value: Any) -> None:
        if self._wal_file is not None:
            self._wal_append(key, value)
        self._memtable[key] = value
        if self._read_cache:
            self._read_cache.pop(key, None)
        self._live.setdefault(key, None)
        if len(self._memtable) >= self._memtable_entries:
            self.flush()

    def delete(self, key: Any) -> None:
        if key not in self._live and key not in self._memtable:
            return
        self._apply(key, TOMBSTONE)
        if len(self._memtable) >= self._memtable_entries:
            self.flush()

    def __contains__(self, key: Any) -> bool:
        return key in self._live

    def __len__(self) -> int:
        return len(self._live)

    def keys(self) -> Iterator[Any]:
        return iter(list(self._live))

    def items(self) -> Iterator[Tuple[Any, Any]]:
        for key in list(self._live):
            yield key, self.get(key)

    def clear(self) -> None:
        self._memtable.clear()
        self._read_cache.clear()
        self._live.clear()
        for segment in self._segments:
            segment.close()
            self._unlink_if_owned(segment)
        self._segments = []
        self._reset_wal()
        self._write_manifest()

    # -- flush / compaction ------------------------------------------------

    def _next_segment_path(self) -> str:
        self._counter += 1
        return os.path.join(
            self._dir, f"seg-{os.getpid()}-{self._counter:06d}.seg"
        )

    def flush(self) -> None:
        """Spill the memtable into a new sorted segment."""
        if not self._memtable:
            return
        rows = sorted(
            (
                (
                    _encode(key),
                    key,
                    None
                    if isinstance(value, _Tombstone)
                    else _encode(value),
                )
                for key, value in self._memtable.items()
            ),
            key=lambda row: row[0],
        )
        entries = [(key_bytes, value) for key_bytes, _key, value in rows]
        segment, locations = _write_segment(
            self._next_segment_path(), entries, self._sparse_every
        )
        for (_key_bytes, key, _value), location in zip(rows, locations):
            if location is not None:
                self._live[key] = (segment, location[0], location[1])
        self._segments.append(segment)
        self._memtable.clear()
        self._reset_wal()
        self._write_manifest()
        self.flushes += 1

    def _unlink_if_owned(self, segment: _Segment) -> None:
        """Unlink a dropped segment's files, unless pinned or adopted."""
        if os.path.dirname(segment.path) != self._dir:
            return  # adopted from a restored payload; not ours to delete
        if segment.path in self._pinned:
            return
        for path in (segment.path, segment.path + ".idx"):
            try:
                os.unlink(path)
            except OSError:
                pass

    def compact(self) -> None:
        """Merge all segments newest-wins, dropping tombstones.

        Background-free by design: the engine calls this at checkpoint
        barriers.  A single segment with no buffered writes is already
        compact.
        """
        self.flush()
        if len(self._segments) <= 1:
            return
        merged: List[Tuple[bytes, Optional[bytes]]] = []
        # Heap of (key_bytes, -segment_position, value): the smallest
        # key wins; among equal keys the newest segment wins.
        def stream(position: int, segment: _Segment):
            for key_bytes, value in segment.iter_entries():
                yield key_bytes, -position, value

        streams = [
            stream(position, segment)
            for position, segment in enumerate(self._segments)
        ]
        previous: Optional[bytes] = None
        for key_bytes, _neg_position, value in heapq.merge(*streams):
            if key_bytes == previous:
                continue  # an older segment's entry for the same key
            previous = key_bytes
            if value is None:
                continue  # tombstone: drop on full compaction
            merged.append((key_bytes, value))
        segment, locations = _write_segment(
            self._next_segment_path(), merged, self._sparse_every
        )
        for (key_bytes, _value), location in zip(merged, locations):
            self._live[_decode(key_bytes)] = (
                segment,
                location[0],
                location[1],
            )
        old_segments = self._segments
        self._segments = [segment]
        self._write_manifest()
        for old in old_segments:
            old.close()
            self._unlink_if_owned(old)
        self.compactions += 1

    # -- checkpoint / restore ----------------------------------------------

    def checkpoint(self) -> Dict[str, Any]:
        """Flush and return an incremental manifest payload.

        ``segments`` lists every live segment (what a restore needs);
        ``new_segments`` only those not shipped by a previous checkpoint
        of this store — the incremental delta, whose on-disk bytes are
        reported as ``new_bytes``.  The listed files are pinned: later
        compactions will not unlink them.
        """
        self.flush()
        paths = [segment.path for segment in self._segments]
        sizes = {
            segment.path: segment.size_bytes for segment in self._segments
        }
        new = [path for path in paths if path not in self._checkpointed]
        self._checkpointed.update(paths)
        self._pinned.update(paths)
        return {
            "backend": "lsm",
            "dir": self._dir,
            "segments": list(paths),
            "new_segments": new,
            "bytes": sum(sizes.values()),
            "new_bytes": sum(sizes[path] for path in new),
            "entries": len(self._live),
        }

    def restore(self, payload: Dict[str, Any]) -> None:
        if payload.get("backend") != "lsm":
            _restore_entries(self, payload)
            return
        for segment in self._segments:
            segment.close()
            self._unlink_if_owned(segment)
        self._memtable.clear()
        self._read_cache.clear()
        self._segments = [
            _Segment(path, sparse_every=self._sparse_every)
            for path in payload["segments"]
        ]
        self._reset_wal()
        self._write_manifest()
        self._rebuild_live()

    # -- introspection -----------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        return {
            "backend": self.backend,
            "entries": len(self._live),
            "memtable_entries": len(self._memtable),
            "segments": len(self._segments),
            "spilled_bytes": sum(
                segment.size_bytes for segment in self._segments
            ),
            "flushes": self.flushes,
            "compactions": self.compactions,
        }

    def close(self) -> None:
        for segment in self._segments:
            segment.close()
        if self._wal_file is not None:
            self._wal_file.close()
            self._wal_file = None
        if self._owns_dir:
            shutil.rmtree(self._dir, ignore_errors=True)


class _Missing:
    __slots__ = ()


_MISSING = _Missing()


def materialize_checkpoint(payload: Dict[str, Any]) -> Dict[Any, Any]:
    """Load every live entry of an LSM checkpoint payload into a dict.

    Used by cross-backend restore and by elastic migration, which must
    re-split spilled keyed state by hash without a live store instance.
    Segments are scanned oldest-first so newer entries win and
    tombstones erase.
    """
    if payload.get("backend") == "memory":
        return dict(payload["entries"])
    if payload.get("backend") != "lsm":
        raise ValueError(f"not a state payload: {payload!r}")
    entries: Dict[Any, Any] = {}
    for path in payload["segments"]:
        segment = _Segment(path)
        try:
            for key_bytes, value in segment.iter_entries():
                key = _decode(key_bytes)
                if value is None:
                    entries.pop(key, None)
                else:
                    entries[key] = _decode(value)
        finally:
            segment.close()
    return entries
