"""Shared arrangements: multi-version compacting keyed indexes.

An :class:`Arrangement` stores, per key, a sorted run of
``(time, delta)`` entries plus a *compacted prefix* — a single combined
value summarising every delta older than the **compaction frontier**.
Any number of readers hold :class:`ReaderLease`\\ s whose floors bound
how far the frontier may advance, so a reader that still needs history
keeps it alive while everyone else's deltas consolidate ("Shared
Arrangements", McSherry et al.; PAPERS.md).

The shared aggregation operator maintains one arrangement per instance
over its selected input stream: every delta that arrives is inserted
once, regardless of how many queries consume it, and the slicing
watermark drives the frontier.  The payoff is *attach without warm-up*:
a newly created ad-hoc query reads the deltas already arranged between
the frontier and the watermark and immediately emits results for window
spans that predate its own creation — the fig10/fig11 deployment-latency
story — instead of waiting a full window length for fresh data.

The structure is deliberately plain picklable data (dicts, lists,
tuples): it rides operator snapshots through checkpoints, kill/recover,
and elastic migration unchanged, and its per-key runs split by key hash
exactly like the slice stores do.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

__all__ = ["Arrangement", "ArrangementManager", "ReaderLease"]


class ReaderLease:
    """One reader's hold on arrangement history.

    ``floor`` is the oldest time the reader may still read; the
    arrangement never compacts past the minimum floor across live
    leases.  Advance the floor as the reader's needs move forward;
    release the lease when done.
    """

    __slots__ = ("lease_id", "name", "floor")

    def __init__(self, lease_id: int, name: str, floor: int) -> None:
        self.lease_id = lease_id
        self.name = name
        self.floor = floor

    def advance(self, floor: int) -> None:
        """Raise the floor (monotonic; lowering is a no-op)."""
        if floor > self.floor:
            self.floor = floor

    def __repr__(self) -> str:
        return f"ReaderLease({self.name!r}, floor={self.floor})"


class Arrangement:
    """A multi-version keyed index with lease-bounded compaction."""

    def __init__(
        self,
        name: str,
        combine: Optional[Callable[[Any, Any], Any]] = None,
    ) -> None:
        self.name = name
        self._combine = combine
        # key -> sorted [(time, delta), ...] newer than the frontier.
        self._runs: Dict[Any, List[Tuple[int, Any]]] = {}
        # key -> (delta count, combined value | None) at/under the frontier.
        self._compacted: Dict[Any, Tuple[int, Any]] = {}
        self.frontier = 0
        self._target_frontier = 0
        self._leases: Dict[int, ReaderLease] = {}
        self._next_lease_id = 1
        self.inserts = 0
        self.compacted_deltas = 0
        self.compactions = 0

    # -- writes ------------------------------------------------------------

    def insert(self, time_ms: int, key: Any, delta: Any) -> None:
        """Record one delta for ``key`` at ``time_ms``."""
        self.inserts += 1
        if time_ms < self.frontier:
            # Behind the frontier: fold straight into the compacted
            # prefix so the arrangement stays lossless for readers of
            # the consolidated history.
            self._fold_compacted(key, delta)
            return
        run = self._runs.get(key)
        if run is None:
            self._runs[key] = [(time_ms, delta)]
        elif not run or time_ms >= run[-1][0]:
            run.append((time_ms, delta))
        else:
            insort(run, (time_ms, delta))

    def _fold_compacted(self, key: Any, delta: Any) -> None:
        count, combined = self._compacted.get(key, (0, None))
        if combined is None or self._combine is None:
            combined = delta
        else:
            combined = self._combine(combined, delta)
        self._compacted[key] = (count + 1, combined)
        self.compacted_deltas += 1

    # -- leases ------------------------------------------------------------

    def acquire_lease(
        self, name: str, floor: Optional[int] = None
    ) -> ReaderLease:
        """Register a reader; its floor defaults to the current frontier."""
        lease = ReaderLease(
            self._next_lease_id,
            name,
            self.frontier if floor is None else floor,
        )
        self._next_lease_id += 1
        self._leases[lease.lease_id] = lease
        return lease

    def release_lease(self, lease: ReaderLease) -> None:
        """Drop a reader's hold (idempotent)."""
        self._leases.pop(lease.lease_id, None)

    @property
    def reader_leases(self) -> int:
        """Number of live reader leases."""
        return len(self._leases)

    def lease_floor(self) -> Optional[int]:
        """The oldest floor across live leases (None without leases)."""
        if not self._leases:
            return None
        return min(lease.floor for lease in self._leases.values())

    # -- compaction --------------------------------------------------------

    def advance_frontier(self, target: int) -> int:
        """Compact deltas older than ``min(target, lease floor)``.

        Returns the number of deltas consolidated.  The frontier is
        monotonic; requests behind it are no-ops.  ``target`` is
        remembered either way so :meth:`compaction_debt` can report how
        much history leases are pinning.
        """
        if target > self._target_frontier:
            self._target_frontier = target
        floor = self.lease_floor()
        effective = target if floor is None else min(target, floor)
        if effective <= self.frontier:
            return 0
        self.frontier = effective
        moved = 0
        for key in list(self._runs):
            run = self._runs[key]
            cut = bisect_left(run, (effective, _NEG_INF))
            if not cut:
                continue
            for _time, delta in run[:cut]:
                self._fold_compacted(key, delta)
                moved += 1
            del run[:cut]
            if not run:
                del self._runs[key]
        if moved:
            self.compactions += 1
        return moved

    def compaction_debt(self) -> int:
        """Deltas older than the *requested* frontier still uncompacted.

        Non-zero debt means reader leases are holding history back — the
        gauge operators export so pinned state is visible.
        """
        target = self._target_frontier
        if target <= self.frontier:
            return 0
        debt = 0
        for run in self._runs.values():
            debt += bisect_left(run, (target, _NEG_INF))
        return debt

    # -- reads -------------------------------------------------------------

    def read(
        self, key: Any, since: Optional[int] = None
    ) -> Tuple[Optional[Tuple[int, Any]], List[Tuple[int, Any]]]:
        """One key's history: ``(compacted prefix, post-frontier deltas)``.

        The prefix is ``(delta count, combined value)`` or None if the
        key has no consolidated history.  ``since`` (>= the frontier)
        trims the delta list to entries at or after it.
        """
        prefix = self._compacted.get(key)
        run = self._runs.get(key, [])
        if since is not None and since > self.frontier:
            run = run[bisect_left(run, (since, _NEG_INF)) :]
        return prefix, list(run)

    def scan(
        self, start: int, end: int
    ) -> Iterator[Tuple[Any, int, Any]]:
        """All ``(key, time, delta)`` entries with time in ``[start, end)``."""
        for key, run in self._runs.items():
            lo = bisect_left(run, (start, _NEG_INF))
            for time_ms, delta in run[lo:]:
                if time_ms >= end:
                    break
                yield key, time_ms, delta

    def fold_range(
        self,
        start: int,
        end: int,
        initial: Callable[[], Any],
        add: Callable[[Any, Any], Any],
        accept: Optional[Callable[[Any], bool]] = None,
    ) -> Dict[Any, Any]:
        """Fold deltas in ``[start, end)`` into per-key accumulators.

        ``accept`` filters deltas (a late-attaching query's predicate);
        this is the attach path: a window entirely covered by arranged
        history is computed here without any operator warm-up.
        """
        out: Dict[Any, Any] = {}
        for key, _time_ms, delta in self.scan(start, end):
            if accept is not None and not accept(delta):
                continue
            acc = out.get(key)
            if acc is None:
                acc = initial()
            out[key] = add(acc, delta)
        return out

    @property
    def coverage_start(self) -> int:
        """Oldest time with exact (un-consolidated) delta history."""
        return self.frontier

    @property
    def arranged_deltas(self) -> int:
        """Deltas currently held above the frontier."""
        return sum(len(run) for run in self._runs.values())

    @property
    def arranged_keys(self) -> int:
        """Distinct keys with any arranged history."""
        return len(self._runs.keys() | self._compacted.keys())

    # -- migration ---------------------------------------------------------

    def split_by(
        self, owner_of: Callable[[Any], int], new_count: int
    ) -> List["Arrangement"]:
        """Partition keyed history into ``new_count`` arrangements.

        Control state (frontier, leases, counters) replicates; runs and
        compacted prefixes split by key — the same discipline as the
        slice stores in :mod:`repro.core.migration`.
        """
        parts = [Arrangement(self.name, self._combine) for _ in range(new_count)]
        for part in parts:
            part.frontier = self.frontier
            part._target_frontier = self._target_frontier
            part._next_lease_id = self._next_lease_id
            for lease in self._leases.values():
                part._leases[lease.lease_id] = ReaderLease(
                    lease.lease_id, lease.name, lease.floor
                )
        for key, run in self._runs.items():
            parts[owner_of(key)]._runs[key] = list(run)
        for key, prefix in self._compacted.items():
            parts[owner_of(key)]._compacted[key] = prefix
        return parts

    def stats(self) -> Dict[str, Any]:
        """Per-arrangement gauges (frontier, sizes, debt, counters)."""
        return {
            "name": self.name,
            "frontier": self.frontier,
            "reader_leases": self.reader_leases,
            "arranged_deltas": self.arranged_deltas,
            "arranged_keys": self.arranged_keys,
            "compaction_debt": self.compaction_debt(),
            "inserts": self.inserts,
            "compacted_deltas": self.compacted_deltas,
        }


class _NegInf:
    """Sorts before any delta payload at the same timestamp."""

    __slots__ = ()

    def __lt__(self, other: Any) -> bool:
        return True

    def __gt__(self, other: Any) -> bool:
        return False


_NEG_INF = _NegInf()


class ArrangementManager:
    """Registry of named arrangements (one per key-space)."""

    def __init__(self) -> None:
        self._arrangements: Dict[str, Arrangement] = {}

    def get_or_create(
        self,
        name: str,
        combine: Optional[Callable[[Any, Any], Any]] = None,
    ) -> Arrangement:
        """The arrangement registered under ``name``, created if new."""
        arrangement = self._arrangements.get(name)
        if arrangement is None:
            arrangement = Arrangement(name, combine)
            self._arrangements[name] = arrangement
        return arrangement

    def get(self, name: str) -> Optional[Arrangement]:
        """The arrangement registered under ``name``, if any."""
        return self._arrangements.get(name)

    def __len__(self) -> int:
        return len(self._arrangements)

    def __iter__(self) -> Iterator[Arrangement]:
        return iter(self._arrangements.values())

    def stats(self) -> Dict[str, Any]:
        """Fleet-level rollup for serve stats and obs gauges."""
        total = {
            "arrangement_count": len(self._arrangements),
            "reader_leases": 0,
            "arranged_deltas": 0,
            "arranged_keys": 0,
            "compaction_debt": 0,
            "inserts": 0,
            "compacted_deltas": 0,
        }
        for arrangement in self._arrangements.values():
            stats = arrangement.stats()
            total["reader_leases"] += stats["reader_leases"]
            total["arranged_deltas"] += stats["arranged_deltas"]
            total["arranged_keys"] += stats["arranged_keys"]
            total["compaction_debt"] += stats["compaction_debt"]
            total["inserts"] += stats["inserts"]
            total["compacted_deltas"] += stats["compacted_deltas"]
        return total
