"""Reproduction of *AStream: Ad-hoc Shared Stream Processing* (SIGMOD 2019).

Layout:

* :mod:`repro.minispe` — the substrate: a from-scratch mini stream
  processing engine standing in for Apache Flink (event time, windows,
  state, checkpointing, simulated cluster).
* :mod:`repro.core` — AStream itself: query-set bitsets, changelogs,
  shared selection/join/aggregation with dynamic window slicing, router,
  and the :class:`~repro.core.engine.AStreamEngine` facade.
* :mod:`repro.baseline` — a Flink-like query-at-a-time engine (one
  topology per query) used as the comparison baseline.
* :mod:`repro.workloads` — the paper's data/query generators, the SC1 and
  SC2 scenarios, and the driver with FIFO queues and ACK backpressure.
* :mod:`repro.harness` — metrics, the experiment runner, and one
  experiment per evaluation figure (9–20).
* :mod:`repro.faults` — declarative fault injection (node crashes,
  channel drops/duplicates/delays, operator exceptions, slow nodes)
  plus a :class:`~repro.faults.supervisor.Supervisor` that detects
  failures, drives checkpoint-restore + replay recovery, and reports
  MTTR — the chaos-testing harness behind ``tests/integration/test_chaos.py``.

Quickstart::

    from repro import AStreamEngine, EngineConfig, JoinQuery, WindowSpec
    from repro.core.query import FieldPredicate, Comparison

    engine = AStreamEngine(EngineConfig(streams=("ads", "purchases")))
    query = JoinQuery(
        left_stream="ads",
        right_stream="purchases",
        left_predicate=FieldPredicate(0, Comparison.GT, 10),
        right_predicate=FieldPredicate(1, Comparison.LE, 50),
        window_spec=WindowSpec.tumbling(5_000),
    )
    engine.submit(query, now_ms=0)
    engine.tick(now_ms=1_000)            # changelog flush -> query live
    ...
"""

import logging as _logging

# Library contract: no handlers by default — entry points opt into
# console logging via repro.logsetup.configure_logging (runner
# --verbose).
_logging.getLogger("repro").addHandler(_logging.NullHandler())

from repro.core import (
    AggregationQuery,
    AggregationSpec,
    AStreamEngine,
    ComplexQuery,
    EngineConfig,
    FieldPredicate,
    JoinQuery,
    QuerySet,
    SelectionQuery,
    SqlError,
    WindowSpec,
    parse_query,
)
# Imported after repro.core: the faults package reaches back into
# core/workloads, so it must not start the package import chain.
from repro.faults import (
    FaultEvent,
    FaultInjector,
    FaultKind,
    FaultPlan,
    Supervisor,
    SupervisorPolicy,
)
from repro.minispe.cluster import ClusterSpec, SimulatedCluster

__version__ = "1.0.0"

__all__ = [
    "AStreamEngine",
    "AggregationQuery",
    "AggregationSpec",
    "ClusterSpec",
    "ComplexQuery",
    "EngineConfig",
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FieldPredicate",
    "JoinQuery",
    "QuerySet",
    "SelectionQuery",
    "SimulatedCluster",
    "SqlError",
    "Supervisor",
    "SupervisorPolicy",
    "WindowSpec",
    "__version__",
    "parse_query",
]
