"""Declarative, deterministic fault plans.

A :class:`FaultPlan` is a time-ordered list of :class:`FaultEvent`\\ s
scheduled in *virtual* time, so a chaos run is exactly as reproducible as
a fault-free one: the same plan against the same workload produces the
same failures, the same recoveries, and the same outputs.

Supported fault kinds:

* ``NODE_CRASH`` / ``NODE_RESTORE`` — take a simulated cluster node down
  (slots reclaimed, full-topology restart on the survivors) and bring it
  back;
* ``OPERATOR_EXCEPTION`` — raise from an operator instance when the Nth
  data record (counted from arming) reaches a vertex;
* ``CHANNEL_DROP`` / ``CHANNEL_DUPLICATE`` / ``CHANNEL_DELAY`` — corrupt
  the next ``count`` data records crossing one channel (edge) of the job
  graph;
* ``SLOW_NODE`` — a latency multiplier over a time window, modelling a
  straggler node (charged to queue waiting by the driver).

Plans are hand-written for targeted tests or drawn from
:meth:`FaultPlan.random` for seeded chaos runs.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Tuple


class FaultKind(enum.Enum):
    """The failure modes the injector knows how to produce."""

    NODE_CRASH = "node_crash"
    NODE_RESTORE = "node_restore"
    OPERATOR_EXCEPTION = "operator_exception"
    CHANNEL_DROP = "channel_drop"
    CHANNEL_DUPLICATE = "channel_duplicate"
    CHANNEL_DELAY = "channel_delay"
    SLOW_NODE = "slow_node"


_NODE_KINDS = (FaultKind.NODE_CRASH, FaultKind.NODE_RESTORE, FaultKind.SLOW_NODE)
_CHANNEL_KINDS = (
    FaultKind.CHANNEL_DROP,
    FaultKind.CHANNEL_DUPLICATE,
    FaultKind.CHANNEL_DELAY,
)


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    Which fields matter depends on ``kind``:

    * node faults use ``node`` (and ``factor``/``duration_ms`` for
      ``SLOW_NODE``);
    * ``OPERATOR_EXCEPTION`` uses ``vertex``, ``after_records`` (how many
      records the vertex processes after arming before the fault fires)
      and ``repeat`` (how many consecutive records fail — a poison tuple
      that defeats retries needs ``repeat >= max_attempts``);
    * channel faults use ``edge`` (``"source_vertex->target_vertex"``),
      ``count`` (records affected) and ``delay_ms`` for ``CHANNEL_DELAY``.
    """

    at_ms: int
    kind: FaultKind
    node: Optional[int] = None
    vertex: Optional[str] = None
    edge: Optional[str] = None
    after_records: int = 0
    repeat: int = 1
    count: int = 1
    delay_ms: int = 0
    factor: float = 1.0
    duration_ms: int = 0

    def __post_init__(self) -> None:
        if self.at_ms < 0:
            raise ValueError(f"at_ms must be >= 0, got {self.at_ms}")
        if self.kind in _NODE_KINDS and self.node is None:
            raise ValueError(f"{self.kind.value} events need a node index")
        if self.kind is FaultKind.OPERATOR_EXCEPTION and not self.vertex:
            raise ValueError("operator_exception events need a vertex name")
        if self.kind in _CHANNEL_KINDS:
            if not self.edge or "->" not in self.edge:
                raise ValueError(
                    f"channel events need an edge like 'src->dst', "
                    f"got {self.edge!r}"
                )
            if self.count < 1:
                raise ValueError(f"count must be >= 1, got {self.count}")
        if self.kind is FaultKind.CHANNEL_DELAY and self.delay_ms <= 0:
            raise ValueError("channel_delay events need delay_ms > 0")
        if self.kind is FaultKind.SLOW_NODE:
            if self.factor <= 1.0:
                raise ValueError(
                    f"slow_node factor must exceed 1.0, got {self.factor}"
                )
            if self.duration_ms <= 0:
                raise ValueError("slow_node events need duration_ms > 0")
        if self.repeat < 1:
            raise ValueError(f"repeat must be >= 1, got {self.repeat}")

    def describe(self) -> str:
        """Stable one-line description (recovery logs, determinism tests)."""
        target = (
            self.edge
            or self.vertex
            or (f"node{self.node}" if self.node is not None else "?")
        )
        return f"t={self.at_ms}ms {self.kind.value} {target}"


@dataclass
class FaultPlan:
    """A named, time-ordered collection of fault events."""

    name: str = "fault-plan"
    events: List[FaultEvent] = field(default_factory=list)
    seed: Optional[int] = None
    """The seed this plan was drawn from, if randomly generated."""

    def sorted(self) -> List[FaultEvent]:
        """Events in firing order (stable on ties)."""
        return sorted(self.events, key=lambda event: event.at_ms)

    def add(self, event: FaultEvent) -> "FaultPlan":
        """Append one event (chainable)."""
        self.events.append(event)
        return self

    def shifted(self, delta_ms: int) -> "FaultPlan":
        """A copy with every event moved ``delta_ms`` later."""
        return FaultPlan(
            name=self.name,
            events=[
                replace(event, at_ms=event.at_ms + delta_ms)
                for event in self.events
            ],
            seed=self.seed,
        )

    def count(self, kind: FaultKind) -> int:
        """Events of one kind."""
        return sum(1 for event in self.events if event.kind is kind)

    def __len__(self) -> int:
        return len(self.events)

    @classmethod
    def random(
        cls,
        seed: int,
        duration_ms: int,
        nodes: int,
        edges: Sequence[str] = (),
        vertices: Sequence[str] = (),
        crashes: int = 3,
        channel_faults: int = 2,
        operator_faults: int = 0,
        slow_nodes: int = 0,
        restore_after_ms: int = 2_000,
        channel_fault_kinds: Tuple[FaultKind, ...] = (
            FaultKind.CHANNEL_DROP,
            FaultKind.CHANNEL_DUPLICATE,
        ),
    ) -> "FaultPlan":
        """Draw a randomized-but-seeded chaos plan.

        Crashes pick a random node and schedule a matching restore
        ``restore_after_ms`` later (so capacity returns and runs stay
        schedulable); channel faults pick random edges and kinds from
        ``channel_fault_kinds``; operator faults pick random vertices.
        Identical arguments always produce the identical plan.
        """
        if duration_ms <= 0:
            raise ValueError("duration_ms must be positive")
        if nodes < 1:
            raise ValueError("need at least one node")
        if channel_faults and not edges:
            raise ValueError("channel faults need candidate edges")
        if operator_faults and not vertices:
            raise ValueError("operator faults need candidate vertices")
        rng = random.Random(seed)
        plan = cls(name=f"chaos-seed{seed}", seed=seed)
        for _ in range(crashes):
            node = rng.randrange(nodes)
            at_ms = rng.randrange(1, max(2, duration_ms - restore_after_ms))
            plan.add(FaultEvent(at_ms=at_ms, kind=FaultKind.NODE_CRASH, node=node))
            plan.add(
                FaultEvent(
                    at_ms=at_ms + restore_after_ms,
                    kind=FaultKind.NODE_RESTORE,
                    node=node,
                )
            )
        for _ in range(channel_faults):
            plan.add(
                FaultEvent(
                    at_ms=rng.randrange(1, duration_ms),
                    kind=rng.choice(tuple(channel_fault_kinds)),
                    edge=rng.choice(tuple(edges)),
                    count=rng.randint(1, 3),
                    delay_ms=rng.randrange(100, 1_000),
                )
            )
        for _ in range(operator_faults):
            plan.add(
                FaultEvent(
                    at_ms=rng.randrange(1, duration_ms),
                    kind=FaultKind.OPERATOR_EXCEPTION,
                    vertex=rng.choice(tuple(vertices)),
                    after_records=rng.randrange(0, 50),
                )
            )
        for _ in range(slow_nodes):
            at_ms = rng.randrange(1, duration_ms)
            plan.add(
                FaultEvent(
                    at_ms=at_ms,
                    kind=FaultKind.SLOW_NODE,
                    node=rng.randrange(nodes),
                    factor=1.0 + rng.random() * 3.0,
                    duration_ms=rng.randrange(500, 3_000),
                )
            )
        return plan
