"""Deterministic fault injector for the minispe substrate.

:class:`FaultInjector` executes a :class:`~repro.faults.plan.FaultPlan`
against a live job:

* time-based events (node crash/restore, slow-node windows) fire when
  :meth:`FaultInjector.advance` passes their virtual timestamp;
* channel faults arm at their timestamp and then strike the next
  ``count`` data records crossing the matching edge, via the runtime's
  channel hook (drop → 0 copies, duplicate → 2, delay → withheld and
  redelivered later);
* operator faults arm at their timestamp and raise
  :class:`InjectedFaultError` from the deliver hook once the target
  vertex has processed ``after_records`` further records.

Everything the injector does is recorded as a :class:`FaultRecord`; the
supervisor drains the records that require recovery
(:meth:`FaultInjector.unhandled_failures`) and marks them handled once
the engine has been recovered.  Because faults are driven entirely by
virtual time and stream position, two runs with the same plan and the
same workload produce identical fault logs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.faults.plan import FaultEvent, FaultKind, FaultPlan
from repro.minispe.cluster import SimulatedCluster
from repro.minispe.graph import Edge
from repro.minispe.record import Record
from repro.minispe.runtime import JobRuntime


class InjectedFaultError(RuntimeError):
    """Raised from an operator instance by an armed operator fault."""

    def __init__(self, vertex: str, index: int, event: FaultEvent) -> None:
        super().__init__(
            f"injected operator failure at {vertex}[{index}] "
            f"({event.describe()})"
        )
        self.vertex = vertex
        self.index = index
        self.event = event


@dataclass
class FaultRecord:
    """One fault the injector actually executed."""

    event: FaultEvent
    fired_at_ms: int
    detail: str
    requires_recovery: bool
    handled: bool = False
    strikes: int = 0
    """Data records affected so far (channel/operator faults)."""

    def describe(self) -> str:
        """Stable line for recovery-log determinism comparisons."""
        return f"fired@{self.fired_at_ms}ms {self.event.describe()} [{self.detail}]"


@dataclass
class _ArmedChannelFault:
    event: FaultEvent
    remaining: int
    record: Optional[FaultRecord] = None


@dataclass
class _ArmedOperatorFault:
    event: FaultEvent
    seen: int = 0
    remaining_raises: int = field(default=1)
    record: Optional[FaultRecord] = None


@dataclass
class _SlowWindow:
    until_ms: int
    factor: float


class FaultInjector:
    """Executes a fault plan against a runtime and (optionally) a cluster.

    Usage::

        injector = FaultInjector(plan, cluster=cluster)
        injector.attach(engine.runtime)
        ...
        injector.advance(now_ms)        # each driver step / heartbeat
        for record in injector.unhandled_failures():
            ...trigger recovery, then record.handled = True
    """

    def __init__(
        self,
        plan: FaultPlan,
        cluster: Optional[SimulatedCluster] = None,
    ) -> None:
        if cluster is None and any(
            event.kind in (FaultKind.NODE_CRASH, FaultKind.NODE_RESTORE)
            for event in plan.events
        ):
            raise ValueError("node crash/restore events need a cluster")
        self.plan = plan
        self.cluster = cluster
        self.now_ms = 0
        self.records: List[FaultRecord] = []
        self._pending: List[FaultEvent] = plan.sorted()
        self._armed_channels: List[_ArmedChannelFault] = []
        self._armed_operators: List[_ArmedOperatorFault] = []
        self._slow_windows: List[_SlowWindow] = []
        self._delayed: List[Tuple[int, int, int, Record]] = []
        # (due_ms, edge_idx, from_index, record), kept in due order.
        self._runtime: Optional[JobRuntime] = None

    # -- wiring --------------------------------------------------------------

    def attach(self, runtime: JobRuntime) -> None:
        """Install the channel/deliver hooks on a runtime."""
        self._runtime = runtime
        runtime.set_fault_hooks(
            channel_hook=self._on_channel,
            deliver_hook=self._on_deliver,
        )

    def detach(self) -> None:
        """Remove the hooks and discard withheld (delayed) records.

        Called around recovery: the replacement runtime replays the input
        log fault-free, which already covers any record the injector was
        still withholding — redelivering it afterwards would duplicate it.
        """
        if self._runtime is not None:
            self._runtime.clear_fault_hooks()
        self._runtime = None
        self._delayed.clear()

    @property
    def attached(self) -> bool:
        """True while hooks are installed on a runtime."""
        return self._runtime is not None

    # -- virtual time --------------------------------------------------------

    def advance(self, now_ms: int) -> List[FaultRecord]:
        """Fire every event scheduled at or before ``now_ms``.

        Returns the records created by this call (node events and slow
        windows fire here; channel/operator events only *arm* here and
        create their records when they first strike a data record).
        """
        self.now_ms = max(self.now_ms, now_ms)
        fired: List[FaultRecord] = []
        while self._pending and self._pending[0].at_ms <= now_ms:
            event = self._pending.pop(0)
            record = self._fire(event)
            if record is not None:
                fired.append(record)
        self._slow_windows = [
            window for window in self._slow_windows if window.until_ms > now_ms
        ]
        return fired

    def _fire(self, event: FaultEvent) -> Optional[FaultRecord]:
        kind = event.kind
        if kind is FaultKind.NODE_CRASH:
            crashed = self.cluster.fail_node(event.node)
            detail = (
                f"node {event.node} down, "
                f"{self.cluster.healthy_nodes} healthy"
                if crashed
                else f"node {event.node} already down"
            )
            return self._record(event, detail, requires_recovery=crashed)
        if kind is FaultKind.NODE_RESTORE:
            restored = self.cluster.restore_node(event.node)
            detail = (
                f"node {event.node} back, "
                f"{self.cluster.healthy_nodes} healthy"
                if restored
                else f"node {event.node} was not down"
            )
            return self._record(event, detail, requires_recovery=False)
        if kind is FaultKind.SLOW_NODE:
            self._slow_windows.append(
                _SlowWindow(
                    until_ms=event.at_ms + event.duration_ms,
                    factor=event.factor,
                )
            )
            return self._record(
                event,
                f"x{event.factor:.2f} for {event.duration_ms}ms",
                requires_recovery=False,
            )
        if kind is FaultKind.OPERATOR_EXCEPTION:
            self._armed_operators.append(
                _ArmedOperatorFault(event, remaining_raises=event.repeat)
            )
            return None
        # Channel faults: drop / duplicate / delay.
        self._armed_channels.append(_ArmedChannelFault(event, event.count))
        return None

    def _record(
        self, event: FaultEvent, detail: str, requires_recovery: bool
    ) -> FaultRecord:
        record = FaultRecord(
            event=event,
            fired_at_ms=max(self.now_ms, event.at_ms),
            detail=detail,
            requires_recovery=requires_recovery,
        )
        self.records.append(record)
        return record

    def slow_factor(self, now_ms: int) -> float:
        """Latency multiplier currently in effect (1.0 = healthy)."""
        factor = 1.0
        for window in self._slow_windows:
            if window.until_ms > now_ms:
                factor = max(factor, window.factor)
        return factor

    # -- data-path hooks -----------------------------------------------------

    def _on_channel(self, edge: Edge, from_index: int, record: Record) -> int:
        key = f"{edge.source}->{edge.target}"
        for armed in self._armed_channels:
            if armed.remaining <= 0 or armed.event.edge != key:
                continue
            armed.remaining -= 1
            kind = armed.event.kind
            if armed.record is None or armed.record.handled:
                # A handled record means a recovery already absorbed the
                # earlier strikes; strikes landing after it are fresh
                # corruption and need their own detectable record.
                requires_recovery = kind is not FaultKind.CHANNEL_DELAY
                armed.record = self._record(
                    armed.event, kind.value, requires_recovery
                )
            armed.record.strikes += 1
            if kind is FaultKind.CHANNEL_DROP:
                return 0
            if kind is FaultKind.CHANNEL_DUPLICATE:
                return 2
            # CHANNEL_DELAY: withhold now, redeliver when due.
            runtime = self._runtime
            edge_idx = runtime._edge_index[id(edge)]
            self._delayed.append(
                (self.now_ms + armed.event.delay_ms, edge_idx, from_index, record)
            )
            self._delayed.sort(key=lambda entry: entry[0])
            return 0
        return 1

    def _on_deliver(self, vertex: str, index: int, record: Record) -> None:
        for armed in self._armed_operators:
            if armed.remaining_raises <= 0 or armed.event.vertex != vertex:
                continue
            armed.seen += 1
            if armed.seen <= armed.event.after_records:
                continue
            armed.remaining_raises -= 1
            if armed.record is None or armed.record.handled:
                armed.record = self._record(
                    armed.event,
                    f"raise at {vertex}[{index}]",
                    requires_recovery=True,
                )
            armed.record.strikes += 1
            raise InjectedFaultError(vertex, index, armed.event)

    # -- delayed records -----------------------------------------------------

    @property
    def delayed_count(self) -> int:
        """Records currently withheld by delay faults."""
        return len(self._delayed)

    def drain_due_redeliveries(self, now_ms: int) -> int:
        """Redeliver withheld records whose delay expired; returns count."""
        delivered = 0
        while self._delayed and self._delayed[0][0] <= now_ms:
            _, edge_idx, from_index, record = self._delayed.pop(0)
            if self._runtime is not None:
                self._runtime.redeliver(edge_idx, from_index, record)
                delivered += 1
        return delivered

    # -- supervisor interface ------------------------------------------------

    def unhandled_failures(self) -> List[FaultRecord]:
        """Executed faults that corrupted state and await recovery."""
        return [
            record
            for record in self.records
            if record.requires_recovery and not record.handled
        ]

    @property
    def exhausted(self) -> bool:
        """True once every planned event fired or armed-and-struck out."""
        return (
            not self._pending
            and all(armed.remaining <= 0 for armed in self._armed_channels)
            and all(
                armed.remaining_raises <= 0 for armed in self._armed_operators
            )
            and not self._delayed
        )

    def log_lines(self) -> List[str]:
        """The full fault log (stable; determinism assertions)."""
        return [record.describe() for record in self.records]
