"""Deterministic fault injection and supervised recovery.

The chaos-engineering layer of the reproduction: declarative
virtual-time fault plans (:mod:`~repro.faults.plan`), an injector that
executes them against the minispe substrate
(:mod:`~repro.faults.injector`), and a supervisor that detects the
damage, drives checkpoint/replay recovery, and measures MTTR
(:mod:`~repro.faults.supervisor`).
"""

from repro.faults.injector import FaultInjector, FaultRecord, InjectedFaultError
from repro.faults.plan import FaultEvent, FaultKind, FaultPlan
from repro.faults.supervisor import RecoveryEvent, Supervisor, SupervisorPolicy

__all__ = [
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultRecord",
    "InjectedFaultError",
    "RecoveryEvent",
    "Supervisor",
    "SupervisorPolicy",
]
