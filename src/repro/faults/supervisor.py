"""Supervised recovery: detect injected failures, restore, measure MTTR.

The :class:`Supervisor` plays the role of Flink's job manager + restart
strategy on top of either engine:

* each :meth:`Supervisor.heartbeat` advances the fault injector's
  virtual clock, redelivers delayed records that came due, and checks for
  executed faults that corrupted state (node crashes, channel
  drops/duplicates, operator exceptions);
* any such fault triggers a **recovery**: the injector is detached, the
  engine recovers (checkpoint restore + fault-free input-log replay for
  :class:`~repro.core.engine.AStreamEngine`; full topology redeploy for
  the baseline), the injector is reattached to the fresh runtime, and a
  :class:`RecoveryEvent` records detection time, completion time, and
  MTTR — recovery deployment cost is charged through the cluster's
  :class:`~repro.minispe.cluster.DeploymentCostModel` in virtual time;
* between failures the supervisor takes **periodic checkpoints** (and
  optionally compacts the input log), which bound the replay a future
  recovery pays — the trade-off ``benchmarks/bench_fault_recovery.py``
  sweeps;
* if QoS violations persist after recoveries, the supervisor escalates
  to **load shedding** via the admission controller (§3.4's "external
  component" reacting to measurements beyond acceptable boundaries): new
  query creations are parked until QoS recovers.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.admission import AdmissionController
from repro.core.engine import RecoveryInfo
from repro.core.qos import QoSMonitor
from repro.faults.injector import FaultInjector, FaultRecord
from repro.minispe.cluster import SimulatedCluster

logger = logging.getLogger("repro.faults.supervisor")


@dataclass
class SupervisorPolicy:
    """Operator-configured recovery behaviour."""

    checkpoint_interval_ms: int = 2_000
    """Virtual time between periodic checkpoints (0 disables them)."""
    detection_latency_ms: int = 50
    """Heartbeat-to-detection lag charged before recovery starts."""
    escalate_after_violations: int = 3
    """Consecutive post-recovery heartbeats with QoS violations before
    load shedding kicks in."""
    compact_log_on_checkpoint: bool = True
    """Truncate the engine's input log after each periodic checkpoint."""


@dataclass
class RecoveryEvent:
    """One supervised recovery, for MTTR/replay metrics and determinism
    assertions (same plan + same seed → identical event logs)."""

    cause: str
    detected_at_ms: int
    recovered_at_ms: int
    mttr_ms: int
    checkpoint_id: Optional[int] = None
    replayed_elements: int = 0
    faults: List[FaultRecord] = field(default_factory=list, repr=False)

    def describe(self) -> str:
        """Stable line for recovery-log comparisons."""
        return (
            f"detected@{self.detected_at_ms}ms recovered@{self.recovered_at_ms}ms "
            f"mttr={self.mttr_ms}ms ckpt={self.checkpoint_id} "
            f"replayed={self.replayed_elements} cause={self.cause}"
        )


class Supervisor:
    """Failure detection + supervised recovery for one engine.

    Works with both engines: ``engine.recover()`` returning a
    :class:`~repro.core.engine.RecoveryInfo` (AStream) or a plain count
    (baseline).  Checkpointing engages only when the engine supports it
    (``EngineConfig(log_inputs=True)``).
    """

    def __init__(
        self,
        engine,
        injector: Optional[FaultInjector] = None,
        cluster: Optional[SimulatedCluster] = None,
        admission: Optional[AdmissionController] = None,
        qos: Optional[QoSMonitor] = None,
        policy: Optional[SupervisorPolicy] = None,
    ) -> None:
        self.engine = engine
        self.injector = injector
        self.cluster = cluster or getattr(engine, "cluster", None)
        self.admission = admission
        self.qos = qos
        self.policy = policy or SupervisorPolicy()
        self.recovery_events: List[RecoveryEvent] = []
        self.busy_until_ms = 0
        """Virtual time until which the SUT is occupied by recovery work;
        the driver charges it as queueing delay / ACK timeout."""
        self.checkpoints_taken = 0
        self.checkpoint_failures = 0
        self.shedding_escalations = 0
        self.worker_failures_detected = 0
        """Dead/wedged shard workers surfaced by the pool's liveness
        monitor (heartbeat probing) and recovered here, with MTTR
        accounted like any other supervised recovery."""
        self._last_checkpoint_ms = 0
        self._violation_streak = 0
        config = getattr(engine, "config", None)
        self._can_checkpoint = bool(
            getattr(config, "log_inputs", False) and hasattr(engine, "checkpoint")
        )

    # -- main loop ----------------------------------------------------------

    def heartbeat(self, now_ms: int) -> Optional[RecoveryEvent]:
        """One supervision step: advance faults, recover, maybe checkpoint.

        Ordering matters: failures detected at this heartbeat are
        recovered *before* the periodic checkpoint fires, so a checkpoint
        never snapshots state corrupted by an unhandled fault.
        """
        event = None
        if self.injector is not None:
            self.injector.advance(now_ms)
            self.injector.drain_due_redeliveries(now_ms)
            failures = self.injector.unhandled_failures()
            if failures:
                event = self._recover(now_ms, failures)
        if event is None:
            event = self._probe_workers(now_ms)
        self._maybe_checkpoint(now_ms)
        self._check_qos(now_ms)
        return event

    def _probe_workers(self, now_ms: int) -> Optional[RecoveryEvent]:
        """Escalate proactively detected worker deaths into recovery.

        The process backend's pool monitor (``heartbeat_interval_s``)
        detects idle deaths and ack-deadline wedges between data-path
        calls; draining them here bounds detection latency by the
        supervision heartbeat instead of the next failed send.
        """
        poll = getattr(self.engine, "poll_worker_failures", None)
        if poll is None:
            return None
        failures = poll()
        if not failures:
            return None
        self.worker_failures_detected += len(failures)
        cause = "; ".join(
            f"worker_death: shard {failure.shard} ({failure.reason})"
            for failure in failures
        )
        return self._recover(now_ms, [], cause=cause)

    def notify_failure(self, now_ms: int, error: BaseException) -> RecoveryEvent:
        """A data-path call raised (e.g. an injected operator exception):
        recover immediately so the caller can retry the element."""
        failures = (
            self.injector.unhandled_failures() if self.injector is not None else []
        )
        if failures:
            return self._recover(now_ms, failures)
        return self._recover(now_ms, [], cause=f"external: {error}")

    # -- recovery -----------------------------------------------------------

    def _recover(
        self,
        now_ms: int,
        failures: List[FaultRecord],
        cause: Optional[str] = None,
    ) -> RecoveryEvent:
        if cause is None:
            cause = "; ".join(record.event.describe() for record in failures)
        detected_at = now_ms + self.policy.detection_latency_ms
        injector = self.injector
        if injector is not None and injector.attached:
            # Replay must be fault-free: a fault plan describes failures of
            # the crashed execution, not of its recovery.
            injector.detach()
        result = self.engine.recover()
        if isinstance(result, RecoveryInfo):
            checkpoint_id = result.checkpoint_id
            replayed = result.replayed_elements
        else:
            checkpoint_id = None
            replayed = 0
        runtime = getattr(self.engine, "runtime", None)
        if injector is not None and runtime is not None:
            injector.attach(runtime)
        cost_ms = self._recovery_cost_ms()
        recovered_at = detected_at + cost_ms
        self.busy_until_ms = max(self.busy_until_ms, recovered_at)
        fired_at = min(
            (record.fired_at_ms for record in failures), default=now_ms
        )
        event = RecoveryEvent(
            cause=cause,
            detected_at_ms=detected_at,
            recovered_at_ms=recovered_at,
            mttr_ms=recovered_at - fired_at,
            checkpoint_id=checkpoint_id,
            replayed_elements=replayed,
            faults=list(failures),
        )
        for record in failures:
            record.handled = True
        self.recovery_events.append(event)
        obs = getattr(self.engine, "obs", None)
        if obs is not None:
            for record in failures:
                obs.registry.counter("faults_injected").inc()
                obs.events.emit(
                    "fault_injected",
                    t_ms=record.fired_at_ms,
                    fault=record.event.describe(),
                )
            obs.registry.counter("supervised_recoveries").inc()
            obs.registry.histogram("mttr_ms").record(event.mttr_ms)
            obs.registry.histogram("recovery_replayed_elements").record(
                event.replayed_elements
            )
            obs.events.emit(
                "supervised_recovery",
                t_ms=now_ms,
                cause=cause,
                detected_at_ms=event.detected_at_ms,
                recovered_at_ms=event.recovered_at_ms,
                mttr_ms=event.mttr_ms,
                checkpoint_id=event.checkpoint_id,
                replayed_elements=event.replayed_elements,
            )
        logger.info(
            "supervised recovery: %s (mttr=%dms, replayed=%d)",
            cause,
            event.mttr_ms,
            event.replayed_elements,
        )
        return event

    def _recovery_cost_ms(self) -> int:
        instances = self._instance_count()
        if self.cluster is not None:
            return self.cluster.recovery_cost_ms(instances)
        return 0

    def _instance_count(self) -> int:
        graph = getattr(self.engine, "graph", None)
        if graph is not None:
            return graph.total_instances()
        jobs = getattr(self.engine, "_jobs", None)
        if jobs:
            return sum(job.instances for job in jobs.values())
        return 1

    # -- checkpointing ------------------------------------------------------

    def _maybe_checkpoint(self, now_ms: int) -> None:
        interval = self.policy.checkpoint_interval_ms
        if not self._can_checkpoint or interval <= 0:
            return
        if now_ms - self._last_checkpoint_ms < interval:
            return
        self._last_checkpoint_ms = now_ms
        try:
            self.engine.checkpoint()
        except Exception:
            # CheckpointFailed / incomplete snapshot: skip this round, the
            # previous checkpoint stays authoritative for recovery.
            self.checkpoint_failures += 1
            return
        self.checkpoints_taken += 1
        if self.policy.compact_log_on_checkpoint:
            self.engine.compact_input_log()

    # -- QoS escalation -----------------------------------------------------

    def _check_qos(self, now_ms: int) -> None:
        if self.qos is None or self.admission is None:
            return
        if not self.recovery_events:
            return  # only escalate for *post-recovery* degradation
        latencies = [
            float(event.deployment_latency_ms)
            for event in getattr(self.engine, "deployment_events", [])
            if event.kind == "create"
        ]
        if self.qos.violations(latencies):
            self._violation_streak += 1
            if (
                self._violation_streak >= self.policy.escalate_after_violations
                and not self.admission.shedding
            ):
                self.admission.enter_shedding()
                self.shedding_escalations += 1
        else:
            self._violation_streak = 0
            if self.admission.shedding:
                self.admission.exit_shedding(now_ms)

    # -- metrics ------------------------------------------------------------

    @property
    def recovery_count(self) -> int:
        """Number of supervised recoveries performed so far."""
        return len(self.recovery_events)

    @property
    def mean_mttr_ms(self) -> float:
        """Mean time to recovery over all supervised recoveries."""
        if not self.recovery_events:
            return 0.0
        return sum(event.mttr_ms for event in self.recovery_events) / len(
            self.recovery_events
        )

    @property
    def total_replayed_elements(self) -> int:
        """Input-log entries replayed across all recoveries."""
        return sum(event.replayed_elements for event in self.recovery_events)

    def log_lines(self) -> List[str]:
        """The recovery log (stable; determinism assertions)."""
        return [event.describe() for event in self.recovery_events]
