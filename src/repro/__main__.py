"""Command-line entry point: regenerate the paper's figures.

Usage::

    python -m repro list                      # available experiments
    python -m repro figures                   # run all (quick scale)
    python -m repro figures --only fig10 fig17
    python -m repro figures --full            # paper-scale query counts
    python -m repro sql "SELECT * FROM A, B RANGE 3 WHERE A.KEY = B.KEY"
    python -m repro serve --port 4650 --backend process --workers 4
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List

from repro.harness.figures import ALL_FIGURES
from repro.harness.report import render_table


def _cmd_list(_args) -> int:
    print("available experiments:")
    for name, experiment in sorted(ALL_FIGURES.items()):
        summary = (experiment.__doc__ or "").strip().splitlines()[0]
        print(f"  {name:8s} {summary}")
    return 0


def _cmd_figures(args) -> int:
    names: List[str] = args.only or sorted(ALL_FIGURES)
    unknown = [name for name in names if name not in ALL_FIGURES]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}", file=sys.stderr)
        print(f"known: {', '.join(sorted(ALL_FIGURES))}", file=sys.stderr)
        return 2
    quick = not args.full
    for name in names:
        started = time.perf_counter()
        result = ALL_FIGURES[name](quick=quick)
        elapsed = time.perf_counter() - started
        print(render_table(result))
        print(f"[{name} completed in {elapsed:.1f}s]\n")
        if args.csv:
            from pathlib import Path

            from repro.harness.report import render_csv

            directory = Path(args.csv)
            directory.mkdir(parents=True, exist_ok=True)
            target = directory / f"{name}.csv"
            target.write_text(render_csv(result))
            print(f"[wrote {target}]\n")
    return 0


def _cmd_sql(args) -> int:
    from repro.core.sql import SqlError, parse_query

    try:
        query = parse_query(args.statement)
    except SqlError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    if args.json:
        import json

        from repro.core.serde import query_to_dict

        print(json.dumps(query_to_dict(query), indent=2))
        return 0
    print(f"{type(query).__name__} ({query.query_id})")
    print(f"  streams: {', '.join(query.streams)}")
    for stage in query.stages():
        marker = "  -> sink" if stage.is_output else ""
        print(f"  stage: {stage.operator}{marker}")
    return 0


def main(argv: List[str] = None) -> int:
    """Parse arguments and dispatch."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="AStream (SIGMOD 2019) reproduction harness",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list figure experiments")

    figures = commands.add_parser("figures", help="run figure experiments")
    figures.add_argument(
        "--only", nargs="+", metavar="FIG",
        help="run only these experiments (e.g. fig10 fig17)",
    )
    figures.add_argument(
        "--full", action="store_true",
        help="paper-scale query counts (minutes per figure)",
    )
    figures.add_argument(
        "--csv", metavar="DIR",
        help="also write each figure's rows as CSV into this directory",
    )

    commands.add_parser(
        "summary", help="print the saved benchmark results (benchmarks/results)"
    )

    sql = commands.add_parser("sql", help="parse a template-SQL statement")
    sql.add_argument("statement", help="the SQL text (quote it)")
    sql.add_argument(
        "--json", action="store_true",
        help="print the parsed query as JSON (repro.core.serde format)",
    )

    serve = commands.add_parser(
        "serve", help="host the engine as a networked stream service"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=4650,
        help="frame-protocol TCP port (0 = ephemeral; default 4650)",
    )
    serve.add_argument(
        "--backend", choices=("inline", "process"), default="inline",
        help="hosted engine: in-process or sharded worker pool",
    )
    serve.add_argument(
        "--workers", type=int, default=2,
        help="worker processes for the process backend",
    )
    serve.add_argument(
        "--streams", nargs="+", default=["A", "B"], metavar="NAME",
        help="input stream names (default: A B)",
    )
    serve.add_argument(
        "--max-join-arity", type=int, default=1,
        help="largest n-ary join the engine accepts",
    )
    serve.add_argument(
        "--token", default=None,
        help="require this shared-secret token from clients",
    )
    serve.add_argument(
        "--metrics-port", type=int, default=None,
        help="serve Prometheus /metrics over HTTP on this port",
    )
    serve.add_argument(
        "--observe", action="store_true",
        help="enable the engine telemetry subsystem",
    )
    serve.add_argument(
        "--clock", choices=("wall", "manual"), default="wall",
        help="control-plane clock (manual = client-driven, deterministic)",
    )
    serve.add_argument(
        "--max-active-queries", type=int, default=None,
        help="admission cap on concurrently live queries",
    )
    serve.add_argument(
        "--heartbeat-interval", type=float, default=None, metavar="SECONDS",
        help="worker liveness probe cadence (process backend)",
    )
    serve.add_argument(
        "--ack-deadline", type=float, default=None, metavar="SECONDS",
        help="kill + report a worker with no ack progress for this long",
    )
    serve.add_argument(
        "--autoscale", action="store_true",
        help="resize the worker pool from backpressure/skew metrics",
    )
    serve.add_argument(
        "--min-workers", type=int, default=1,
        help="autoscaler floor (default 1)",
    )
    serve.add_argument(
        "--max-workers", type=int, default=8,
        help="autoscaler ceiling (default 8)",
    )
    serve.add_argument(
        "--slo-target-ms", type=float, default=None, metavar="MS",
        help="server-wide wire-latency SLO for queries with no own target",
    )
    serve.add_argument(
        "--flight-dir", default=None, metavar="DIR",
        help="write flight-recorder dumps here on supervised recoveries "
        "(default: $ASTREAM_FLIGHT_DIR)",
    )

    args = parser.parse_args(argv)
    if args.command == "list":
        return _cmd_list(args)
    if args.command == "figures":
        return _cmd_figures(args)
    if args.command == "summary":
        return _cmd_summary(args)
    if args.command == "serve":
        return _cmd_serve(args)
    return _cmd_sql(args)


def _cmd_serve(args) -> int:
    import asyncio
    import logging

    from repro.serve import AStreamServer, ServeConfig

    logging.basicConfig(
        level=logging.INFO,
        format="%(asctime)s %(name)s %(levelname)s %(message)s",
    )
    config = ServeConfig(
        host=args.host,
        port=args.port,
        backend=args.backend,
        workers=args.workers,
        streams=tuple(args.streams),
        max_join_arity=args.max_join_arity,
        auth_token=args.token,
        metrics_port=args.metrics_port,
        observe=args.observe,
        clock=args.clock,
        max_active_queries=args.max_active_queries,
        heartbeat_interval_s=args.heartbeat_interval,
        ack_deadline_s=args.ack_deadline,
        autoscale=args.autoscale,
        autoscale_min_workers=args.min_workers,
        autoscale_max_workers=args.max_workers,
        slo_target_ms=args.slo_target_ms,
        flight_dir=args.flight_dir,
    )

    async def run() -> int:
        server = AStreamServer(config)
        await server.start()
        print(f"serving on {config.host}:{server.port}", flush=True)
        if server.metrics_port is not None:
            print(
                f"metrics on http://{config.host}:{server.metrics_port}"
                "/metrics",
                flush=True,
            )
        try:
            await server.serve_forever()
        except (KeyboardInterrupt, asyncio.CancelledError):
            pass
        finally:
            await server.stop()
        return 0

    try:
        return asyncio.run(run())
    except KeyboardInterrupt:
        return 0


def _cmd_summary(_args) -> int:
    from pathlib import Path

    results_dir = Path(__file__).parent.parent.parent / "benchmarks" / "results"
    tables = sorted(results_dir.glob("*.txt")) if results_dir.exists() else []
    if not tables:
        print(
            "no saved results; run `pytest benchmarks/ --benchmark-only` first",
            file=sys.stderr,
        )
        return 1
    for table in tables:
        print(table.read_text().rstrip())
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
