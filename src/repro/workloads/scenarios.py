"""The two ad-hoc workload scenarios of Figure 6.

* **SC1** — many users, many parallel queries: queries are created at a
  fixed rate (``n`` queries per second) until a target parallelism
  (``m`` active queries) is reached, then run long ("1 q/s 20 qp",
  "10 q/s 60 qp", "100 q/s 1000 qp" in the paper's figures).  Few or no
  deletions.
* **SC2** — high churn, short-running queries: every ``m`` seconds a
  batch of ``n`` queries is submitted and the previous batch is stopped
  ("10q/10s", "30q/10s", "50q/10s").

A scenario compiles to a :class:`WorkloadSchedule` — a time-ordered list
of create/delete requests the driver feeds through its request FIFO
(Figure 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.query import Query
from repro.workloads.querygen import QueryGenerator


@dataclass(frozen=True)
class ScheduledRequest:
    """One pre-planned user request."""

    at_ms: int
    kind: str  # "create" | "delete"
    query: Optional[Query] = None
    query_id: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind == "create" and self.query is None:
            raise ValueError("create requests carry the query")
        if self.kind == "delete" and self.query_id is None:
            raise ValueError("delete requests carry the query id")


@dataclass
class WorkloadSchedule:
    """A time-ordered request sequence plus scenario metadata."""

    name: str
    requests: List[ScheduledRequest] = field(default_factory=list)

    def sorted(self) -> List[ScheduledRequest]:
        """Requests in submission order (stable on ties)."""
        return sorted(self.requests, key=lambda request: request.at_ms)

    @property
    def peak_parallelism(self) -> int:
        """Maximum concurrently active queries under this schedule."""
        active = 0
        peak = 0
        for request in self.sorted():
            if request.kind == "create":
                active += 1
                peak = max(peak, active)
            else:
                active -= 1
        return peak

    def __len__(self) -> int:
        return len(self.requests)


def sc1_schedule(
    generator: QueryGenerator,
    queries_per_second: float,
    query_parallelism: int,
    kind: str = "join",
    start_ms: int = 0,
) -> WorkloadSchedule:
    """SC1: create ``queries_per_second`` per second up to the target.

    ``n q/s m qp`` in the paper's notation: the ramp lasts ``m / n``
    seconds, after which the query population is stable and long-running.
    """
    if queries_per_second <= 0:
        raise ValueError("queries_per_second must be positive")
    if query_parallelism < 1:
        raise ValueError("query_parallelism must be >= 1")
    interval_ms = 1_000.0 / queries_per_second
    requests = [
        ScheduledRequest(
            at_ms=start_ms + int(index * interval_ms),
            kind="create",
            query=generator.query(kind),
        )
        for index in range(query_parallelism)
    ]
    name = f"SC1 {queries_per_second:g}q/s {query_parallelism}qp {kind}"
    return WorkloadSchedule(name=name, requests=requests)


def sc2_schedule(
    generator: QueryGenerator,
    queries_per_batch: int,
    batch_interval_s: int,
    batches: int,
    kind: str = "join",
    start_ms: int = 0,
) -> WorkloadSchedule:
    """SC2: every ``batch_interval_s`` submit a batch, stop the previous.

    ``n q/m s`` in the paper's notation: ``n`` queries are submitted and
    ``n`` stopped every ``m`` seconds, so at steady state exactly ``n``
    short-running queries are active and the changelog carries up to
    ``2 n`` changes per batch boundary.
    """
    if queries_per_batch < 1:
        raise ValueError("queries_per_batch must be >= 1")
    if batch_interval_s < 1:
        raise ValueError("batch_interval_s must be >= 1")
    if batches < 1:
        raise ValueError("batches must be >= 1")
    requests: List[ScheduledRequest] = []
    previous_batch: List[Query] = []
    for batch_index in range(batches):
        at_ms = start_ms + batch_index * batch_interval_s * 1_000
        for query in previous_batch:
            requests.append(
                ScheduledRequest(at_ms=at_ms, kind="delete", query_id=query.query_id)
            )
        current_batch = [generator.query(kind) for _ in range(queries_per_batch)]
        for query in current_batch:
            requests.append(
                ScheduledRequest(at_ms=at_ms, kind="create", query=query)
            )
        previous_batch = current_batch
    name = f"SC2 {queries_per_batch}q/{batch_interval_s}s x{batches} {kind}"
    return WorkloadSchedule(name=name, requests=requests)


def single_query_schedule(
    generator: QueryGenerator, kind: str = "join", at_ms: int = 0
) -> WorkloadSchedule:
    """The single-query deployment used as the sharing-overhead baseline."""
    return WorkloadSchedule(
        name=f"single {kind}",
        requests=[
            ScheduledRequest(at_ms=at_ms, kind="create", query=generator.query(kind))
        ],
    )
