"""Ingesting external traces: CSV → timestamped tuple streams.

The generated workloads reproduce the paper; a downstream user will want
to replay *their own* data.  :func:`read_csv_stream` maps a CSV file
onto the engine's tuple model — one column is the event timestamp, one
the partitioning key, and up to five numeric columns become the tuple
fields (missing ones pad with zero, matching the fixed five-field layout
of §4.2.1).

Rows are yielded in file order; pair with the driver's ``disorder_ms``/
``lateness_ms`` when the file is not timestamp-sorted, or sort it first
with :func:`sorted_by_time`.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterator, List, Sequence, Tuple

from repro.workloads.datagen import FIELD_COUNT, DataTuple


class TraceError(ValueError):
    """Raised for malformed trace files."""


def read_csv_stream(
    path,
    timestamp_column: str,
    key_column: str,
    field_columns: Sequence[str] = (),
) -> Iterator[Tuple[int, DataTuple]]:
    """Yield ``(event_time_ms, tuple)`` pairs from a CSV file.

    ``timestamp_column`` must hold integer milliseconds; ``key_column``
    and ``field_columns`` must hold numbers.  At most five field columns
    are supported (the engine's tuple layout); fewer are zero-padded.
    """
    if len(field_columns) > FIELD_COUNT:
        raise TraceError(
            f"at most {FIELD_COUNT} field columns, got {len(field_columns)}"
        )
    with open(Path(path), newline="") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None:
            raise TraceError(f"{path}: empty file (no header)")
        missing = [
            column
            for column in (timestamp_column, key_column, *field_columns)
            if column not in reader.fieldnames
        ]
        if missing:
            raise TraceError(
                f"{path}: missing columns {missing}; header has "
                f"{reader.fieldnames}"
            )
        for line_number, row in enumerate(reader, start=2):
            try:
                timestamp = int(row[timestamp_column])
                key = _number(row[key_column])
                fields = [_number(row[column]) for column in field_columns]
            except (TypeError, ValueError) as error:
                raise TraceError(
                    f"{path}:{line_number}: {error}"
                ) from error
            fields.extend([0] * (FIELD_COUNT - len(fields)))
            yield timestamp, DataTuple(key=key, fields=tuple(fields))


def _number(text: str):
    value = float(text)
    return int(value) if value.is_integer() else value


def sorted_by_time(
    stream: Iterator[Tuple[int, DataTuple]]
) -> List[Tuple[int, DataTuple]]:
    """Materialise and sort a trace by event time (stable)."""
    return sorted(stream, key=lambda pair: pair[0])


def write_csv_stream(
    path,
    stream: Sequence[Tuple[int, DataTuple]],
    field_names: Sequence[str] = ("f0", "f1", "f2", "f3", "f4"),
) -> None:
    """Write ``(event_time_ms, tuple)`` pairs as CSV (inverse reader).

    Useful for exporting a generated workload so other systems can
    replay the identical stream.
    """
    if len(field_names) != FIELD_COUNT:
        raise TraceError(
            f"exactly {FIELD_COUNT} field names required, got {len(field_names)}"
        )
    with open(Path(path), "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["timestamp_ms", "key", *field_names])
        for timestamp, value in stream:
            writer.writerow([timestamp, value.key, *value.fields])
