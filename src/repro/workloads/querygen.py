"""Random query generation (paper §4.2.2, §4.2.3, §4.7).

* **Selection predicates** (§4.2.2): pick a random field index, a random
  constant, and a random comparison among ``<, >, ==, <=, >=``.
* **Join queries** (Figure 7): ``SELECT * FROM A, B [RANGE l] [SLICE s]
  WHERE A.KEY = B.KEY AND <pred(A)> AND <pred(B)>`` with random window
  length and ``slide = random(1, length)``.
* **Aggregation queries** (Figure 8): ``SELECT SUM(A.FIELD1) FROM A
  [RANGE l] [SLICE s] WHERE <pred(A)> GROUP BY A.KEY``.
* **Complex queries** (§4.7): a random pipeline of selection predicates,
  an n-ary windowed join with 1 ≤ n ≤ 5, and a windowed aggregation.

Window lengths are drawn in whole seconds up to ``window_max_seconds``;
slides in whole seconds up to the length — matching the templates'
``VALn`` random integers.  Everything is deterministic under the seed.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence

from repro.core.query import (
    AggregationQuery,
    AggregationSpec,
    Comparison,
    ComplexQuery,
    FieldPredicate,
    JoinQuery,
    SelectionQuery,
    WindowSpec,
)
from repro.workloads.datagen import DEFAULT_FIELDS_MAX, FIELD_COUNT

_OPERATORS = (
    Comparison.LT,
    Comparison.GT,
    Comparison.EQ,
    Comparison.LE,
    Comparison.GE,
)


class QueryGenerator:
    """Deterministic random query source following the paper's templates."""

    def __init__(
        self,
        streams: Sequence[str] = ("A", "B"),
        seed: int = 0,
        fields_max: int = DEFAULT_FIELDS_MAX,
        window_max_seconds: int = 5,
        max_join_arity: int = 5,
        selective_fraction: float = 0.5,
    ) -> None:
        if len(streams) < 1:
            raise ValueError("need at least one stream")
        if window_max_seconds < 1:
            raise ValueError(
                f"window_max_seconds must be >= 1, got {window_max_seconds}"
            )
        if not 0.0 <= selective_fraction <= 1.0:
            raise ValueError("selective_fraction must be in [0, 1]")
        self.streams = tuple(streams)
        self.fields_max = fields_max
        self.window_max_seconds = window_max_seconds
        self.max_join_arity = max_join_arity
        self.selective_fraction = selective_fraction
        self._random = random.Random(seed)

    # -- §4.2.2: selection predicate generation ------------------------------

    def random_predicate(self) -> FieldPredicate:
        """``o(field[i], VAL)`` with random field, operator, constant.

        Equality predicates are heavily selective on uniform data; the
        generator draws the constant so that a ``selective_fraction`` of
        predicates are range-style (matching a sizeable subset), keeping
        result streams non-degenerate at simulation scale.
        """
        field_index = self._random.randrange(FIELD_COUNT)
        op = self._random.choice(_OPERATORS)
        if op is Comparison.EQ and self._random.random() < self.selective_fraction:
            # Re-draw equality into a range op half the time; pure
            # random-equality predicates match ~1 % of tuples each.
            op = self._random.choice((Comparison.LE, Comparison.GE))
        constant = self._random.randrange(self.fields_max)
        return FieldPredicate(field_index, op, constant)

    # -- window generation -------------------------------------------------------

    def random_window(self) -> WindowSpec:
        """``length = random(1, window_max)``, ``slide = random(1, length)``."""
        length_s = self._random.randint(1, self.window_max_seconds)
        slide_s = self._random.randint(1, length_s)
        return WindowSpec.sliding(length_s * 1_000, slide_s * 1_000)

    def random_session_window(self, gap_max_seconds: int = 3) -> WindowSpec:
        """A session window with a random gap."""
        gap_s = self._random.randint(1, gap_max_seconds)
        return WindowSpec.session(gap_s * 1_000)

    # -- query templates ------------------------------------------------------------

    def selection_query(self, stream: Optional[str] = None) -> SelectionQuery:
        """A pure filter query on one stream."""
        stream = stream or self._random.choice(self.streams)
        return SelectionQuery(stream=stream, predicate=self.random_predicate())

    def join_query(self) -> JoinQuery:
        """Figure 7: binary windowed equi-join with per-stream predicates."""
        if len(self.streams) < 2:
            raise ValueError("join queries need two streams")
        return JoinQuery(
            left_stream=self.streams[0],
            right_stream=self.streams[1],
            left_predicate=self.random_predicate(),
            right_predicate=self.random_predicate(),
            window_spec=self.random_window(),
        )

    def aggregation_query(self, stream: Optional[str] = None) -> AggregationQuery:
        """Figure 8: SUM(FIELD1) over a window, grouped by key."""
        stream = stream or self.streams[0]
        return AggregationQuery(
            stream=stream,
            predicate=self.random_predicate(),
            window_spec=self.random_window(),
            aggregation=AggregationSpec(field_index=0),
        )

    def complex_query(self) -> ComplexQuery:
        """§4.7: selection + n-ary join (1 ≤ n ≤ 5) + aggregation.

        The join fan is capped by the streams the engine was built with;
        joined streams are the canonical prefix so the cascade of shared
        binary joins lines up across queries.
        """
        max_joins = min(self.max_join_arity, len(self.streams) - 1)
        if max_joins < 1:
            raise ValueError("complex queries need at least two streams")
        joins = self._random.randint(1, max_joins)
        join_streams = self.streams[: joins + 1]
        predicates = tuple(self.random_predicate() for _ in join_streams)
        return ComplexQuery(
            join_streams=join_streams,
            predicates=predicates,
            join_window=self.random_window(),
            aggregation_window=self.random_window(),
            aggregation=AggregationSpec(field_index=0),
        )

    def query(self, kind: str):
        """Dispatch by kind name: selection | join | aggregation | complex."""
        if kind == "selection":
            return self.selection_query()
        if kind == "join":
            return self.join_query()
        if kind in ("aggregation", "agg"):
            return self.aggregation_query()
        if kind == "complex":
            return self.complex_query()
        raise ValueError(f"unknown query kind {kind!r}")
