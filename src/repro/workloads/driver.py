"""The experiment driver (paper §4.1, Figure 5).

The driver maintains two FIFO queues:

* a **request queue** of query creations/deletions.  Requests are sent to
  the SUT in batches; the driver waits for the SUT's ACK before sending
  the next batch, a backpressure mechanism — the longer a request waits,
  the higher its *deployment latency*.  For the query-at-a-time baseline
  the ACK arrives only when the job manager finished deploying the
  topology (several seconds), so the queue grows under modest request
  rates (Figure 10a).  For AStream the ACK is the changelog flush.
* a **tuple queue** filled by the data generators.  The driver pulls
  tuples and sends them to the SUT; the longer a tuple waits, the higher
  its *event-time latency*.  Queue waiting is modelled from the measured
  service rate versus the configured input rate (sustainable-throughput
  methodology).

The driver runs on a virtual clock (event time) while measuring the real
wall-clock cost of the data path, so deployment/queueing dynamics are
deterministic and throughput numbers are real measurements.

For chaos runs the driver is hardened (all in virtual time, seeded, and
therefore deterministic): query submissions that fail transiently are
retried with exponential backoff + jitter under a :class:`RetryPolicy`;
submissions that would wait on a recovering SUT beyond the ACK timeout
are re-queued; tuples whose push raises an injected operator fault are
retried after supervised recovery and **dead-lettered** once attempts
are exhausted (poison tuples) — matching the at-most-once accounting of
the engine's input-log rollback, so a dead-lettered tuple is absent from
both the oracle-visible log and the output.
"""

from __future__ import annotations

import itertools
import random
import time
from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import Any, Dict, List, Optional, Tuple

from repro.core.engine import AStreamEngine
from repro.core.qos import QoSMonitor
from repro.faults.injector import InjectedFaultError
from repro.faults.supervisor import Supervisor
from repro.minispe.cluster import ClusterCapacityError
from repro.workloads.datagen import DataGenerator
from repro.workloads.scenarios import ScheduledRequest, WorkloadSchedule

_TRANSIENT_ERRORS = (ClusterCapacityError, InjectedFaultError)
"""Failures worth retrying: capacity frees up as queries stop or nodes
return; injected operator faults clear after supervised recovery."""


@dataclass
class DriverConfig:
    """Knobs of one driver run."""

    input_rate_tps: float = 2_000.0
    """Virtual tuples per second *per stream*."""
    duration_s: float = 20.0
    """Virtual run length."""
    step_ms: int = 250
    """Simulation step: tuples are generated and pushed per step."""
    watermark_interval_ms: int = 500
    lateness_ms: int = 0
    """Watermark lag behind generated event time."""
    disorder_ms: int = 0
    """Shuffle event times within this bound before sending (emulates
    out-of-order arrival; pair with ``lateness_ms >= disorder_ms`` so
    watermarks stay truthful and nothing is dropped as late)."""
    disorder_seed: int = 99
    latency_sample_every: int = 64
    data_seed: int = 7
    backlog_unsustainable_wait_ms: float = 5_000.0
    """A final queue wait beyond this marks the run unsustainable."""
    batch_size: int = 1
    """Tuples per micro-batch on the data path.  1 pushes per tuple (the
    original path); larger values buffer per stream within a step and
    send :class:`~repro.minispe.record.RecordBatch` elements via the
    adapter's ``push_many``.  Buffers flush on batch-full and at step
    end — before any watermark or the next step's requests — so batching
    never reorders a tuple relative to control elements."""

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.disorder_ms < 0:
            raise ValueError(f"disorder_ms must be >= 0, got {self.disorder_ms}")
        if self.disorder_ms and self.lateness_ms < self.disorder_ms:
            raise ValueError(
                f"lateness_ms ({self.lateness_ms}) must cover disorder_ms "
                f"({self.disorder_ms}) or disordered tuples would arrive "
                f"behind the watermark"
            )


@dataclass
class RetryPolicy:
    """Driver-side resilience knobs (virtual-time, seeded, deterministic)."""

    max_attempts: int = 3
    """Tries per request/tuple before it goes to the dead-letter queue."""
    backoff_base_ms: int = 200
    """First-retry delay; doubles (``backoff_multiplier``) per attempt."""
    backoff_multiplier: float = 2.0
    jitter_ms: int = 50
    """Uniform random extra delay per retry, drawn from ``seed``."""
    ack_timeout_ms: int = 5_000
    """A submission waiting on a busy (recovering) SUT longer than this
    counts as an ACK timeout and is re-queued with backoff."""
    seed: int = 11

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff_multiplier must be >= 1.0")

    def backoff_ms(self, attempt: int, rng: random.Random) -> int:
        """Delay before retry number ``attempt`` (1-based)."""
        base = self.backoff_base_ms * self.backoff_multiplier ** (attempt - 1)
        return int(base) + (rng.randrange(self.jitter_ms + 1) if self.jitter_ms else 0)


@dataclass
class DeadLetter:
    """One request or tuple the driver gave up on."""

    kind: str  # "request" | "tuple" | "watermark"
    payload: Any
    reason: str
    at_ms: int
    attempts: int


@dataclass
class RunReport:
    """Everything a figure needs from one driver run."""

    name: str
    tuples_pushed: int = 0
    wall_seconds: float = 0.0
    input_rate_tps: float = 0.0
    active_queries_final: int = 0
    active_queries_series: List[Tuple[int, int]] = field(default_factory=list)
    mean_event_latency_ms: float = 0.0
    p99_event_latency_ms: float = 0.0
    queue_wait_final_ms: float = 0.0
    queue_wait_series: List[Tuple[int, float]] = field(default_factory=list)
    step_rate_series: List[Tuple[int, float]] = field(default_factory=list)
    """(virtual time ms, measured tuples per wall-second in that step)."""
    deployment_latencies_ms: List[float] = field(default_factory=list)
    deployment_series: List[Tuple[int, float]] = field(default_factory=list)
    per_query_results: Dict[str, int] = field(default_factory=dict)
    sustained: bool = True
    failure: Optional[str] = None
    submit_retries: int = 0
    """Query submissions re-attempted after a transient failure."""
    tuple_retries: int = 0
    """Data tuples re-pushed after an injected fault + recovery."""
    ack_timeouts: int = 0
    """Submissions re-queued because the SUT was busy recovering."""
    dead_letters: List[DeadLetter] = field(default_factory=list)
    recovery_events: List = field(default_factory=list)
    """The supervisor's :class:`~repro.faults.supervisor.RecoveryEvent`
    log for this run (empty without a supervisor)."""
    slow_node_penalty_ms: float = 0.0
    """Extra virtual latency accumulated inside slow-node windows."""

    @property
    def service_rate_tps(self) -> float:
        """Measured data-path capacity: tuples per wall-clock second."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.tuples_pushed / self.wall_seconds

    def slowest_throughput_tps(self, speedup: float = 1.0) -> float:
        """Per-query sustainable input rate (every query sees the stream)."""
        return self.service_rate_tps * speedup

    def overall_throughput_tps(self, speedup: float = 1.0) -> float:
        """Sum of active queries' throughputs (§4.3)."""
        return self.slowest_throughput_tps(speedup) * max(
            1, self.active_queries_final
        )

    def mean_deployment_latency_ms(self) -> float:
        """Average query deployment latency over the run."""
        if not self.deployment_latencies_ms:
            return 0.0
        return sum(self.deployment_latencies_ms) / len(self.deployment_latencies_ms)

    def total_latency_ms(self) -> float:
        """Event-time latency including modelled queue waiting."""
        return self.mean_event_latency_ms + self.queue_wait_final_ms


class SUTAdapter:
    """Uniform driver-facing interface over both engines."""

    name = "sut"

    def submit(self, request: ScheduledRequest, now_ms: int) -> None:
        """Apply one create/delete request to the SUT."""
        raise NotImplementedError

    def on_step(self, now_ms: int) -> None:
        """Called once per driver step (session timeouts etc.)."""

    def push(self, stream: str, timestamp: int, value) -> None:
        """Send one data tuple to the SUT."""
        raise NotImplementedError

    def push_many(self, stream: str, tuples: List[Tuple[int, Any]]) -> int:
        """Send a micro-batch of ``(timestamp, value)`` tuples.

        Default: loop over :meth:`push` (batch-correct for any SUT);
        engines with a native batch path override this.  Returns the
        number of tuples sent.
        """
        for timestamp, value in tuples:
            self.push(stream, timestamp, value)
        return len(tuples)

    def finish(self) -> None:
        """Settle in-flight work before the wall clock stops.

        The in-process engines are synchronous, so the default is a
        no-op; pipelined backends (the process-sharded engine) override
        this to flush buffers and await worker acknowledgements, which
        keeps service throughput honest across backends.
        """

    def watermark(self, timestamp: int) -> None:
        """Advance the SUT's event time on every stream."""
        raise NotImplementedError

    def deployment_latencies(self) -> List[Tuple[int, float]]:
        """(requested_at_ms, latency_ms) pairs for create requests."""
        raise NotImplementedError

    def active_query_count(self) -> int:
        """Queries currently live on the SUT."""
        raise NotImplementedError

    def result_counts(self) -> Dict[str, int]:
        """Results delivered so far, per query id."""
        raise NotImplementedError


class AStreamAdapter(SUTAdapter):
    """Drives an :class:`AStreamEngine`."""

    def __init__(self, engine: AStreamEngine) -> None:
        self.engine = engine
        self.name = "astream"

    def submit(self, request: ScheduledRequest, now_ms: int) -> None:
        if request.kind == "create":
            self.engine.submit(request.query, now_ms)
        else:
            self.engine.stop(request.query_id, now_ms)

    def on_step(self, now_ms: int) -> None:
        self.engine.tick(now_ms)

    def push(self, stream: str, timestamp: int, value) -> None:
        self.engine.push(stream, timestamp, value)

    def push_many(self, stream: str, tuples: List[Tuple[int, Any]]) -> int:
        return self.engine.push_many(stream, tuples)

    def finish(self) -> None:
        self.engine.drain()

    def watermark(self, timestamp: int) -> None:
        self.engine.watermark(timestamp)

    def deployment_latencies(self) -> List[Tuple[int, float]]:
        return [
            (event.requested_at_ms, float(event.deployment_latency_ms))
            for event in self.engine.deployment_events
            if event.kind == "create"
        ]

    def active_query_count(self) -> int:
        return self.engine.active_query_count

    def result_counts(self) -> Dict[str, int]:
        return self.engine.result_counts()


class BaselineAdapter(SUTAdapter):
    """Drives a :class:`~repro.baseline.engine.QueryAtATimeEngine`.

    Models the job manager as a single server: deployments are serviced
    one at a time, so requests queue while a deployment is in flight —
    the mechanism behind Figure 10a's climbing latencies.
    """

    def __init__(self, engine) -> None:
        self.engine = engine
        self.name = "flink"
        self._busy_until_ms = 0

    def submit(self, request: ScheduledRequest, now_ms: int) -> None:
        start = max(now_ms, self._busy_until_ms)
        if request.kind == "create":
            cost = self.engine.deploy_cost_ms(request.query)
            self.engine.submit(request.query, now_ms=start)
        else:
            cost = self.engine.deployment.stop_ms()
            self.engine.stop(request.query_id, now_ms=start)
        self._busy_until_ms = start + cost
        event = self.engine.deployment_events[-1]
        event.requested_at_ms = now_ms
        event.ready_at_ms = self._busy_until_ms

    def push(self, stream: str, timestamp: int, value) -> None:
        self.engine.push(stream, timestamp, value)

    def push_many(self, stream: str, tuples: List[Tuple[int, Any]]) -> int:
        return self.engine.push_many(stream, tuples)

    def watermark(self, timestamp: int) -> None:
        self.engine.watermark(timestamp)

    def deployment_latencies(self) -> List[Tuple[int, float]]:
        return [
            (event.requested_at_ms, float(event.deployment_latency_ms))
            for event in self.engine.deployment_events
            if event.kind == "create"
        ]

    def active_query_count(self) -> int:
        return self.engine.active_query_count

    def result_counts(self) -> Dict[str, int]:
        return self.engine.result_counts()


class Driver:
    """Runs one schedule against one SUT and produces a :class:`RunReport`."""

    def __init__(
        self,
        adapter: SUTAdapter,
        schedule: WorkloadSchedule,
        streams: Tuple[str, ...],
        config: Optional[DriverConfig] = None,
        qos: Optional[QoSMonitor] = None,
        retry: Optional[RetryPolicy] = None,
        supervisor: Optional[Supervisor] = None,
    ) -> None:
        self.adapter = adapter
        self.schedule = schedule
        self.streams = streams
        self.config = config or DriverConfig()
        self.retry = retry
        self.supervisor = supervisor
        self._now_ms = 0
        self._pending: Dict[str, List[Tuple[int, Any]]] = {}
        """Per-stream micro-batch buffers (config.batch_size > 1)."""
        self._delayed: List = []  # jitter-buffer heap for disorder_ms
        self._jitter = random.Random(self.config.disorder_seed)
        self._retry_rng = random.Random(retry.seed if retry else 0)
        self._retry_heap: List = []  # (due_ms, seq, request, attempt)
        self._sequence = itertools.count()  # heap tiebreaker
        self.qos = qos or QoSMonitor(
            now_fn=lambda: self._now_ms,
            sample_every=self.config.latency_sample_every,
        )

    def run(self) -> RunReport:
        """Execute the schedule and data feed; return the report."""
        config = self.config
        report = RunReport(
            name=f"{self.adapter.name}:{self.schedule.name}",
            input_rate_tps=config.input_rate_tps * len(self.streams),
        )
        generators = {
            stream: DataGenerator(seed=config.data_seed + index)
            for index, stream in enumerate(self.streams)
        }
        requests = self.schedule.sorted()
        request_index = 0
        duration_ms = int(config.duration_s * 1_000)
        per_step = config.input_rate_tps * config.step_ms / 1_000.0
        credit = 0.0
        next_watermark_ms = config.watermark_interval_ms
        started_wall = time.perf_counter()
        try:
            while self._now_ms < duration_ms:
                now = self._now_ms
                self.qos.now_ms = now
                if self.supervisor is not None:
                    # Fires due faults, redeliveries, recoveries, and
                    # periodic checkpoints before this step's traffic.
                    self.supervisor.heartbeat(now)
                    report.slow_node_penalty_ms += self._slow_penalty_ms(now)
                while self._retry_heap and self._retry_heap[0][0] <= now:
                    _, _, request, attempt = heappop(self._retry_heap)
                    self._submit(request, now, report, attempt)
                while (
                    request_index < len(requests)
                    and requests[request_index].at_ms <= now
                ):
                    self._submit(requests[request_index], now, report, attempt=1)
                    request_index += 1
                self.adapter.on_step(now)

                credit += per_step
                count = int(credit)
                credit -= count
                step_started = time.perf_counter()
                if count:
                    interval = config.step_ms / count
                    for stream in self.streams:
                        generator = generators[stream]
                        for index in range(count):
                            timestamp = now + int(index * interval)
                            value = generator.next_tuple()
                            if config.disorder_ms:
                                # Jitter buffer: the tuple keeps its event
                                # time but arrives up to disorder_ms later.
                                release = now + self._jitter.randrange(
                                    config.disorder_ms + 1
                                )
                                heappush(
                                    self._delayed,
                                    (release, next(self._sequence),
                                     stream, timestamp, value),
                                )
                            else:
                                self._push(stream, timestamp, value, report)
                    while self._delayed and self._delayed[0][0] <= now:
                        _, _, stream, timestamp, value = heappop(self._delayed)
                        self._push(stream, timestamp, value, report)
                # Flush partial micro-batches before the step ends so no
                # tuple crosses a watermark or the next step's requests.
                self._flush_pending(report)
                self._now_ms += config.step_ms
                # Watermarks fire at the post-step instant: results they
                # release are emitted "now" for latency sampling.
                self.qos.now_ms = self._now_ms
                while next_watermark_ms <= self._now_ms:
                    self._watermark(
                        next_watermark_ms - config.lateness_ms, report
                    )
                    next_watermark_ms += config.watermark_interval_ms
                step_wall = time.perf_counter() - step_started
                if count and step_wall > 0:
                    report.step_rate_series.append(
                        (self._now_ms, count * len(self.streams) / step_wall)
                    )
                report.active_queries_series.append(
                    (self._now_ms, self.adapter.active_query_count())
                )
        except ClusterCapacityError as error:
            report.sustained = False
            report.failure = f"cluster capacity exhausted: {error}"
        # Settle any in-flight work (pipelined backends buffer frames)
        # before stopping the clock, so wall_seconds charges the full
        # processing cost, not just the submission cost.
        self.adapter.finish()
        report.wall_seconds = time.perf_counter() - started_wall
        # Drain the jitter buffer, then close remaining windows.
        while self._delayed:
            _, _, stream, timestamp, value = heappop(self._delayed)
            self._push(stream, timestamp, value, report)
        self._flush_pending(report)
        self.qos.now_ms = self._now_ms
        self._watermark(self._now_ms, report)
        # Submissions still waiting for a retry slot never got in.
        while self._retry_heap:
            _, _, request, attempt = heappop(self._retry_heap)
            report.dead_letters.append(
                DeadLetter(
                    kind="request",
                    payload=request,
                    reason="run ended before retry",
                    at_ms=self._now_ms,
                    attempts=attempt - 1,
                )
            )
        if self.supervisor is not None:
            report.recovery_events = list(self.supervisor.recovery_events)

        report.active_queries_final = self.adapter.active_query_count()
        report.mean_event_latency_ms = self.qos.latency.mean()
        report.p99_event_latency_ms = self.qos.latency.percentile(99)
        latencies = self.adapter.deployment_latencies()
        report.deployment_series = latencies
        report.deployment_latencies_ms = [latency for _, latency in latencies]
        report.per_query_results = self.adapter.result_counts()
        self._queue_model(report)
        return report

    # -- hardened submission / data path ------------------------------------

    def _submit(
        self,
        request: ScheduledRequest,
        now: int,
        report: RunReport,
        attempt: int,
    ) -> None:
        """Submit one request; with a :class:`RetryPolicy`, transient
        failures back off and re-queue instead of aborting the run."""
        policy = self.retry
        if policy is None:
            self.adapter.submit(request, now)
            return
        if self.supervisor is not None:
            wait = self.supervisor.busy_until_ms - now
            if wait > policy.ack_timeout_ms:
                # The SUT is deep in recovery: the ACK would time out, so
                # re-queue rather than stall the whole feed.
                report.ack_timeouts += 1
                self._schedule_retry(
                    request, now, report, attempt, f"ack timeout ({wait}ms busy)"
                )
                return
        try:
            self.adapter.submit(request, now)
        except _TRANSIENT_ERRORS as error:
            if self.supervisor is not None and isinstance(
                error, InjectedFaultError
            ):
                self.supervisor.notify_failure(now, error)
            self._schedule_retry(request, now, report, attempt, str(error))

    def _schedule_retry(
        self,
        request: ScheduledRequest,
        now: int,
        report: RunReport,
        attempt: int,
        reason: str,
    ) -> None:
        policy = self.retry
        if attempt >= policy.max_attempts:
            report.dead_letters.append(
                DeadLetter(
                    kind="request",
                    payload=request,
                    reason=reason,
                    at_ms=now,
                    attempts=attempt,
                )
            )
            return
        report.submit_retries += 1
        due = now + policy.backoff_ms(attempt, self._retry_rng)
        heappush(
            self._retry_heap, (due, next(self._sequence), request, attempt + 1)
        )

    def _push(self, stream: str, timestamp: int, value, report: RunReport) -> None:
        """Push one tuple; injected faults trigger supervised recovery and
        an immediate retry, then the dead-letter queue (poison tuples)."""
        if self.config.batch_size > 1:
            buffer = self._pending.get(stream)
            if buffer is None:
                buffer = self._pending[stream] = []
            buffer.append((timestamp, value))
            if len(buffer) >= self.config.batch_size:
                self._pending[stream] = []
                self._push_batch(stream, buffer, report)
            return
        if self.retry is None and self.supervisor is None:
            self.adapter.push(stream, timestamp, value)
            report.tuples_pushed += 1
            return
        attempts = self.retry.max_attempts if self.retry is not None else 1
        for attempt in range(1, attempts + 1):
            try:
                self.adapter.push(stream, timestamp, value)
                report.tuples_pushed += 1
                return
            except InjectedFaultError as error:
                # The engine un-logged the failed push, so after recovery
                # the retry is not a duplicate.
                if self.supervisor is not None:
                    self.supervisor.notify_failure(self._now_ms, error)
                if attempt < attempts:
                    report.tuple_retries += 1
                else:
                    report.dead_letters.append(
                        DeadLetter(
                            kind="tuple",
                            payload=(stream, timestamp, value),
                            reason=str(error),
                            at_ms=self._now_ms,
                            attempts=attempt,
                        )
                    )

    def _flush_pending(self, report: RunReport) -> None:
        """Send every partially filled micro-batch buffer."""
        if self.config.batch_size <= 1 or not self._pending:
            return
        for stream in self.streams:
            buffer = self._pending.get(stream)
            if buffer:
                self._pending[stream] = []
                self._push_batch(stream, buffer, report)

    def _push_batch(
        self, stream: str, items: List[Tuple[int, Any]], report: RunReport
    ) -> None:
        """Send one micro-batch; an injected fault retries the *whole*
        batch — the engine logs it as one atomic entry and un-logs it on
        failure, and supervised recovery wipes the partial effects, so
        the retry is not a duplicate."""
        if self.retry is None and self.supervisor is None:
            report.tuples_pushed += self.adapter.push_many(stream, items)
            return
        attempts = self.retry.max_attempts if self.retry is not None else 1
        for attempt in range(1, attempts + 1):
            try:
                report.tuples_pushed += self.adapter.push_many(stream, items)
                return
            except InjectedFaultError as error:
                if self.supervisor is not None:
                    self.supervisor.notify_failure(self._now_ms, error)
                if attempt < attempts:
                    report.tuple_retries += 1
                else:
                    report.dead_letters.append(
                        DeadLetter(
                            kind="tuple",
                            payload=(stream, items),
                            reason=str(error),
                            at_ms=self._now_ms,
                            attempts=attempt,
                        )
                    )

    def _watermark(self, timestamp: int, report: RunReport) -> None:
        """Advance event time; a window fire hitting an injected fault is
        recovered and retried like a tuple push."""
        if self.retry is None and self.supervisor is None:
            self.adapter.watermark(timestamp)
            return
        attempts = self.retry.max_attempts if self.retry is not None else 1
        for attempt in range(1, attempts + 1):
            try:
                self.adapter.watermark(timestamp)
                return
            except InjectedFaultError as error:
                if self.supervisor is not None:
                    self.supervisor.notify_failure(self._now_ms, error)
                if attempt >= attempts:
                    report.dead_letters.append(
                        DeadLetter(
                            kind="watermark",
                            payload=timestamp,
                            reason=str(error),
                            at_ms=self._now_ms,
                            attempts=attempt,
                        )
                    )

    def _slow_penalty_ms(self, now: int) -> float:
        injector = self.supervisor.injector if self.supervisor else None
        if injector is None:
            return 0.0
        return (injector.slow_factor(now) - 1.0) * self.config.step_ms

    def _queue_model(self, report: RunReport) -> None:
        """D/D/1 backlog of the tuple FIFO: arrivals vs measured capacity.

        The SUT's virtual-time capacity is its measured wall-clock service
        rate (the sustainable-throughput methodology: one second of SUT
        compute serves ``service_rate`` tuples).  If the configured input
        rate exceeds it, the queue — and with it event-time latency —
        grows without bound.
        """
        capacity = report.service_rate_tps
        arrival = report.input_rate_tps
        if capacity <= 0 or report.tuples_pushed == 0:
            return
        step_s = self.config.step_ms / 1_000.0
        backlog = 0.0
        duration_ms = int(self.config.duration_s * 1_000)
        for now_ms in range(0, duration_ms, self.config.step_ms):
            backlog = max(0.0, backlog + (arrival - capacity) * step_s)
            report.queue_wait_series.append(
                (now_ms, 1_000.0 * backlog / capacity)
            )
        report.queue_wait_final_ms = (
            report.queue_wait_series[-1][1] if report.queue_wait_series else 0.0
        )
        if report.queue_wait_final_ms > self.config.backlog_unsustainable_wait_ms:
            report.sustained = False
            if report.failure is None:
                report.failure = (
                    f"input rate {arrival:.0f} t/s exceeds measured capacity "
                    f"{capacity:.0f} t/s: queue wait reached "
                    f"{report.queue_wait_final_ms:.0f} ms"
                )
