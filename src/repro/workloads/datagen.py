"""Data generation (paper §4.2.1).

Each generated input tuple has six fields: a ``key`` and an array of five
``fields``.  Keys are assigned round-robin — ``key ← key++ % key_max`` —
which balances the distribution across partitions (the paper uses 1000
distinct keys, uniform).  The other fields are uniform random integers in
``[0, fields_max)``.

The generator is deterministic under a seed and attaches event-time
timestamps at a configurable tuple rate, so two SUTs can be driven with
byte-identical streams.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List, Tuple

DEFAULT_KEY_MAX = 1_000
DEFAULT_FIELDS_MAX = 100
FIELD_COUNT = 5


@dataclass(frozen=True)
class DataTuple:
    """One generated input tuple: a key plus five numeric fields."""

    key: int
    fields: Tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.fields) != FIELD_COUNT:
            raise ValueError(
                f"tuples carry exactly {FIELD_COUNT} fields, "
                f"got {len(self.fields)}"
            )


class DataGenerator:
    """Deterministic round-robin-key tuple source for one stream."""

    def __init__(
        self,
        seed: int = 0,
        key_max: int = DEFAULT_KEY_MAX,
        fields_max: int = DEFAULT_FIELDS_MAX,
    ) -> None:
        if key_max <= 0:
            raise ValueError(f"key_max must be positive, got {key_max}")
        if fields_max <= 0:
            raise ValueError(f"fields_max must be positive, got {fields_max}")
        self.key_max = key_max
        self.fields_max = fields_max
        self._random = random.Random(seed)
        self._next_key = 0

    def next_tuple(self) -> DataTuple:
        """Generate one tuple (round-robin key, random fields)."""
        key = self._next_key
        self._next_key = (self._next_key + 1) % self.key_max
        fields = tuple(
            self._random.randrange(self.fields_max) for _ in range(FIELD_COUNT)
        )
        return DataTuple(key=key, fields=fields)

    def tuples(self, count: int) -> List[DataTuple]:
        """Generate ``count`` tuples."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        return [self.next_tuple() for _ in range(count)]

    def timestamped(
        self, count: int, start_ms: int, rate_per_second: float
    ) -> Iterator[Tuple[int, DataTuple]]:
        """Yield ``(event_time_ms, tuple)`` at a fixed virtual rate.

        Timestamps are spaced ``1000 / rate`` ms apart starting at
        ``start_ms``; at high rates multiple tuples share a millisecond,
        mirroring a bursty real feed.
        """
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        if rate_per_second <= 0:
            raise ValueError(
                f"rate must be positive, got {rate_per_second}"
            )
        interval = 1_000.0 / rate_per_second
        for index in range(count):
            yield start_ms + int(index * interval), self.next_tuple()
