"""A NEXMark-flavoured workload: auctions, bids, and ad-hoc analytics.

The paper cites NEXMark [48] among the benchmarks that evaluate SPEs on
data throughput and latency; this module maps NEXMark's auction domain
onto the engine's tuple model so the examples and tests can exercise
realistic entity streams rather than uniform random fields.

Streams and field layout (``DataTuple.fields`` indices):

* ``bids`` — key = auction id;
  ``f0`` = price, ``f1`` = bidder id, ``f2`` = category,
  ``f3`` = bidder region, ``f4`` = channel.
* ``auctions`` — key = auction id;
  ``f0`` = reserve price, ``f1`` = seller id, ``f2`` = category,
  ``f3`` = seller region, ``f4`` = initial quantity.

Query builders mirror classic NEXMark questions, expressed as the
paper's shared query types:

* :func:`currency_filter` (NEXMark Q2 flavour) — bids on a price band;
* :func:`hot_items` — count of bids per auction over a sliding window;
* :func:`winning_bids` — bids joined with their auction, bid over the
  reserve price;
* :func:`category_revenue` — sliding-window sum of bid prices per
  auction, filtered to one category.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, Tuple

from repro.core.query import (
    AggregationKind,
    AggregationQuery,
    AggregationSpec,
    Comparison,
    FieldPredicate,
    JoinQuery,
    SelectionQuery,
    WindowSpec,
)
from repro.workloads.datagen import DataTuple

BIDS = "bids"
AUCTIONS = "auctions"

PRICE = 0
BIDDER = 1
CATEGORY = 2
REGION = 3
CHANNEL = 4

RESERVE = 0
SELLER = 1
QUANTITY = 4

CATEGORY_COUNT = 10
REGION_COUNT = 5
CHANNEL_COUNT = 4


@dataclass
class NexmarkConfig:
    """Shape of the generated marketplace."""

    auctions: int = 100
    bidders: int = 500
    sellers: int = 50
    max_price: int = 1_000
    seed: int = 0


class NexmarkGenerator:
    """Deterministic generators for the bid and auction streams.

    Auction attributes (category, reserve, seller) are fixed per auction
    id, so joining bids with auctions is meaningful; bid prices cluster
    around the auction's reserve.
    """

    def __init__(self, config: NexmarkConfig = None) -> None:
        self.config = config or NexmarkConfig()
        self._random = random.Random(self.config.seed)
        self._catalog = {
            auction_id: self._make_auction(auction_id)
            for auction_id in range(self.config.auctions)
        }
        self._next_auction = 0

    def _make_auction(self, auction_id: int) -> DataTuple:
        reserve = self._random.randrange(1, self.config.max_price)
        return DataTuple(
            key=auction_id,
            fields=(
                reserve,
                self._random.randrange(self.config.sellers),
                self._random.randrange(CATEGORY_COUNT),
                self._random.randrange(REGION_COUNT),
                1 + self._random.randrange(10),
            ),
        )

    def auction(self) -> DataTuple:
        """The next auction listing (round-robin over the catalogue)."""
        auction_id = self._next_auction
        self._next_auction = (self._next_auction + 1) % self.config.auctions
        return self._catalog[auction_id]

    def bid(self) -> DataTuple:
        """One bid on a random auction, priced around its reserve."""
        auction_id = self._random.randrange(self.config.auctions)
        listing = self._catalog[auction_id]
        reserve = listing.fields[RESERVE]
        # Bids cluster around the reserve: 50%..150% of it.
        price = max(1, int(reserve * (0.5 + self._random.random())))
        return DataTuple(
            key=auction_id,
            fields=(
                price,
                self._random.randrange(self.config.bidders),
                listing.fields[CATEGORY],
                self._random.randrange(REGION_COUNT),
                self._random.randrange(CHANNEL_COUNT),
            ),
        )

    def timestamped_bids(
        self, count: int, start_ms: int, rate_per_second: float
    ) -> Iterator[Tuple[int, DataTuple]]:
        """``(event_time, bid)`` pairs at a fixed virtual rate."""
        interval = 1_000.0 / rate_per_second
        for index in range(count):
            yield start_ms + int(index * interval), self.bid()

    def timestamped_auctions(
        self, count: int, start_ms: int, rate_per_second: float
    ) -> Iterator[Tuple[int, DataTuple]]:
        """``(event_time, auction)`` pairs at a fixed virtual rate."""
        interval = 1_000.0 / rate_per_second
        for index in range(count):
            yield start_ms + int(index * interval), self.auction()


# -- ad-hoc query builders ---------------------------------------------------

def currency_filter(min_price: int, query_id: str = None) -> SelectionQuery:
    """Bids at or above ``min_price`` (NEXMark Q2 flavour)."""
    kwargs = {"query_id": query_id} if query_id else {}
    return SelectionQuery(
        stream=BIDS,
        predicate=FieldPredicate(PRICE, Comparison.GE, min_price),
        **kwargs,
    )


def hot_items(window_s: int = 10, slide_s: int = 2,
              query_id: str = None) -> AggregationQuery:
    """Bid count per auction over a sliding window ("hot items")."""
    kwargs = {"query_id": query_id} if query_id else {}
    return AggregationQuery(
        stream=BIDS,
        predicate=FieldPredicate(PRICE, Comparison.GE, 0),
        window_spec=WindowSpec.sliding(window_s * 1_000, slide_s * 1_000),
        aggregation=AggregationSpec(AggregationKind.COUNT),
        **kwargs,
    )


def winning_bids(min_price: int = 0, window_s: int = 5,
                 query_id: str = None) -> JoinQuery:
    """Bids joined with their auction listing, filtered by price.

    The reserve-price comparison itself needs a join-side predicate the
    template grammar cannot express (field vs field); the price floor
    plays that role at workload level, and the example filters
    bid ≥ reserve on the results.
    """
    kwargs = {"query_id": query_id} if query_id else {}
    return JoinQuery(
        left_stream=BIDS,
        right_stream=AUCTIONS,
        left_predicate=FieldPredicate(PRICE, Comparison.GE, min_price),
        right_predicate=FieldPredicate(RESERVE, Comparison.GE, 0),
        window_spec=WindowSpec.tumbling(window_s * 1_000),
        **kwargs,
    )


def category_revenue(category: int, window_s: int = 10,
                     query_id: str = None) -> AggregationQuery:
    """Sliding-window bid revenue per auction within one category."""
    kwargs = {"query_id": query_id} if query_id else {}
    return AggregationQuery(
        stream=BIDS,
        predicate=FieldPredicate(CATEGORY, Comparison.EQ, category),
        window_spec=WindowSpec.sliding(window_s * 1_000, window_s * 500),
        aggregation=AggregationSpec(AggregationKind.SUM, PRICE),
        **kwargs,
    )
