"""Workload generation and the experiment driver (paper §4.1–§4.4).

* :mod:`repro.workloads.datagen` — the data generator of §4.2.1:
  round-robin keys over 1000 distinct values, five uniformly random
  fields per tuple;
* :mod:`repro.workloads.querygen` — random selection predicates (§4.2.2),
  join and aggregation query templates (Figures 7 and 8), and the complex
  queries of §4.7 (selection + n-ary join + aggregation);
* :mod:`repro.workloads.scenarios` — the two workload scenarios of
  Figure 6: SC1 (many long-running parallel queries, ramp-up then steady)
  and SC2 (high query churn, short-running queries);
* :mod:`repro.workloads.driver` — the driver of Figure 5: two FIFO
  queues (user requests and input tuples), batch submission with ACK
  backpressure, and the latency bookkeeping built on them.
"""

from repro.workloads.datagen import DataGenerator, DataTuple
from repro.workloads.querygen import QueryGenerator
from repro.workloads.scenarios import (
    ScheduledRequest,
    WorkloadSchedule,
    sc1_schedule,
    sc2_schedule,
)
from repro.workloads.driver import Driver, DriverConfig, RunReport
from repro.workloads.traces import read_csv_stream, write_csv_stream

__all__ = [
    "DataGenerator",
    "DataTuple",
    "Driver",
    "DriverConfig",
    "QueryGenerator",
    "RunReport",
    "ScheduledRequest",
    "WorkloadSchedule",
    "read_csv_stream",
    "sc1_schedule",
    "sc2_schedule",
    "write_csv_stream",
]
