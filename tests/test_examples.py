"""Smoke tests: every example must run end-to-end and say something.

Examples are documentation that executes; letting them rot is worse
than having none.  Each is run as a subprocess exactly the way the
README instructs (``python examples/<name>.py``).
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"

_EXPECTED_MARKERS = {
    "quickstart.py": ["live queries: 2", "join results:", "router copies"],
    "online_gaming.py": ["Q1 (marketing)", "pro-player sessions", "deployment latencies"],
    "adhoc_dashboard.py": ["platform dashboard", "slowest data throughput", "QoS violations"],
    "complex_pipeline.py": ["cx-2way", "cx-4way (added ad-hoc", "slice-pair joins"],
    "sql_console.py": ["[admit ]", "queries live on one shared topology", "admission:"],
    "auction_analytics.py": ["hottest auctions", "meeting the reserve", "active queries at shutdown: 2"],
    "serve_quickstart.py": ["admitted over the wire", "streamed results:", "drained with checkpoint", "clean shutdown"],
}


@pytest.mark.parametrize("example", sorted(_EXPECTED_MARKERS))
def test_example_runs(example):
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / example)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr[-2_000:]
    for marker in _EXPECTED_MARKERS[example]:
        assert marker in completed.stdout, (
            f"{example} output missing {marker!r}:\n"
            f"{completed.stdout[-2_000:]}"
        )


def test_every_example_is_covered():
    on_disk = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    assert on_disk == set(_EXPECTED_MARKERS)
