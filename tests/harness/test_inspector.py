"""Pipeline inspector rendering (ISSUE 4 tentpole, presentation layer)."""

from repro.harness.inspector import (
    render_breakdown,
    render_dashboard,
    render_events,
    render_operator_state,
    render_shard_balance,
)
from repro.obs.registry import MetricsRegistry


def _trace_snapshot():
    return {
        "stage_totals": {
            "join:A~B": [10, 6_000_000],
            "select:A": [10, 3_000_000],
            "router:join:A~B": [10, 1_000_000],
        },
        "e2e_count": 10,
        "e2e_total_ns": 10_000_000,
        "traces": [],
    }


class TestBreakdown:
    def test_ranked_with_shares(self):
        lines = render_breakdown(_trace_snapshot())
        assert "10 sampled pushes" in lines[0]
        assert "100.0% attributed" in lines[0]
        # Ranked by exclusive total: join first, router last.
        assert lines[1].lstrip().startswith("join:A~B")
        assert lines[-1].lstrip().startswith("router:join:A~B")
        assert "60.0%" in lines[1]
        assert "#" in lines[1]

    def test_empty_trace(self):
        lines = render_breakdown(
            {"stage_totals": {}, "e2e_count": 0, "e2e_total_ns": 0}
        )
        assert lines[-1] == "  (no sampled traces)"


class TestOperatorState:
    def test_groups_by_operator_and_shard(self):
        registry = MetricsRegistry()
        registry.gauge("tuples_stored", operator="join:A~B", shard="0").set(370)
        registry.gauge("tuples_stored", operator="join:A~B", shard="1").set(290)
        registry.gauge("slices", operator="agg:A").set(4)
        registry.gauge("not_a_state_gauge", operator="agg:A").set(9)
        lines = render_operator_state(registry.snapshot())
        text = "\n".join(lines)
        assert "join:A~B [shard 0]: tuples_stored=370" in text
        assert "join:A~B [shard 1]: tuples_stored=290" in text
        assert "agg:A: slices=4" in text
        assert "not_a_state_gauge" not in text

    def test_empty_registry(self):
        assert render_operator_state({}) == []


class TestShardBalance:
    def test_bars_and_skew(self):
        registry = MetricsRegistry()
        registry.gauge("shard_records", shard="0").set(400)
        registry.gauge("shard_records", shard="1").set(100)
        registry.gauge("straggler_skew", merge="max").set(1.6)
        lines = render_shard_balance(registry.snapshot())
        assert "straggler skew 1.60x" in lines[0]
        assert "shard 0:" in lines[1] and "400" in lines[1]
        # Bars scale with the peak shard.
        assert lines[1].count("#") > lines[2].count("#")

    def test_absent_without_process_backend(self):
        assert render_shard_balance(MetricsRegistry().snapshot()) == []


class TestEvents:
    def test_tail_lines(self):
        events = [
            {"seq": 0, "kind": "changelog", "t_ms": 0, "sequence": 1},
            {"seq": 1, "kind": "checkpoint", "t_ms": None, "size_bytes": 42},
        ]
        lines = render_events(events, limit=1)
        assert lines[0] == "events (last 1 of 2)"
        assert lines[1] == "  [    1] checkpoint: size_bytes=42"

    def test_empty(self):
        assert render_events([]) == []


class TestDashboard:
    def test_sections_joined(self):
        registry = MetricsRegistry()
        registry.gauge("slices", operator="agg:A").set(4)
        snapshot = {
            "registry": registry.snapshot(),
            "trace": _trace_snapshot(),
        }
        text = render_dashboard(
            snapshot,
            events=[{"seq": 0, "kind": "changelog", "t_ms": 0}],
            title="sc1 inline",
        )
        assert text.startswith("== sc1 inline ==")
        assert "latency breakdown" in text
        assert "operator state" in text
        assert "events (last 1 of 1)" in text
        # Empty sections (shard balance on the inline backend) vanish.
        assert "shard balance" not in text
