"""Tests for the §4.3 metric views."""

from repro.harness.metrics import ScenarioMetrics
from repro.workloads.driver import RunReport


def _report(**overrides) -> RunReport:
    report = RunReport(name="r")
    report.tuples_pushed = 2_000
    report.wall_seconds = 2.0
    report.active_queries_final = 4
    report.mean_event_latency_ms = 100.0
    report.p99_event_latency_ms = 500.0
    report.queue_wait_final_ms = 50.0
    report.deployment_latencies_ms = [1_000.0, 3_000.0]
    report.deployment_series = [(0, 1_000.0), (1_000, 3_000.0)]
    report.active_queries_series = [(1_000, 2), (10_000, 4)]
    for name, value in overrides.items():
        setattr(report, name, value)
    return report


class TestThroughputViews:
    def test_slowest_is_service_rate_scaled(self):
        metrics = ScenarioMetrics(_report(), speedup=2.0)
        assert metrics.slowest_data_throughput_tps == 2_000

    def test_overall_multiplies_by_active_queries(self):
        metrics = ScenarioMetrics(_report())
        assert metrics.overall_data_throughput_tps == 4_000


class TestLatencyViews:
    def test_total_latency_includes_queue_wait(self):
        metrics = ScenarioMetrics(_report())
        assert metrics.mean_event_time_latency_ms == 150.0
        assert metrics.engine_latency_ms == 100.0
        assert metrics.p99_event_time_latency_ms == 500.0


class TestDeploymentViews:
    def test_aggregates(self):
        metrics = ScenarioMetrics(_report())
        assert metrics.mean_deployment_latency_ms == 2_000
        assert metrics.max_deployment_latency_ms == 3_000
        assert metrics.total_deployment_latency_ms == 4_000
        assert metrics.deployment_timeline() == [(0, 1_000.0), (1_000, 3_000.0)]

    def test_empty_deployments(self):
        metrics = ScenarioMetrics(_report(deployment_latencies_ms=[]))
        assert metrics.max_deployment_latency_ms == 0.0


class TestQueryThroughput:
    def test_rate_over_duration(self):
        metrics = ScenarioMetrics(_report())
        assert metrics.query_throughput_qps == 0.2  # 2 creates / 10 s

    def test_empty_series(self):
        metrics = ScenarioMetrics(_report(active_queries_series=[]))
        assert metrics.query_throughput_qps == 0.0


class TestSustainability:
    def test_flags_pass_through(self):
        report = _report()
        report.sustained = False
        report.failure = "boom"
        metrics = ScenarioMetrics(report)
        assert not metrics.sustained
        assert metrics.failure == "boom"


class TestFaultToleranceViews:
    def test_quiet_run_reports_zeroes(self):
        metrics = ScenarioMetrics(_report())
        assert metrics.recovery_count == 0
        assert metrics.mean_mttr_ms == 0.0
        assert metrics.total_replayed_elements == 0
        assert metrics.dead_letter_count == 0

    def test_recovery_aggregates(self):
        from repro.faults import RecoveryEvent
        from repro.workloads.driver import DeadLetter

        events = [
            RecoveryEvent(
                cause="node crash",
                detected_at_ms=1_000,
                recovered_at_ms=3_000,
                mttr_ms=2_000,
                checkpoint_id=1,
                replayed_elements=10,
            ),
            RecoveryEvent(
                cause="channel drop",
                detected_at_ms=5_000,
                recovered_at_ms=9_000,
                mttr_ms=4_000,
                checkpoint_id=2,
                replayed_elements=30,
            ),
        ]
        letters = [
            DeadLetter(
                kind="tuple", payload=None, reason="poison", at_ms=1, attempts=3
            )
        ]
        metrics = ScenarioMetrics(
            _report(recovery_events=events, dead_letters=letters)
        )
        assert metrics.recovery_count == 2
        assert metrics.mean_mttr_ms == 3_000.0
        assert metrics.total_replayed_elements == 40
        assert metrics.dead_letter_count == 1
