"""Tests for the experiment runner."""

import pytest

from repro.core.engine import AStreamEngine
from repro.baseline import QueryAtATimeEngine
from repro.core.qos import QoSMonitor
from repro.harness.runner import (
    RunnerConfig,
    build_sut,
    run_scenario,
    sustainable_query_search,
)


def _quick_config(**overrides) -> RunnerConfig:
    defaults = dict(input_rate_tps=100.0, duration_s=3.0)
    defaults.update(overrides)
    return RunnerConfig(**defaults)


class TestBuildSut:
    def test_astream(self):
        engine, adapter = build_sut(_quick_config(sut="astream"), QoSMonitor())
        assert isinstance(engine, AStreamEngine)
        assert adapter.name == "astream"

    def test_flink(self):
        engine, adapter = build_sut(_quick_config(sut="flink"), QoSMonitor())
        assert isinstance(engine, QueryAtATimeEngine)
        assert adapter.name == "flink"

    def test_flink_free_has_zero_deploy_cost(self):
        engine, _ = build_sut(_quick_config(sut="flink-free"), QoSMonitor())
        assert engine.deployment.job_submit_ms == 0
        assert engine.deployment.cold_start_ms == 0

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            build_sut(_quick_config(sut="nope"), QoSMonitor())


class TestRunScenario:
    def test_sc1(self):
        metrics = run_scenario(
            _quick_config(), scenario="sc1",
            queries_per_second=2, query_parallelism=2, kind="agg",
        )
        assert metrics.slowest_data_throughput_tps > 0
        assert metrics.report.active_queries_final == 2

    def test_single(self):
        metrics = run_scenario(_quick_config(), scenario="single", kind="join")
        assert metrics.report.active_queries_final == 1

    def test_sc2(self):
        metrics = run_scenario(
            _quick_config(duration_s=5.0), scenario="sc2",
            queries_per_batch=2, batch_interval_s=2, batches=2, kind="agg",
        )
        assert metrics.report.active_queries_final == 2

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError):
            run_scenario(_quick_config(), scenario="sc9")

    def test_speedup_applied(self):
        four = run_scenario(_quick_config(nodes=4), scenario="single", kind="agg")
        assert four.speedup == pytest.approx(1.0)
        eight = run_scenario(_quick_config(nodes=8), scenario="single", kind="agg")
        assert eight.speedup == pytest.approx(2 ** 0.5)

    def test_engine_exposed_for_component_stats(self):
        metrics = run_scenario(
            _quick_config(profile=True), scenario="single", kind="join"
        )
        stats = metrics.engine.component_stats()
        assert stats["predicate_evaluations"] > 0


class TestSustainableSearch:
    def test_zero_when_nothing_sustains(self):
        config = _quick_config(duration_s=2.0)
        count = sustainable_query_search(
            config, low=1, high=4, min_throughput_tps=10**12
        )
        assert count == 0

    def test_finds_a_positive_count_at_modest_threshold(self):
        config = _quick_config(duration_s=2.0)
        count = sustainable_query_search(
            config, low=1, high=8, min_throughput_tps=10.0
        )
        assert count >= 1
