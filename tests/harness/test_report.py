"""Tests for figure result rendering."""

from repro.harness.report import FigureResult, render_series, render_table


def _result() -> FigureResult:
    result = FigureResult(
        figure_id="Figure X",
        title="demo",
        columns=("name", "value", "flag"),
        paper_expectation="goes up",
        notes="tiny run",
    )
    result.add(name="a", value=1234.5, flag=True)
    result.add(name="b", value=0.5, flag=False)
    result.add(name="c", value=None, flag=True)
    return result


class TestFigureResult:
    def test_add_and_column(self):
        result = _result()
        assert result.column("name") == ["a", "b", "c"]
        assert result.column("missing") == [None, None, None]


class TestRenderTable:
    def test_contains_all_parts(self):
        text = render_table(_result())
        assert "Figure X: demo" in text
        assert "1,234" in text      # thousands formatting
        assert "0.50" in text       # small float formatting
        assert "yes" in text and "no" in text
        assert "-" in text          # None cell
        assert "paper: goes up" in text
        assert "notes: tiny run" in text

    def test_empty_rows(self):
        result = FigureResult("F", "empty", columns=("a",))
        text = render_table(result)
        assert "F: empty" in text


class TestRenderSeries:
    def test_bins(self):
        series = [(i * 1_000, float(i)) for i in range(100)]
        text = render_series("timeline", series, value_label="tps", bins=5)
        assert "timeline" in text
        assert text.count("t=") <= 100 // (100 // 5) + 1

    def test_empty(self):
        assert "(empty)" in render_series("x", [])


class TestRenderCsv:
    def test_csv_round_trips(self):
        import csv
        import io

        from repro.harness.report import render_csv

        text = render_csv(_result())
        rows = list(csv.reader(io.StringIO(text)))
        assert rows[0] == ["name", "value", "flag"]
        assert rows[1] == ["a", "1234.5", "True"]
        assert rows[3] == ["c", "", "True"]  # None -> empty cell


class TestRenderRecoveryLog:
    def test_empty_log_is_quiet(self):
        from repro.harness.report import render_recovery_log

        assert "no failures" in render_recovery_log([])

    def test_lines_and_summary(self):
        from repro.faults import RecoveryEvent
        from repro.harness.report import render_recovery_log

        events = [
            RecoveryEvent(
                cause="node crash (node 1)",
                detected_at_ms=2_050,
                recovered_at_ms=4_550,
                mttr_ms=2_500,
                checkpoint_id=3,
                replayed_elements=17,
            ),
            RecoveryEvent(
                cause="external: boom",
                detected_at_ms=6_050,
                recovered_at_ms=8_050,
                mttr_ms=2_000,
                checkpoint_id=None,
                replayed_elements=0,
            ),
        ]
        text = render_recovery_log(events)
        assert "node crash (node 1)" in text
        assert "ckpt 3" in text
        assert "full restart" in text
        assert "2 recoveries" in text
        assert "mean MTTR 2.25s" in text
        assert "17 elements replayed" in text
