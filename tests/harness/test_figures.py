"""Smoke tests for the figure experiments.

The full figure runs are benchmarks; here we verify the cheapest figures
end-to-end (shape assertions included) and the registry's completeness.
"""

import pytest

from repro.harness import figures
from repro.harness.report import render_table


class TestRegistry:
    def test_every_paper_figure_has_an_experiment(self):
        expected = {f"fig{number:02d}" for number in range(9, 21)}
        # Companions (e.g. the measured process-backend scaling run)
        # may extend the registry; every paper figure must be present.
        assert expected <= set(figures.ALL_FIGURES)
        assert "fig17_measured" in figures.ALL_FIGURES

    def test_all_entries_callable(self):
        for name, experiment in figures.ALL_FIGURES.items():
            assert callable(experiment), name


class TestFigure10:
    def test_shapes(self):
        result = figures.fig10_deployment_timeline(quick=True)
        flink = [row for row in result.rows if row["sut"] == "flink"]
        astream = [row for row in result.rows if row["sut"] == "astream"]
        # Flink deployment latency climbs monotonically (queueing).
        flink_latencies = [row["latency_s"] for row in flink]
        assert flink_latencies == sorted(flink_latencies)
        assert flink_latencies[-1] > 20
        # AStream pays the cold start once, then stays within the
        # changelog timeout (~1s).
        astream_latencies = [row["latency_s"] for row in astream]
        assert astream_latencies[0] > 5
        assert max(astream_latencies[2:]) <= 1.5
        assert render_table(result)


class TestFigure18:
    def test_component_percentages_sum_to_100(self):
        result = figures.fig18_overhead(quick=True)
        assert result.rows
        for row in result.rows:
            total = (
                row["queryset_gen_pct"]
                + row["bitset_ops_pct"]
                + row["router_copy_pct"]
            )
            assert total == pytest.approx(100.0, abs=0.1)
            assert 0.0 <= row["total_overhead_pct"] <= 100.0
