"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import pytest

from repro.core.engine import AStreamEngine, EngineConfig
from repro.minispe.cluster import ClusterSpec, SimulatedCluster
from repro.workloads.datagen import DataTuple


def make_tuple(key: int = 0, fields: Sequence[int] = (0, 0, 0, 0, 0)) -> DataTuple:
    """Build a workload tuple with explicit fields."""
    return DataTuple(key=key, fields=tuple(fields))


def field_tuple(key: int, **field_values: int) -> DataTuple:
    """Build a tuple setting individual fields: ``field_tuple(1, f0=42)``."""
    fields = [0, 0, 0, 0, 0]
    for name, value in field_values.items():
        if not name.startswith("f"):
            raise ValueError(f"field names look like f0..f4, got {name!r}")
        fields[int(name[1:])] = value
    return DataTuple(key=key, fields=tuple(fields))


@pytest.fixture
def small_cluster() -> SimulatedCluster:
    """A 4-node cluster like the paper's smaller configuration."""
    return SimulatedCluster(ClusterSpec(nodes=4))


def make_engine(
    streams: Tuple[str, ...] = ("A", "B"),
    parallelism: int = 1,
    cluster: Optional[SimulatedCluster] = None,
    **config_overrides,
) -> AStreamEngine:
    """A compact AStream engine for unit tests."""
    return AStreamEngine(
        EngineConfig(streams=streams, parallelism=parallelism, **config_overrides),
        cluster=cluster or SimulatedCluster(ClusterSpec(nodes=4)),
    )


def go_live(engine: AStreamEngine, queries, now_ms: int = 0) -> int:
    """Submit queries and force the changelog; returns the marker time."""
    for query in queries:
        engine.submit(query, now_ms)
    engine.flush_session(now_ms)
    return now_ms
