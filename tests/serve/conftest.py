"""Shared fixtures for the serving-layer tests: a threaded server."""

import pytest

from repro.serve import ServeConfig, ServerThread


@pytest.fixture
def make_server():
    """Factory fixture: boot servers, tear them all down at test end."""
    handles = []

    def factory(**overrides):
        config = ServeConfig(**{"clock": "manual", **overrides})
        handle = ServerThread(config)
        handles.append(handle)
        return handle

    yield factory
    for handle in handles:
        handle.stop()
