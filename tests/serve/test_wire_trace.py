"""Wire-to-delivery tracing, latency SLOs, and cost attribution (ISSUE 9).

The tentpole contract over real loopback sockets: a traced push's ack
carries a span breakdown that telescopes to the end-to-end number
*exactly* (sum of spans == e2e, by the boundary-stamp construction), on
both backends and both codecs; declared SLO targets surface burn rates
in ``stats`` and drive subscription pressure; traced pushes survive a
worker kill mid-stream; a gate recovery drops a flight-recorder dump.
"""

import json

import pytest

from repro.serve import ServeClient, ServeError
from repro.workloads.datagen import DataTuple

SQL_SELECT = "SELECT * FROM A WHERE A.F0 > 10"
WIRE_STAGES = ["client", "server", "shard", "subscription"]


def _tuple(key=1, f0=50):
    return DataTuple(key=key, fields=(f0, 1, 2, 3, 4))


def _client(handle, client_id="trace", **kwargs):
    return ServeClient("127.0.0.1", handle.port, client_id=client_id, **kwargs)


def _assert_telescopes(summary):
    """Span sums must equal e2e exactly — no hidden/overlapping time."""
    spans = summary["spans"]
    assert [stage for stage, _ in spans] == WIRE_STAGES
    assert sum(ns for _, ns in spans) == summary["e2e_ns"]
    assert summary["e2e_ns"] > 0


class TestTelescopingSpans:
    @pytest.mark.parametrize("backend", ["inline", "process"])
    @pytest.mark.parametrize("codec", ["json", "binary"])
    def test_ack_spans_sum_to_e2e_exactly(self, make_server, backend, codec):
        handle = make_server(
            backend=backend,
            workers=2,
            codecs=("binary", "json") if codec == "binary" else ("json",),
        )
        client = _client(handle, codec=codec, trace_sample_every=1)
        assert client.codec == codec
        created = client.create_query(sql=SQL_SELECT, at_ms=0)
        assert created.status == "admit"
        client.subscribe(created.query_id)
        for i in range(8):
            assert client.push("A", [(i, _tuple())]) == 1
        assert len(client.trace_summaries) == 8
        assert len(client.wire_latencies_ms) == 8
        for summary in client.trace_summaries:
            _assert_telescopes(summary)
            # The pushed tuple matched the predicate, so the trace must
            # attribute the delivery to our query.
            assert created.query_id in summary["queries"]
        client.close()

    def test_sampling_cadence_traces_every_nth_push(self, make_server):
        handle = make_server()
        client = _client(handle, trace_sample_every=4)
        created = client.create_query(sql=SQL_SELECT, at_ms=0)
        assert created.status == "admit"
        for i in range(12):
            client.push("A", [(i, _tuple())])
        assert len(client.trace_summaries) == 3
        client.close()

    def test_untraced_pushes_carry_no_trace_block(self, make_server):
        handle = make_server()
        client = _client(handle)  # trace_sample_every=0: never traced
        created = client.create_query(sql=SQL_SELECT, at_ms=0)
        assert created.status == "admit"
        for i in range(5):
            client.push("A", [(i, _tuple())])
        assert not client.trace_summaries
        assert not client.wire_latencies_ms
        stats = client.stats()
        assert stats["wire_latency"]["traced_pushes"] == 0
        client.close()

    def test_stats_wire_latency_block_aggregates_traces(self, make_server):
        handle = make_server()
        client = _client(handle, trace_sample_every=1)
        created = client.create_query(sql=SQL_SELECT, at_ms=0)
        assert created.status == "admit"
        client.subscribe(created.query_id)
        for i in range(6):
            client.push("A", [(i, _tuple())])
        wire = client.stats()["wire_latency"]
        assert wire["traced_pushes"] == 6
        assert wire["e2e_total_ns"] > 0
        breakdown = wire["breakdown"]
        assert breakdown["sampled"] == 6
        assert set(breakdown["stages"]) == set(WIRE_STAGES)
        client.close()


class TestLatencySLOs:
    def test_declared_slo_surfaces_in_stats(self, make_server):
        handle = make_server()
        client = _client(handle, client_id="tenant-a", trace_sample_every=1)
        created = client.create_query(sql=SQL_SELECT, at_ms=0, slo_ms=5_000.0)
        assert created.status == "admit"
        assert created.raw["slo_ms"] == 5_000.0
        client.subscribe(created.query_id)
        for i in range(8):
            client.push("A", [(i, _tuple())])
        slo = client.stats()["slo"]
        assert slo["observed_total"] == 8
        entry = slo["queries"][created.query_id]
        assert entry["target_ms"] == 5_000.0
        assert entry["tenant"] == "tenant-a"
        assert entry["count"] == 8
        assert 0 < entry["p50"] <= entry["p99"]
        # A 5s loopback budget is never violated.
        assert entry["burn_rate"] == 0.0
        assert slo["tenants"]["tenant-a"]["count"] == 8
        assert not client.stats()["slo_pressure"]
        client.close()

    def test_bad_slo_rejected_without_disconnect(self, make_server):
        handle = make_server()
        client = _client(handle)
        with pytest.raises(ServeError) as excinfo:
            client.create_query(sql=SQL_SELECT, at_ms=0, slo_ms=-1.0)
        assert excinfo.value.code == "bad_slo"
        assert client.ping()
        client.close()

    def test_impossible_slo_burns_and_applies_pressure(self, make_server):
        handle = make_server()
        client = _client(handle, trace_sample_every=1)
        # A 1ns budget: every loopback delivery violates, so the burn
        # rate saturates at window/(1-objective) and pressure engages.
        created = client.create_query(sql=SQL_SELECT, at_ms=0, slo_ms=1e-6)
        assert created.status == "admit"
        client.subscribe(created.query_id)
        for i in range(8):
            client.push("A", [(i, _tuple())])
        stats = client.stats()
        entry = stats["slo"]["queries"][created.query_id]
        assert entry["burn_rate"] >= 1.0
        assert stats["slo"]["violations_total"] == 8
        assert created.query_id in stats["slo_pressure"]
        assert any(
            "slo_burn" in violation
            for violation in handle.server.qos.violations()
        )
        # Deleting the query lifts the pressure and forgets its state.
        client.delete_query(created.query_id, at_ms=100)
        stats = client.stats()
        assert created.query_id not in stats["slo_pressure"]
        assert created.query_id not in stats["slo"]["queries"]
        client.close()

    def test_server_default_slo_applies_to_all_queries(self, make_server):
        handle = make_server(slo_target_ms=2_000.0)
        client = _client(handle, trace_sample_every=1)
        created = client.create_query(sql=SQL_SELECT, at_ms=0)
        assert created.status == "admit"
        assert created.raw["slo_ms"] == 2_000.0
        client.subscribe(created.query_id)
        client.push("A", [(0, _tuple())])
        entry = client.stats()["slo"]["queries"][created.query_id]
        assert entry["target_ms"] == 2_000.0
        client.close()


class TestChaosTracing:
    def test_traced_pushes_survive_worker_kill(self, make_server):
        handle = make_server(backend="process", workers=2)
        client = _client(handle, trace_sample_every=1)
        created = client.create_query(sql=SQL_SELECT, at_ms=0, slo_ms=10_000.0)
        assert created.status == "admit"
        client.subscribe(created.query_id)
        for i in range(4):
            assert client.push("A", [(i, _tuple(key=i))]) == 1
        assert client.chaos_kill_worker(0).status == "ok"
        for i in range(4, 8):
            assert client.push("A", [(i, _tuple(key=i))]) == 1
        stats = client.stats()
        assert stats["recoveries"] >= 1
        # Every push before and after the kill closed a telescoping
        # trace and fed the SLO tracker.
        assert len(client.trace_summaries) == 8
        for summary in client.trace_summaries:
            _assert_telescopes(summary)
        assert stats["slo"]["queries"][created.query_id]["count"] == 8
        client.close()


class TestFlightRecorder:
    def test_recovery_dumps_flight_record(self, make_server, tmp_path):
        flight_dir = tmp_path / "flight"
        handle = make_server(
            backend="process", workers=2, flight_dir=str(flight_dir)
        )
        client = _client(handle, trace_sample_every=1)
        created = client.create_query(sql=SQL_SELECT, at_ms=0)
        assert created.status == "admit"
        client.subscribe(created.query_id)
        for i in range(3):
            client.push("A", [(i, _tuple(key=i))])
        assert client.chaos_kill_worker(0).status == "ok"
        client.push("A", [(3, _tuple(key=3))])  # triggers the recovery
        assert client.stats()["recoveries"] >= 1
        dumps = sorted(flight_dir.glob("flight_recovery_*.json"))
        assert dumps, "recovery must drop a flight record"
        record = json.loads(dumps[0].read_text())
        assert record["kind"] == "flight_record"
        assert record["info"]["incident"] >= 1
        assert "checkpoint_id" in record["info"]
        assert record["info"]["slo"]["observed_total"] >= 3
        # The wire-trace tail holds the pushes leading up to the kill.
        tail = record["wire_traces"]["tail"]
        assert len(tail) >= 3
        for trace in tail:
            assert sum(ns for _, ns in trace["spans"]) == trace["e2e_ns"]
        client.close()

    def test_flight_dir_env_fallback(self, make_server, tmp_path, monkeypatch):
        monkeypatch.setenv("ASTREAM_FLIGHT_DIR", str(tmp_path / "env_flight"))
        handle = make_server(backend="process", workers=2)
        assert handle.server.config.flight_dir == str(tmp_path / "env_flight")
        handle.stop()


class TestCostAttribution:
    def test_stats_cost_block_conserves_engine_cpu(self, make_server):
        # ``profile`` turns on the per-push CPU meter the attribution
        # splits; the plain hot path keeps it off.
        handle = make_server(engine_overrides={"profile": True})
        client = _client(handle, trace_sample_every=1)
        ids = [
            client.create_query(
                sql=f"SELECT * FROM A WHERE A.F0 > {bound}", at_ms=0
            ).query_id
            for bound in (10, 10, 400)
        ]
        for i in range(30):
            client.push("A", [(i, _tuple(key=i, f0=(i * 37) % 1000))])
        cost = client.stats()["cost"]
        assert cost["total_ns"] > 0
        assert set(cost["queries"]) == set(ids)
        assert (
            sum(cost["queries"].values()) + cost["unattributed_ns"]
            == cost["total_ns"]
        )
        # The two identical predicates share one covering evaluation, so
        # their attributed shares match; the third differs.
        assert cost["queries"][ids[0]] == pytest.approx(
            cost["queries"][ids[1]], rel=0.01, abs=2
        )
        top = cost["top"]
        assert top[0]["cpu_ns"] >= top[-1]["cpu_ns"]
        client.close()

    def test_process_backend_cost_merges_across_shards(self, make_server):
        handle = make_server(
            backend="process",
            workers=2,
            engine_overrides={"profile": True},
        )
        client = _client(handle)
        ids = [
            client.create_query(
                sql=f"SELECT * FROM A WHERE A.F0 > {bound}", at_ms=0
            ).query_id
            for bound in (10, 500)
        ]
        for i in range(40):
            client.push("A", [(i, _tuple(key=i, f0=(i * 53) % 1000))])
        cost = client.stats()["cost"]
        assert cost["total_ns"] > 0, "worker CPU meters must be summed"
        assert set(cost["queries"]) == set(ids)
        assert (
            sum(cost["queries"].values()) + cost["unattributed_ns"]
            == cost["total_ns"]
        )
        client.close()
