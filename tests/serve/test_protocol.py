"""Wire-frame codec: exact roundtrips and malformed-input behaviour.

Satellite 1 of ISSUE 5: every frame type must roundtrip end-to-end
(encode → decode) across empty, unicode-heavy, and maximum-size
payloads, and malformed frames must come back as protocol errors on a
live connection — never as a dropped session.
"""

import json
import socket
import struct

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.serde import (
    output_from_dict,
    output_to_dict,
    value_from_dict,
    value_to_dict,
)
from repro.core.router import QueryOutput
from repro.core.shared_aggregation import AggregationResult
from repro.core.shared_join import JoinedTuple
from repro.minispe.windows import Window
from repro.serve import ServeClient
from repro.serve.protocol import (
    FRAME_SCHEMAS,
    HEADER_BYTES,
    MAX_FRAME_BYTES,
    ProtocolError,
    decode_events,
    decode_frame,
    encode_events,
    encode_frame,
    read_frame_sock,
    write_frame_sock,
)
from repro.workloads.datagen import DataTuple

# ---------------------------------------------------------------------------
# Frame construction helpers
# ---------------------------------------------------------------------------

_FIELD_FILLERS = {
    "client_id": "c", "session_id": "s", "credits": 1, "seq": 1,
    "query_id": "q", "stream": "A", "events": [], "timestamp": 0,
    "status": "ok", "outputs": [], "event": "live", "op": "kill_worker",
    "code": "bad", "message": "msg", "accepted": 0, "workers": 2,
}


def minimal_frame(kind):
    """The smallest valid frame of one type (required fields only)."""
    frame = {"t": kind}
    for field in FRAME_SCHEMAS[kind]:
        frame[field] = _FIELD_FILLERS[field]
    return frame


ALL_KINDS = sorted(FRAME_SCHEMAS)

UNICODE_PAYLOAD = "héllo-wörld ☃ \U0001f300 رمز ✓"

json_values = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**53), max_value=2**53)
    | st.text(max_size=40),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=10), children, max_size=4),
    max_leaves=12,
)


class TestFrameRoundtrip:
    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_every_frame_type_roundtrips(self, kind):
        frame = minimal_frame(kind)
        assert decode_frame(encode_frame(frame)[HEADER_BYTES:]) == frame

    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_unicode_payloads_roundtrip(self, kind):
        frame = minimal_frame(kind)
        frame["note"] = UNICODE_PAYLOAD
        for field in FRAME_SCHEMAS[kind]:
            if isinstance(frame[field], str) and field != "t":
                frame[field] = UNICODE_PAYLOAD + frame[field]
        assert decode_frame(encode_frame(frame)[HEADER_BYTES:]) == frame

    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_empty_optional_payloads_roundtrip(self, kind):
        frame = minimal_frame(kind)
        frame.update({"extra": "", "blob": [], "map": {}})
        assert decode_frame(encode_frame(frame)[HEADER_BYTES:]) == frame

    def test_max_size_frame_roundtrips(self):
        # Fill up to just under the frame cap; the decoded copy must be
        # identical down to the last byte of the filler.
        frame = minimal_frame("push")
        overhead = len(encode_frame(dict(frame, filler=""))) - HEADER_BYTES
        frame["filler"] = "x" * (MAX_FRAME_BYTES - overhead)
        encoded = encode_frame(frame)
        assert len(encoded) - HEADER_BYTES == MAX_FRAME_BYTES
        assert decode_frame(encoded[HEADER_BYTES:]) == frame

    def test_oversized_frame_is_rejected_at_encode(self):
        frame = minimal_frame("push")
        frame["filler"] = "x" * (MAX_FRAME_BYTES + 1)
        with pytest.raises(ProtocolError) as excinfo:
            encode_frame(frame)
        assert excinfo.value.code == "frame_too_large"

    @settings(max_examples=60, suppress_health_check=[HealthCheck.too_slow])
    @given(kind=st.sampled_from(ALL_KINDS), extra=json_values)
    def test_property_arbitrary_json_extras_roundtrip(self, kind, extra):
        frame = minimal_frame(kind)
        frame["extra"] = extra
        assert decode_frame(encode_frame(frame)[HEADER_BYTES:]) == frame


class TestMalformedFrames:
    def test_non_json_payload(self):
        with pytest.raises(ProtocolError) as excinfo:
            decode_frame(b"\xff\xfe not json")
        assert excinfo.value.code == "bad_json"

    def test_non_object_payload(self):
        with pytest.raises(ProtocolError) as excinfo:
            decode_frame(json.dumps([1, 2, 3]).encode())
        assert excinfo.value.code == "bad_frame"

    def test_unknown_frame_type(self):
        with pytest.raises(ProtocolError) as excinfo:
            decode_frame(json.dumps({"t": "no_such"}).encode())
        assert excinfo.value.code == "unknown_frame"

    @pytest.mark.parametrize(
        "kind", [k for k in ALL_KINDS if FRAME_SCHEMAS[k]]
    )
    def test_missing_required_field(self, kind):
        frame = minimal_frame(kind)
        frame.pop(FRAME_SCHEMAS[kind][0])
        with pytest.raises(ProtocolError) as excinfo:
            decode_frame(json.dumps(frame).encode())
        assert excinfo.value.code == "missing_field"


class TestEventCodec:
    def test_events_roundtrip(self):
        events = [
            (7, DataTuple(key=3, fields=(1, 2, 3, 4, 5))),
            (0, DataTuple(key=0, fields=(0, 0, 0, 0, 0))),
        ]
        assert decode_events(encode_events(events)) == events

    @settings(max_examples=50)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=2**40),
                st.integers(min_value=0, max_value=2**20),
                st.lists(
                    st.integers(min_value=0, max_value=2**30),
                    min_size=5, max_size=5,
                ),
            ),
            max_size=20,
        )
    )
    def test_property_events_roundtrip(self, rows):
        events = [
            (ts, DataTuple(key=key, fields=tuple(fields)))
            for ts, key, fields in rows
        ]
        assert decode_events(encode_events(events)) == events

    def test_malformed_rows_raise_protocol_error(self):
        for rows in ([[1]], [[1, 2]], ["nope"], [[1, 2, [3]]]):
            with pytest.raises(ProtocolError) as excinfo:
                decode_events(rows)
            assert excinfo.value.code == "bad_event"


class TestValueSerde:
    """The result-value serde the result frames ride on."""

    VALUES = [
        DataTuple(key=5, fields=(9, 8, 7, 6, 5)),
        JoinedTuple(
            key=2,
            parts=(
                DataTuple(key=2, fields=(1, 2, 3, 4, 5)),
                DataTuple(key=2, fields=(5, 4, 3, 2, 1)),
            ),
            timestamp=13,
        ),
        AggregationResult(key=4, window=Window(10, 20), value=6),
    ]

    @pytest.mark.parametrize("value", VALUES, ids=["tuple", "joined", "agg"])
    def test_value_roundtrip_is_exact(self, value):
        restored = value_from_dict(value_to_dict(value))
        assert restored == value
        assert repr(restored) == repr(value)

    @pytest.mark.parametrize("value", VALUES, ids=["tuple", "joined", "agg"])
    def test_output_roundtrip_through_json(self, value):
        output = QueryOutput(timestamp=42, value=value)
        over_wire = json.loads(json.dumps(output_to_dict(output)))
        restored = output_from_dict(over_wire)
        assert restored == output
        assert repr(restored.value) == repr(output.value)


class TestMalformedFramesOnLiveConnection:
    """A garbage frame must be answered, not fatal (ISSUE 5 satellite 1)."""

    def test_error_reply_then_session_keeps_working(self, make_server):
        handle = make_server()
        client = ServeClient("127.0.0.1", handle.port, client_id="mal")
        sock = client._sock

        write_frame_sock(sock, {"t": "ping"})  # warm path sanity
        assert read_frame_sock(sock)["t"] == "pong"

        # Raw invalid JSON payload with a correct length prefix:
        payload = b"this is not json at all {{{"
        sock.sendall(struct.pack(">I", len(payload)) + payload)
        reply = read_frame_sock(sock)
        assert reply["t"] == "error"
        assert reply["code"] == "bad_json"

        # Missing required field:
        payload = json.dumps({"t": "subscribe"}).encode()
        sock.sendall(struct.pack(">I", len(payload)) + payload)
        reply = read_frame_sock(sock)
        assert reply["t"] == "error"
        assert reply["code"] == "missing_field"

        # The same connection still serves real traffic afterwards.
        assert client.ping()
        stats = client.stats()
        assert stats["sessions_connected"] == 1
        client.close()

    def test_oversized_frame_is_answered_and_survivable(self, make_server):
        handle = make_server()
        client = ServeClient("127.0.0.1", handle.port, client_id="big")
        sock = client._sock
        # Declare an oversized length; the server drains and answers.
        length = MAX_FRAME_BYTES + 1
        sock.sendall(struct.pack(">I", length))
        sock.sendall(b"\0" * length)
        reply = read_frame_sock(sock)
        assert reply["t"] == "error"
        assert reply["code"] == "frame_too_large"
        assert client.ping()
        client.close()

    def test_handshake_required_before_anything_else(self, make_server):
        handle = make_server()
        sock = socket.create_connection(("127.0.0.1", handle.port), timeout=5)
        try:
            write_frame_sock(sock, {"t": "ping"})
            reply = read_frame_sock(sock)
            assert reply["t"] == "error"
            assert reply["code"] == "handshake_required"
        finally:
            sock.close()

    def test_bad_token_is_rejected(self, make_server):
        handle = make_server(auth_token="sesame")
        from repro.serve import ServeError

        with pytest.raises(ServeError) as excinfo:
            ServeClient(
                "127.0.0.1", handle.port, client_id="x", token="wrong"
            )
        assert excinfo.value.code == "auth_failed"
        client = ServeClient(
            "127.0.0.1", handle.port, client_id="x", token="sesame"
        )
        assert client.ping()
        client.close()
