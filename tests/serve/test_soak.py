"""Concurrent multi-client soak: churn + streaming under one server.

Satellite 3 of ISSUE 5: several clients create/delete ad-hoc queries at
hundreds of ops per second while another client pushes events and
streams an aggregation query's results.  Afterwards:

* **changelog consistency** — every acknowledged control op carries a
  changelog sequence; sequences are globally unique, each client
  observes its own in strictly increasing order, and the server's final
  sequence covers them all;
* **byte-equality** — the streamed query's results match the
  brute-force oracle (``tests/core/oracle``) and the streamed multiset
  equals the fetched canonical results;
* **throughput** — the control plane sustains >= 200 create/delete
  ops/sec across the churn clients on loopback (the acceptance bar).
"""

import threading
import time

from repro.core.query import AggregationQuery
from repro.serve import ServeClient
from repro.workloads.datagen import DataGenerator
from repro.workloads.querygen import QueryGenerator
from tests.core.oracle import agg_outputs_multiset, expected_agg_multiset

STREAMS = ("A", "B")
CHURN_CLIENTS = 4
CHURN_PAIRS_PER_CLIENT = 60  # 2 ops per pair -> 480 control ops total
MIN_OPS_PER_SEC = 200
STEP_MS = 100
STEPS = 40
TUPLES_PER_STEP = 10


def _churn(port, index, generator_seed, record, errors, barrier):
    """One churn client: create/delete pairs as fast as acks return."""
    try:
        client = ServeClient(
            "127.0.0.1", port, client_id=f"churn-{index}"
        )
        generator = QueryGenerator(streams=STREAMS, seed=generator_seed)
        barrier.wait(timeout=30)
        sequences = []
        for _ in range(CHURN_PAIRS_PER_CLIENT):
            created = client.create_query(query=generator.selection_query())
            assert created.status == "admit"
            deleted = client.delete_query(created.query_id)
            assert deleted.status == "ok"
            sequences.append(("create", created.query_id, created.sequence))
            sequences.append(("delete", created.query_id, deleted.sequence))
        record(index, sequences)
        client.close()
    except Exception as error:  # propagate to the main thread
        errors.append((index, error))


class TestMultiClientSoak:
    def test_soak_churn_with_streaming_consumer(self, make_server):
        handle = make_server(backend="inline", clock="manual")
        port = handle.port

        # The streaming consumer: one long-lived aggregation query.
        streamer = ServeClient("127.0.0.1", port, client_id="streamer")
        agg_query = QueryGenerator(streams=STREAMS, seed=71).aggregation_query(
            stream="A"
        )
        assert isinstance(agg_query, AggregationQuery)
        created = streamer.create_query(query=agg_query, at_ms=0)
        assert created.status == "admit"
        streamer.subscribe(agg_query.query_id)

        per_client = {}
        errors = []
        barrier = threading.Barrier(CHURN_CLIENTS + 1)

        def record(index, sequences):
            per_client[index] = sequences

        threads = [
            threading.Thread(
                target=_churn,
                args=(port, index, 100 + index, record, errors, barrier),
                daemon=True,
            )
            for index in range(CHURN_CLIENTS)
        ]
        for thread in threads:
            thread.start()
        barrier.wait(timeout=30)
        churn_started = time.perf_counter()

        # Meanwhile: push data and stream results.
        generator = DataGenerator(seed=3)
        pushed = []
        streamed = []
        for step in range(STEPS):
            base = step * STEP_MS
            events = [
                (base + (i * STEP_MS) // TUPLES_PER_STEP,
                 generator.next_tuple())
                for i in range(TUPLES_PER_STEP)
            ]
            pushed.extend(events)
            assert streamer.push("A", events) == len(events)
            streamer.watermark(base + STEP_MS)
            outputs, shed = streamer.take_results(
                agg_query.query_id, wait_ms=10
            )
            assert shed == 0
            streamed.extend(outputs)

        for thread in threads:
            thread.join(timeout=120)
            assert not thread.is_alive(), "churn client hung"
        churn_elapsed = time.perf_counter() - churn_started
        assert not errors, errors

        # -- throughput ----------------------------------------------------
        total_ops = CHURN_CLIENTS * CHURN_PAIRS_PER_CLIENT * 2
        ops_per_sec = total_ops / churn_elapsed
        assert ops_per_sec >= MIN_OPS_PER_SEC, (
            f"control plane sustained only {ops_per_sec:.0f} ops/s "
            f"({total_ops} ops in {churn_elapsed:.2f}s)"
        )

        # -- changelog consistency -----------------------------------------
        assert len(per_client) == CHURN_CLIENTS
        all_sequences = []
        for index, sequences in per_client.items():
            observed = [sequence for _, _, sequence in sequences]
            assert all(s is not None for s in observed), index
            assert observed == sorted(observed), (
                f"client {index} saw out-of-order changelog sequences"
            )
            assert len(set(observed)) == len(observed), index
            all_sequences.extend(observed)
        assert len(set(all_sequences)) == len(all_sequences), (
            "two control ops shared a changelog sequence"
        )
        stats = streamer.stats()
        assert stats["changelog_sequence"] >= max(all_sequences)
        assert stats["active_queries"] == 1  # only the streamed query

        # -- byte-equality vs the oracle -----------------------------------
        streamer.drain()
        watermark = STEPS * STEP_MS
        remaining, shed = streamer.take_results(
            agg_query.query_id, wait_ms=5_000
        )
        assert shed == 0
        streamed.extend(remaining)
        # Keep draining until the stream has caught up with the fetch.
        fetched = streamer.fetch_results(agg_query.query_id)
        deadline = time.monotonic() + 30
        while len(streamed) < len(fetched) and time.monotonic() < deadline:
            more, shed = streamer.take_results(
                agg_query.query_id, wait_ms=250
            )
            assert shed == 0
            streamed.extend(more)

        expected = expected_agg_multiset(agg_query, 0, pushed, watermark)
        assert agg_outputs_multiset(fetched) == expected
        assert agg_outputs_multiset(streamed) == expected
        assert sorted(
            (output.timestamp, repr(output.value)) for output in streamed
        ) == [(output.timestamp, repr(output.value)) for output in fetched]

        streamer.close()
