"""Binary columnar codec: roundtrips, malformed frames, negotiation.

ISSUE 7 satellite coverage, mirroring the JSON live-socket suite in
``test_protocol.py``: binary frames must roundtrip exactly, malformed or
truncated binary payloads must come back as protocol errors (never a
dropped session or a crashed server), an oversized binary frame must be
drained, a mid-frame disconnect must not poison the listener, and a
server without binary support must negotiate the session down to JSON.
"""

import pickle
import socket
import struct

import pytest

from repro.core.router import QueryOutput
from repro.core.shared_aggregation import AggregationResult
from repro.core.shared_join import JoinedTuple
from repro.minispe.record import RecordBatch
from repro.minispe.windows import Window
from repro.serve import ServeClient
from repro.serve.protocol import (
    BINARY_FLAG,
    HEADER_BYTES,
    MAX_FRAME_BYTES,
    ProtocolError,
    decode_binary_payload,
    encode_push_binary,
    encode_result_binary,
    negotiate_codec,
    read_frame_sock,
    write_frame_sock,
)
from repro.workloads.datagen import DataGenerator, DataTuple

_HEADER = struct.Struct(">I")


def _events(count, seed=3):
    generator = DataGenerator(seed=seed)
    return [(17 * i + 1, generator.next_tuple()) for i in range(count)]


def _payload(frame_bytes):
    """Strip the length prefix off an encoded frame."""
    return frame_bytes[HEADER_BYTES:]


class TestBinaryPushCodec:
    def test_push_roundtrips_to_columnar_batch(self):
        events = _events(32)
        frame = decode_binary_payload(_payload(encode_push_binary("A", events)))
        assert frame["t"] == "push"
        assert frame["stream"] == "A"
        assert frame["_decoded"]
        batch = frame["batch"]
        assert isinstance(batch, RecordBatch)
        assert batch.is_columnar
        assert len(batch) == len(events)
        assert list(batch.timestamps()) == [ts for ts, _ in events]
        assert list(batch.keys()) == [value.key for _, value in events]
        # lazy materialisation reproduces the exact tuples
        assert [(r.timestamp, r.value) for r in batch.records] == events

    def test_empty_push_roundtrips(self):
        frame = decode_binary_payload(_payload(encode_push_binary("B", [])))
        assert len(frame["batch"]) == 0
        assert frame["batch"].records == []

    def test_wrong_arity_raises_for_json_fallback(self):
        class Odd:
            key = 1
            fields = (1, 2, 3, 4)  # four fields, not five

        with pytest.raises((ValueError, struct.error)):
            encode_push_binary("A", [(0, Odd())])

    def test_int64_overflow_raises_for_json_fallback(self):
        events = [(0, DataTuple(key=2**70, fields=(1, 2, 3, 4, 5)))]
        with pytest.raises((struct.error, OverflowError)):
            encode_push_binary("A", events)

    def test_columnar_batch_accessors_and_pickle(self):
        events = _events(8)
        batch = decode_binary_payload(
            _payload(encode_push_binary("A", events))
        )["batch"]
        fields = batch.field_columns()
        assert len(fields) == 5
        assert [column[0] for column in fields] == list(events[0][1].fields)
        assert batch.row_value(3) == events[3][1]
        # memoryview columns cannot pickle; __reduce__ materialises
        clone = pickle.loads(pickle.dumps(batch))
        assert clone.records == batch.records
        assert not clone.is_columnar


class TestBinaryResultCodec:
    def _roundtrip(self, outputs, dropped=0):
        encoded = encode_result_binary("q1", outputs, dropped)
        assert encoded is not None
        frame = decode_binary_payload(_payload(encoded))
        assert frame["t"] == "result"
        assert frame["query_id"] == "q1"
        return frame

    def test_tuple_results_roundtrip(self):
        outputs = [
            QueryOutput(timestamp=ts, value=value) for ts, value in _events(5)
        ]
        frame = self._roundtrip(outputs, dropped=2)
        assert frame["outputs"] == outputs
        assert frame["dropped"] == 2

    def test_aggregation_results_roundtrip(self):
        outputs = [
            QueryOutput(
                timestamp=10 * i,
                value=AggregationResult(
                    key=i, window=Window(10 * i, 10 * i + 10), value=7 * i
                ),
            )
            for i in range(4)
        ]
        assert self._roundtrip(outputs)["outputs"] == outputs

    def test_joined_results_roundtrip(self):
        outputs = [
            QueryOutput(
                timestamp=i,
                value=JoinedTuple(
                    key=i,
                    parts=(
                        DataTuple(key=i, fields=(1, 2, 3, 4, 5)),
                        DataTuple(key=i, fields=(6, 7, 8, 9, 10)),
                    ),
                    timestamp=i + 1,
                ),
            )
            for i in range(3)
        ]
        assert self._roundtrip(outputs)["outputs"] == outputs

    def test_mixed_kinds_fall_back_to_json(self):
        outputs = [
            QueryOutput(timestamp=0, value=DataTuple(key=1, fields=(1, 2, 3, 4, 5))),
            QueryOutput(
                timestamp=1,
                value=AggregationResult(key=1, window=Window(0, 10), value=2),
            ),
        ]
        assert encode_result_binary("q", outputs) is None

    def test_non_int_agg_value_falls_back_to_json(self):
        outputs = [
            QueryOutput(
                timestamp=0,
                value=AggregationResult(key=1, window=Window(0, 10), value=1.5),
            )
        ]
        assert encode_result_binary("q", outputs) is None


class TestMalformedBinaryPayloads:
    def _push_payload(self, count=4):
        return bytearray(_payload(encode_push_binary("A", _events(count))))

    def test_empty_payload(self):
        with pytest.raises(ProtocolError) as excinfo:
            decode_binary_payload(b"")
        assert excinfo.value.code == "bad_binary"

    def test_unknown_kind_byte(self):
        with pytest.raises(ProtocolError) as excinfo:
            decode_binary_payload(b"\x7f\x00\x00")
        assert excinfo.value.code == "bad_binary"

    def test_truncated_mid_column(self):
        payload = self._push_payload()
        with pytest.raises(ProtocolError) as excinfo:
            decode_binary_payload(bytes(payload[:-5]))
        assert excinfo.value.code == "bad_binary"

    def test_declared_count_exceeds_payload(self):
        payload = self._push_payload(4)
        # count lives right after kind(1) + u16 len + name("A" = 1 byte)
        struct.pack_into(">I", payload, 4, 1_000)
        with pytest.raises(ProtocolError) as excinfo:
            decode_binary_payload(bytes(payload))
        assert excinfo.value.code == "bad_binary"

    def test_truncated_in_name(self):
        with pytest.raises(ProtocolError) as excinfo:
            decode_binary_payload(b"\x01\x00\x40AB")
        assert excinfo.value.code == "bad_binary"

    def test_unknown_result_value_kind(self):
        payload = bytearray(
            _payload(
                encode_result_binary(
                    "q",
                    [
                        QueryOutput(
                            timestamp=0,
                            value=DataTuple(key=1, fields=(1, 2, 3, 4, 5)),
                        )
                    ],
                )
            )
        )
        # value_kind byte: kind(1) + u16(2) + "q"(1) + dropped u32(4)
        payload[8] = 99
        with pytest.raises(ProtocolError) as excinfo:
            decode_binary_payload(bytes(payload))
        assert excinfo.value.code == "bad_binary"


class TestCodecNegotiation:
    def test_first_supported_codec_wins(self):
        assert negotiate_codec(["binary", "json"]) == "binary"
        assert negotiate_codec(["json", "binary"]) == "json"

    def test_absent_or_malformed_offer_defaults_to_json(self):
        assert negotiate_codec(None) == "json"
        assert negotiate_codec("binary") == "json"
        assert negotiate_codec(["zstd"]) == "json"

    def test_server_without_binary_negotiates_down(self, make_server):
        handle = make_server(codecs=("json",))
        client = ServeClient(
            "127.0.0.1", handle.port, client_id="fallback", codec="binary"
        )
        assert client.codec == "json"
        created = client.create_query(
            sql="SELECT * FROM A WHERE A.F0 > 40", at_ms=0
        )
        assert created.status == "admit"
        assert client.push("A", _events(16)) == 16
        client.watermark(10**9)
        client.drain()
        assert client.fetch_results(created.query_id)
        client.close()


class TestBinaryFramesOnLiveConnection:
    """Binary framing abuse must be answered, never fatal."""

    def test_malformed_binary_frame_gets_error_reply(self, make_server):
        handle = make_server()
        client = ServeClient("127.0.0.1", handle.port, client_id="bmal")
        sock = client._sock
        payload = b"\x01\x00\x40short"  # name length overruns payload
        sock.sendall(_HEADER.pack(BINARY_FLAG | len(payload)) + payload)
        reply = read_frame_sock(sock)
        assert reply["t"] == "error"
        assert reply["code"] == "bad_binary"
        # same session still works afterwards
        assert client.ping()
        client.close()

    def test_oversized_binary_frame_is_drained_and_survivable(
        self, make_server
    ):
        handle = make_server()
        client = ServeClient("127.0.0.1", handle.port, client_id="bbig")
        sock = client._sock
        length = MAX_FRAME_BYTES + 1
        sock.sendall(_HEADER.pack(BINARY_FLAG | length))
        sock.sendall(b"\0" * length)
        reply = read_frame_sock(sock)
        assert reply["t"] == "error"
        assert reply["code"] == "frame_too_large"
        assert client.ping()
        client.close()

    def test_mid_frame_disconnect_leaves_server_healthy(self, make_server):
        handle = make_server()
        probe = ServeClient("127.0.0.1", handle.port, client_id="probe")
        sock = socket.create_connection(("127.0.0.1", handle.port), timeout=5)
        # Declare a binary frame, send half of it, hang up.
        payload = _payload(encode_push_binary("A", _events(64)))
        sock.sendall(_HEADER.pack(BINARY_FLAG | len(payload)))
        sock.sendall(payload[: len(payload) // 2])
        sock.close()
        # The listener must still serve existing and new sessions.
        assert probe.ping()
        fresh = ServeClient("127.0.0.1", handle.port, client_id="fresh")
        assert fresh.ping()
        fresh.close()
        probe.close()

    def test_binary_and_json_sessions_see_identical_results(
        self, make_server
    ):
        events = _events(96, seed=11)
        fetched = {}
        for codec in ("json", "binary"):
            # Fresh server per codec: the manual clock only moves forward,
            # so a second at_ms=0 query on one server would be in the past.
            handle = make_server()
            client = ServeClient(
                "127.0.0.1", handle.port, client_id=f"eq-{codec}", codec=codec
            )
            assert client.codec == codec
            created = client.create_query(
                sql="SELECT * FROM A WHERE A.F0 > 40", at_ms=0
            )
            assert created.status == "admit"
            assert client.push("A", events) == len(events)
            client.watermark(10**9)
            client.drain()
            fetched[codec] = [
                (output.timestamp, repr(output.value))
                for output in client.fetch_results(created.query_id)
            ]
            client.delete_query(created.query_id)
            client.close()
        assert fetched["json"] == fetched["binary"]
        assert fetched["json"]  # the predicate keeps some rows


class TestPipelinedIngest:
    def test_push_nowait_flush_accepts_everything(self, make_server):
        handle = make_server()
        client = ServeClient(
            "127.0.0.1", handle.port, client_id="pipe", coalesce_tuples=32
        )
        created = client.create_query(
            sql="SELECT * FROM A WHERE A.F0 > 40", at_ms=0
        )
        events = _events(200, seed=5)
        for i in range(0, len(events), 10):
            client.push_nowait("A", events[i : i + 10])
        accepted = client.flush_ingest()
        assert accepted == len(events)
        client.watermark(10**9)
        client.drain()
        assert client.fetch_results(created.query_id)
        client.close()

    def test_pipelined_results_match_sync_push(self, make_server):
        events = _events(150, seed=7)
        fetched = []
        for pipelined in (False, True):
            handle = make_server()
            client = ServeClient(
                "127.0.0.1", handle.port, client_id=f"p{pipelined}"
            )
            created = client.create_query(
                sql="SELECT * FROM A WHERE A.F0 > 40", at_ms=0
            )
            if pipelined:
                for i in range(0, len(events), 25):
                    client.push_nowait("A", events[i : i + 25])
                assert client.flush_ingest() == len(events)
            else:
                for i in range(0, len(events), 25):
                    client.push("A", events[i : i + 25])
            client.watermark(10**9)
            client.drain()
            fetched.append(
                [
                    (output.timestamp, repr(output.value))
                    for output in client.fetch_results(created.query_id)
                ]
            )
            client.delete_query(created.query_id)
            client.close()
        assert fetched[0] == fetched[1]

    def test_control_frame_drains_pipelined_ingest_first(self, make_server):
        """Ordering barrier: a watermark after push_nowait must observe
        every buffered tuple."""
        handle = make_server()
        client = ServeClient("127.0.0.1", handle.port, client_id="barrier")
        created = client.create_query(
            sql="SELECT * FROM A WHERE A.F0 > 0", at_ms=0
        )
        events = _events(40, seed=13)
        client.push_nowait("A", events)
        client.watermark(10**9)
        client.drain()
        outputs = client.fetch_results(created.query_id)
        assert len(outputs) == sum(
            1 for _, value in events if value.fields[0] > 0
        )
        client.close()
