"""Server behaviour: sessions, idempotency, flow control, subscriptions.

The tentpole contract of ISSUE 5, tested over real loopback sockets:
authenticated sessions, changelog-sequence acks, idempotent
resubmission across reconnects, credit-based ingest, bounded
subscription buffers with visible shedding, admission gating, the ops
surface (stats/obs_snapshot/metrics), and graceful drain/shutdown.
"""

import asyncio
import time
import urllib.request

import pytest

from repro.serve import AsyncServeClient, ServeClient, ServeError
from repro.workloads.datagen import DataTuple
from repro.workloads.driver import RetryPolicy
from repro.workloads.querygen import QueryGenerator

SQL_SELECT = "SELECT * FROM A WHERE A.F0 > 10"


def _tuple(key=1, f0=50):
    return DataTuple(key=key, fields=(f0, 1, 2, 3, 4))


def _client(handle, client_id="t", **kwargs):
    return ServeClient("127.0.0.1", handle.port, client_id=client_id, **kwargs)


class TestControlPlane:
    def test_create_acks_carry_increasing_changelog_sequences(
        self, make_server
    ):
        handle = make_server()
        client = _client(handle)
        sequences = []
        query_ids = []
        for index in range(5):
            result = client.create_query(sql=SQL_SELECT, at_ms=index)
            assert result.status == "admit"
            sequences.append(result.sequence)
            query_ids.append(result.query_id)
        assert sequences == sorted(sequences)
        assert len(set(sequences)) == len(sequences)
        for index, query_id in enumerate(query_ids):
            result = client.delete_query(query_id, at_ms=10 + index)
            assert result.status == "ok"
            assert result.sequence > sequences[-1]
        assert client.stats()["active_queries"] == 0
        client.close()

    def test_create_from_query_document(self, make_server):
        handle = make_server()
        client = _client(handle)
        query = QueryGenerator(streams=("A", "B"), seed=5).selection_query()
        result = client.create_query(query=query, at_ms=0)
        assert result.status == "admit"
        assert result.query_id == query.query_id
        client.close()

    def test_bad_sql_is_an_error_not_a_disconnect(self, make_server):
        handle = make_server()
        client = _client(handle)
        with pytest.raises(ServeError) as excinfo:
            client.create_query(sql="SELECT nonsense garbage", at_ms=0)
        assert excinfo.value.code == "bad_sql"
        assert client.ping()  # session survived
        client.close()

    def test_delete_unknown_query_is_an_error(self, make_server):
        handle = make_server()
        client = _client(handle)
        with pytest.raises(ServeError) as excinfo:
            client.delete_query("no-such-query", at_ms=0)
        assert excinfo.value.code == "unknown_query"
        client.close()

    def test_admission_cap_rejects(self, make_server):
        handle = make_server(max_active_queries=1)
        client = _client(handle)
        first = client.create_query(sql=SQL_SELECT, at_ms=0)
        assert first.status == "admit"
        second = client.create_query(sql=SQL_SELECT, at_ms=1)
        assert second.status == "reject"
        assert client.stats()["active_queries"] == 1
        client.close()

    def test_shedding_defers_then_query_event_announces_live(
        self, make_server
    ):
        handle = make_server()
        client = _client(handle)
        handle.run(_set_shedding(handle.server, True))
        deferred = client.create_query(sql=SQL_SELECT, at_ms=0)
        assert deferred.status == "defer"
        assert deferred.sequence is None
        handle.run(_set_shedding(handle.server, False))
        # The ticker retries deferred admissions; the query_event frame
        # arrives on this connection with the changelog sequence.
        deadline = time.monotonic() + 10
        events = []
        while time.monotonic() < deadline and not events:
            client.take_results(deferred.query_id, wait_ms=200)
            events = client.take_events()
        assert events, "query_event never arrived"
        assert events[0]["event"] == "live"
        assert events[0]["query_id"] == deferred.query_id
        assert events[0]["sequence"] >= 1
        client.close()


async def _set_shedding(server, on):
    """Toggle admission shedding on the server's loop."""
    if on:
        server.admission.enter_shedding()
    else:
        server.admission.shedding = False


class TestIdempotency:
    def test_duplicate_seq_replays_cached_reply(self, make_server):
        handle = make_server()
        client = _client(handle)
        result = client.create_query(sql=SQL_SELECT, at_ms=0)
        # Re-send the exact same frame (same client seq) as a retry
        # after a lost ack would: the reply must be byte-identical and
        # no second query may appear.
        from repro.serve.client import _control_frame

        frame = _control_frame(
            "create_query", client._core.seq, sql=SQL_SELECT, at_ms=0
        )
        replayed = client._request(frame)
        assert replayed["query_id"] == result.query_id
        assert replayed["sequence"] == result.sequence
        assert client.stats()["active_queries"] == 1
        client.close()

    def test_resubmission_after_reconnect_is_exactly_once(self, make_server):
        handle = make_server()
        client = _client(
            handle,
            retry=RetryPolicy(max_attempts=3, backoff_base_ms=10,
                              jitter_ms=0, ack_timeout_ms=5_000),
        )
        created = client.create_query(sql=SQL_SELECT, at_ms=0)
        # Sever the transport behind the client's back; the next request
        # must reconnect (same client_id), resubmit, and succeed without
        # duplicating anything.
        client._sock.close()
        stats = client.stats()
        assert client.reconnects >= 1
        assert stats["active_queries"] == 1
        # The session (and its idempotency cache) survived server-side.
        deleted = client.delete_query(created.query_id, at_ms=5)
        assert deleted.status == "ok"
        client.close()

    def test_subscriptions_resubscribe_after_reconnect(self, make_server):
        handle = make_server()
        client = _client(
            handle,
            retry=RetryPolicy(max_attempts=3, backoff_base_ms=10,
                              jitter_ms=0, ack_timeout_ms=5_000),
        )
        created = client.create_query(sql=SQL_SELECT, at_ms=0)
        client.subscribe(created.query_id)
        client._sock.close()
        client.ping()  # forces the reconnect + resubscribe
        client.push("A", [(1, _tuple())])
        client.watermark(10)
        outputs, shed = client.take_results(created.query_id, wait_ms=5_000)
        assert [output.timestamp for output in outputs] == [1]
        assert shed == 0
        client.close()


class TestDataPlane:
    def test_push_roundtrip_and_credits(self, make_server):
        handle = make_server(ingest_credits=7)
        client = _client(handle)
        assert client._core.credits == 7
        accepted = client.push("A", [(i, _tuple(key=i)) for i in range(10)])
        assert accepted == 10
        assert client._core.credits == 7  # request/response returns it
        client.close()

    def test_push_unknown_stream_is_an_error(self, make_server):
        handle = make_server()
        client = _client(handle)
        with pytest.raises(ServeError) as excinfo:
            client.push("NOPE", [(1, _tuple())])
        assert excinfo.value.code == "unknown_stream"
        client.close()

    def test_per_stream_watermarks(self, make_server):
        handle = make_server()
        client = _client(handle)
        created = client.create_query(sql=SQL_SELECT, at_ms=0)
        client.push("A", [(1, _tuple())])
        client.watermark(5, stream="A")
        client.watermark(5, stream="B")
        results = client.fetch_results(created.query_id)
        assert len(results) == 1
        client.close()


class TestSubscriptions:
    def test_streamed_results_match_fetched(self, make_server):
        handle = make_server()
        client = _client(handle)
        created = client.create_query(sql=SQL_SELECT, at_ms=0)
        client.subscribe(created.query_id)
        client.push("A", [(i, _tuple(key=i)) for i in range(20)])
        client.watermark(30)
        streamed, shed = client.take_results(created.query_id, wait_ms=5_000)
        fetched = client.fetch_results(created.query_id)
        assert shed == 0
        assert sorted((o.timestamp, repr(o.value)) for o in streamed) == [
            (o.timestamp, repr(o.value)) for o in fetched
        ]
        client.close()

    def test_from_start_backlog_then_live_tail(self, make_server):
        handle = make_server()
        client = _client(handle)
        created = client.create_query(sql=SQL_SELECT, at_ms=0)
        client.push("A", [(1, _tuple())])
        client.watermark(5)
        client.drain()
        client.subscribe(created.query_id, from_start=True)
        client.push("A", [(6, _tuple())])
        client.watermark(10)
        deadline = time.monotonic() + 10
        got = []
        while time.monotonic() < deadline and len(got) < 2:
            outputs, _ = client.take_results(created.query_id, wait_ms=500)
            got.extend(outputs)
        assert sorted(o.timestamp for o in got) == [1, 6]
        client.close()

    def test_slow_consumer_sheds_oldest_and_reports(self, make_server):
        handle = make_server(subscriber_buffer=8)
        client = _client(handle)
        created = client.create_query(sql=SQL_SELECT, at_ms=0)
        # Subscribe but do not read; overflow the 8-slot buffer
        # server-side before the flusher can ship anything by staying
        # inside one gate-held batch.
        handle.run(_subscribe_direct(handle.server, client, created.query_id))
        handle.run(
            _push_direct(handle.server, "A",
                         [(i, _tuple(key=i)) for i in range(50)], 60)
        )
        outputs, shed = client.take_results(created.query_id, wait_ms=10_000)
        total_seen = len(outputs)
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline and total_seen + shed < 50:
            more, more_shed = client.take_results(
                created.query_id, wait_ms=500
            )
            total_seen += len(more)
            shed += more_shed
        assert shed > 0, "expected visible shedding"
        assert total_seen + shed == 50
        assert client.stats()["results_shed"] == shed
        client.close()

    def test_unsubscribe_stops_delivery(self, make_server):
        handle = make_server()
        client = _client(handle)
        created = client.create_query(sql=SQL_SELECT, at_ms=0)
        client.subscribe(created.query_id)
        assert client.unsubscribe(created.query_id).status == "ok"
        assert client.unsubscribe(created.query_id).status == "not_subscribed"
        client.push("A", [(1, _tuple())])
        client.watermark(5)
        outputs, _ = client.take_results(created.query_id, wait_ms=300)
        assert outputs == []
        client.close()


async def _subscribe_direct(server, client, query_id):
    """Register a subscription for the client's session, loop-side."""
    session = server.sessions.get(client._core.client_id)
    server.hub.subscribe(session, query_id, from_start=True)
    client._core.subscriptions[query_id] = True


async def _push_direct(server, stream, events, watermark):
    """Push + watermark in one gate hold so the flusher can't drain."""
    with server.gate.locked():
        server.engine.push_many(stream, events)
        server.engine.watermark(watermark)
        server._observe_time(watermark)
        if not server.hub.tap_mode:
            server.hub.poll()


class TestOpsSurface:
    def test_stats_frame(self, make_server):
        handle = make_server()
        client = _client(handle)
        client.create_query(sql=SQL_SELECT, at_ms=0)
        stats = client.stats()
        assert stats["backend"] == "inline"
        assert stats["active_queries"] == 1
        assert stats["sessions_connected"] == 1
        client.close()

    def test_obs_snapshot_over_the_wire(self, make_server):
        handle = make_server(observe=True)
        client = _client(handle)
        created = client.create_query(sql=SQL_SELECT, at_ms=0)
        client.push("A", [(1, _tuple())])
        client.watermark(5)
        snapshot = client.obs_snapshot()
        registry = snapshot["snapshot"]["registry"]
        assert any(
            entry.get("name") == "serve_frames_in"
            for entry in registry.values()
        )
        assert "trace" in snapshot["snapshot"]
        assert isinstance(snapshot["events"], list)
        assert client.fetch_results(created.query_id)
        client.close()

    def test_obs_snapshot_without_observe_still_answers(self, make_server):
        handle = make_server(observe=False)
        client = _client(handle)
        snapshot = client.obs_snapshot()
        assert "registry" in snapshot["snapshot"]
        client.close()

    def test_http_metrics_endpoint(self, make_server):
        handle = make_server(metrics_port=0)
        client = _client(handle)
        client.create_query(sql=SQL_SELECT, at_ms=0)
        port = handle.server.metrics_port
        body = urllib.request.urlopen(
            f"http://127.0.0.1:{port}/metrics", timeout=10
        ).read().decode()
        assert "serve_frames_in_total" in body
        assert "serve_active_queries" in body
        health = urllib.request.urlopen(
            f"http://127.0.0.1:{port}/healthz", timeout=10
        ).read().decode()
        assert health == "ok\n"
        with pytest.raises(urllib.error.HTTPError):
            urllib.request.urlopen(
                f"http://127.0.0.1:{port}/nope", timeout=10
            )
        client.close()

    def test_drain_checkpoints_and_shutdown_is_clean(self, make_server):
        handle = make_server()
        client = _client(handle)
        client.create_query(sql=SQL_SELECT, at_ms=0)
        client.push("A", [(1, _tuple())])
        drained = client.drain(checkpoint=True)
        assert drained.raw["checkpoint"] is not None
        result = client.shutdown()
        assert result.status == "ok"
        handle._thread.join(15)
        assert not handle._thread.is_alive()
        client.close()


class TestAsyncClient:
    def test_async_end_to_end(self, make_server):
        handle = make_server()

        async def scenario():
            async with AsyncServeClient(
                "127.0.0.1", handle.port, client_id="async"
            ) as client:
                created = await client.create_query(sql=SQL_SELECT, at_ms=0)
                assert created.status == "admit"
                assert created.sequence is not None
                await client.subscribe(created.query_id)
                await client.push(
                    "A", [(i, _tuple(key=i)) for i in range(3)]
                )
                await client.watermark(10)
                got = []
                for _ in range(3):
                    output = await client.next_result(
                        created.query_id, timeout_s=10
                    )
                    assert output is not None
                    got.append(output.timestamp)
                assert sorted(got) == [0, 1, 2]
                fetched = await client.fetch_results(created.query_id)
                assert len(fetched) == 3
                stats = await client.stats()
                assert stats["active_queries"] == 1
                assert await client.ping()
                deleted = await client.delete_query(
                    created.query_id, at_ms=20
                )
                assert deleted.status == "ok"

        asyncio.run(scenario())

    def test_async_reconnect_resubmits(self, make_server):
        handle = make_server()

        async def scenario():
            client = AsyncServeClient(
                "127.0.0.1", handle.port, client_id="async-r",
                retry=RetryPolicy(max_attempts=3, backoff_base_ms=10,
                                  jitter_ms=0, ack_timeout_ms=5_000),
            )
            await client.connect()
            created = await client.create_query(sql=SQL_SELECT, at_ms=0)
            client._writer.close()  # sever the transport
            stats = await client.stats()
            assert stats["active_queries"] == 1
            assert client.reconnects >= 1
            await client.delete_query(created.query_id, at_ms=5)
            await client.close()

        asyncio.run(scenario())
