"""A SIGKILLed worker under a live server must be invisible to clients.

The serve-smoke scenario: drive SC1 through the client SDK against the
process backend, kill a shard worker mid-run with the ``chaos`` frame,
and assert the session survives, results stay byte-identical to a
fault-free in-process run, and drain/shutdown still exit cleanly.
"""

from repro.serve import ServeClient
from repro.workloads.querygen import QueryGenerator
from repro.workloads.scenarios import sc1_schedule

from tests.serve.test_equivalence import (
    EVENTS,
    STEP_MS,
    STREAMS,
    _canonical,
    _steps,
    run_in_process,
)

SCHEDULE = sc1_schedule(
    QueryGenerator(streams=STREAMS, seed=53), 1, 3, kind="agg"
)
KILL_AT_STEP = len(EVENTS) // 2


class TestServeChaos:
    def test_worker_kill_mid_run_recovers_and_matches(self, make_server):
        reference = run_in_process(SCHEDULE)
        assert reference and any(reference.values())

        handle = make_server(backend="process", workers=2)
        client = ServeClient("127.0.0.1", handle.port, client_id="chaos")
        requests = _steps(SCHEDULE)
        query_ids = []
        for index, (step_start, batches) in enumerate(EVENTS):
            if index == KILL_AT_STEP:
                assert client.chaos_kill_worker(0).status == "ok"
            for request in requests.get(step_start, ()):
                if request.kind == "create":
                    result = client.create_query(
                        query=request.query, at_ms=request.at_ms
                    )
                    assert result.status == "admit"
                    query_ids.append(request.query.query_id)
                else:
                    assert (
                        client.delete_query(
                            request.query_id, at_ms=request.at_ms
                        ).status
                        == "ok"
                    )
            for stream, events in batches.items():
                assert client.push(stream, events) == len(events)
            client.watermark(step_start + STEP_MS)

        drained = client.drain(checkpoint=True)
        assert drained.status == "ok"
        assert drained.raw["checkpoint"] is not None

        stats = client.stats()
        assert stats["recoveries"] >= 1, "the kill must have been supervised"
        assert stats["sessions_connected"] == 1

        fetched = _canonical(
            {
                query_id: client.fetch_results(query_id)
                for query_id in query_ids
            }
        )
        assert fetched == reference

        assert client.shutdown().status == "ok"
        handle._thread.join(20)
        assert not handle._thread.is_alive()
        client.close()
