"""Live resize and kill-during-migration over the wire (ISSUE 6).

The serve layer exposes the elastic pool: a ``resize`` frame begins a
live migration whose per-shard restores the server's ticker drives
while clients keep pushing.  Results must stay byte-identical to the
in-process oracle through 2→4 and 4→2 resizes, through a SIGKILL that
lands while the migration is still in flight, and through a kill raced
against a checkpointing drain — with the server resyncing changelog
sequences after recovery and the idempotency cache replaying acks for
re-sent control frames verbatim.
"""

from repro.serve import ServeClient
from repro.serve.client import _control_frame
from repro.workloads.querygen import QueryGenerator
from repro.workloads.scenarios import sc1_schedule

from tests.serve.test_equivalence import (
    EVENTS,
    STEP_MS,
    STREAMS,
    _canonical,
    _steps,
    run_in_process,
)

RESIZE_SCHEDULE = sc1_schedule(
    QueryGenerator(streams=STREAMS, seed=59), 1, 3, kind="agg"
)
CHAOS_SCHEDULE = sc1_schedule(
    QueryGenerator(streams=STREAMS, seed=67), 1, 3, kind="agg"
)
UP_AT = len(EVENTS) // 3
DOWN_AT = (2 * len(EVENTS)) // 3


def _drive(client, schedule, actions=None):
    """Run one scheduled load through the SDK; returns the query ids.

    ``actions`` maps step index → callable fired before that step's
    control/data traffic (resize, chaos kill, ...).
    """
    requests = _steps(schedule)
    query_ids = []
    for index, (step_start, batches) in enumerate(EVENTS):
        if actions and index in actions:
            actions[index]()
        for request in requests.get(step_start, ()):
            if request.kind == "create":
                result = client.create_query(
                    query=request.query, at_ms=request.at_ms
                )
                assert result.status == "admit"
                query_ids.append(request.query.query_id)
            else:
                assert (
                    client.delete_query(
                        request.query_id, at_ms=request.at_ms
                    ).status
                    == "ok"
                )
        for stream, events in batches.items():
            assert client.push(stream, events) == len(events)
        client.watermark(step_start + STEP_MS)
    return query_ids


class TestServeResize:
    def test_resize_up_and_down_over_wire_matches_oracle(self, make_server):
        reference = run_in_process(RESIZE_SCHEDULE)
        assert reference and any(reference.values())

        handle = make_server(backend="process", workers=2)
        client = ServeClient("127.0.0.1", handle.port, client_id="resize")
        assert client.server_info["workers"] == 2

        def resize_to(workers):
            def action():
                result = client.resize(workers)
                assert result.status == "ok"
                assert result.raw["workers"] == workers

            return action

        query_ids = _drive(
            client,
            RESIZE_SCHEDULE,
            actions={UP_AT: resize_to(4), DOWN_AT: resize_to(2)},
        )
        assert client.drain(checkpoint=True).status == "ok"

        stats = client.stats()
        assert stats["workers"] == 2
        assert stats["alive_workers"] == 2
        assert stats["migrations"] >= 2
        assert stats["migration_active"] is False
        assert stats["sessions_connected"] == 1

        fetched = _canonical(
            {qid: client.fetch_results(qid) for qid in query_ids}
        )
        assert fetched == reference
        assert client.shutdown().status == "ok"
        client.close()

    def test_resize_rejected_on_inline_backend(self, make_server):
        handle = make_server(backend="inline")
        client = ServeClient("127.0.0.1", handle.port, client_id="noresize")
        try:
            client.resize(4)
        except Exception as error:
            assert "unsupported" in str(error)
        else:
            raise AssertionError("inline resize must be rejected")
        finally:
            client.close()


class TestServeKillDuringMigration:
    def test_kill_mid_migration_and_during_drain(self, make_server):
        reference = run_in_process(CHAOS_SCHEDULE)
        assert reference and any(reference.values())

        handle = make_server(backend="process", workers=2)
        client = ServeClient("127.0.0.1", handle.port, client_id="chaosmig")

        def resize_then_kill():
            # Begin the migration and kill a worker before the ticker
            # can finish restoring shards: recovery must fall back to
            # the last checkpoint + input-log replay and re-repartition.
            result = client.resize(4)
            assert result.status == "ok"
            assert client.chaos_kill_worker(0).status == "ok"

        query_ids = _drive(
            client, CHAOS_SCHEDULE, actions={len(EVENTS) // 2: resize_then_kill}
        )

        # Kill again while a checkpointing drain is in flight from this
        # session's perspective: the kill lands first, the drain's gate
        # call recovers, and the ack still carries a checkpoint id.
        assert client.chaos_kill_worker(0).status == "ok"
        drain_frame = _control_frame(
            "drain", client._core.next_seq(), checkpoint=True
        )
        first_ack = client._request(drain_frame)
        assert first_ack["status"] == "ok"
        assert first_ack["checkpoint"] is not None

        # Idempotent acks: re-sending the identical frame (same client
        # seq) must replay the cached reply, not drain twice.
        replayed = client._request(drain_frame)
        assert replayed == first_ack

        stats = client.stats()
        assert stats["recoveries"] >= 1, "kills must have been supervised"
        assert stats["migration_active"] is False
        assert stats["alive_workers"] == stats["workers"]
        assert stats["sessions_connected"] == 1
        # The recovery resynced the server's changelog cursor to the
        # replayed session's sequence.
        assert stats["changelog_sequence"] >= len(query_ids)

        fetched = _canonical(
            {qid: client.fetch_results(qid) for qid in query_ids}
        )
        assert fetched == reference
        assert client.shutdown().status == "ok"
        handle._thread.join(20)
        assert not handle._thread.is_alive()
        client.close()
