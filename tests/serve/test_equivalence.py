"""SC1/SC2 results over the wire must be byte-identical to in-process.

The acceptance bar of ISSUE 5: drive the paper's scenario schedules
through the client SDK against a live server — inline and process
backends — and compare the canonical per-query results byte-for-byte
against an in-process engine run with the same flush discipline.  The
wire (serde roundtrips, framing, subscription fan-out) must be a pure
re-encoding of the same computation.
"""

import pytest

from repro.core.engine import AStreamEngine, EngineConfig
from repro.serve import ServeClient
from repro.workloads.datagen import DataGenerator
from repro.workloads.querygen import QueryGenerator
from repro.workloads.scenarios import sc1_schedule, sc2_schedule

STREAMS = ("A", "B")
STEP_MS = 250
DURATION_MS = 6_000
TUPLES_PER_STEP = 12

# Built once: query ids carry a process-global counter, so the wire and
# in-process runs must share one schedule object.
SC1 = sc1_schedule(QueryGenerator(streams=STREAMS, seed=41), 1, 3, kind="join")
SC2 = sc2_schedule(QueryGenerator(streams=STREAMS, seed=41), 2, 3, 2, kind="agg")


def _events():
    """Deterministic per-stream, per-step micro-batches."""
    generators = {stream: DataGenerator(seed=9) for stream in STREAMS}
    plan = []
    for step_start in range(0, DURATION_MS, STEP_MS):
        batches = {}
        for stream in STREAMS:
            batches[stream] = [
                (
                    step_start + (i * STEP_MS) // TUPLES_PER_STEP,
                    generators[stream].next_tuple(),
                )
                for i in range(TUPLES_PER_STEP)
            ]
        plan.append((step_start, batches))
    return plan


EVENTS = _events()


def _steps(schedule):
    """Requests grouped by the step in which they fall due."""
    by_step = {}
    for request in schedule.sorted():
        step = (request.at_ms // STEP_MS) * STEP_MS
        by_step.setdefault(step, []).append(request)
    return by_step


def _canonical(fetch):
    """query_id → [(timestamp, repr(value))] in canonical order."""
    return {
        query_id: [
            (output.timestamp, repr(output.value)) for output in outputs
        ]
        for query_id, outputs in fetch.items()
    }


def run_in_process(schedule):
    """The oracle: same schedule, direct engine calls, flush-on-submit."""
    engine = AStreamEngine(EngineConfig(streams=STREAMS))
    requests = _steps(schedule)
    query_ids = []
    for step_start, batches in EVENTS:
        for request in requests.get(step_start, ()):
            if request.kind == "create":
                engine.submit(request.query, request.at_ms)
                query_ids.append(request.query.query_id)
            else:
                engine.stop(request.query_id, request.at_ms)
            engine.flush_session(request.at_ms)
        for stream, events in batches.items():
            engine.push_many(stream, events)
        engine.watermark(step_start + STEP_MS)
    engine.drain()
    fetched = {
        query_id: engine.canonical_results(query_id)
        for query_id in query_ids
    }
    engine.shutdown()
    return _canonical(fetched)


def run_over_wire(
    schedule, make_server, backend, workers=2, subscribe=False, codec="binary"
):
    """The same schedule through the client SDK against a live server."""
    handle = make_server(backend=backend, workers=workers)
    client = ServeClient(
        "127.0.0.1", handle.port, client_id="equiv", codec=codec
    )
    assert client.codec == codec
    requests = _steps(schedule)
    query_ids = []
    streamed = {}
    for step_start, batches in EVENTS:
        for request in requests.get(step_start, ()):
            if request.kind == "create":
                result = client.create_query(
                    query=request.query, at_ms=request.at_ms
                )
                assert result.status == "admit"
                assert result.sequence is not None
                query_ids.append(request.query.query_id)
                if subscribe:
                    client.subscribe(request.query.query_id)
            else:
                result = client.delete_query(
                    request.query_id, at_ms=request.at_ms
                )
                assert result.status == "ok"
        for stream, events in batches.items():
            assert client.push(stream, events) == len(events)
        client.watermark(step_start + STEP_MS)
    client.drain()
    fetched = {
        query_id: client.fetch_results(query_id) for query_id in query_ids
    }
    if subscribe:
        import time

        deadline = time.monotonic() + 30
        expected = {qid: len(outputs) for qid, outputs in fetched.items()}
        collected = {qid: [] for qid in query_ids}
        while time.monotonic() < deadline:
            for query_id in query_ids:
                outputs, shed = client.take_results(query_id, wait_ms=100)
                assert shed == 0
                collected[query_id].extend(outputs)
            if all(
                len(collected[qid]) >= expected[qid] for qid in query_ids
            ):
                break
        streamed = {
            qid: sorted(
                (output.timestamp, repr(output.value))
                for output in outputs
            )
            for qid, outputs in collected.items()
        }
    client.close()
    return _canonical(fetched), streamed


class TestWireEquivalence:
    @pytest.mark.parametrize("codec", ["json", "binary"])
    @pytest.mark.parametrize(
        "schedule", [SC1, SC2], ids=["sc1-join", "sc2-agg"]
    )
    def test_inline_backend_byte_equal(self, make_server, schedule, codec):
        reference = run_in_process(schedule)
        assert reference and any(reference.values())
        over_wire, _ = run_over_wire(
            schedule, make_server, backend="inline", codec=codec
        )
        assert over_wire == reference

    @pytest.mark.parametrize("codec", ["json", "binary"])
    @pytest.mark.parametrize(
        "schedule", [SC1, SC2], ids=["sc1-join", "sc2-agg"]
    )
    def test_process_backend_byte_equal(self, make_server, schedule, codec):
        reference = run_in_process(schedule)
        over_wire, _ = run_over_wire(
            schedule, make_server, backend="process", workers=2, codec=codec
        )
        assert over_wire == reference

    def test_streamed_results_match_fetched_multiset(self, make_server):
        reference = run_in_process(SC1)
        fetched, streamed = run_over_wire(
            SC1, make_server, backend="inline", subscribe=True
        )
        assert fetched == reference
        for query_id, outputs in fetched.items():
            assert streamed[query_id] == sorted(outputs), query_id
