"""Supervisor: detection, recovery, MTTR, checkpoints, load shedding."""

from repro.baseline.engine import QueryAtATimeEngine
from repro.core.admission import AdmissionController, AdmissionDecision
from repro.core.qos import QoSMonitor, QoSThresholds
from repro.core.query import (
    AggregationKind,
    AggregationQuery,
    AggregationSpec,
    TruePredicate,
    WindowSpec,
)
from repro.faults import (
    FaultEvent,
    FaultInjector,
    FaultKind,
    FaultPlan,
    Supervisor,
    SupervisorPolicy,
)
from repro.minispe.cluster import ClusterSpec, SimulatedCluster
from tests.conftest import field_tuple, go_live, make_engine


def _agg_query(query_id="sup-agg", stream="A"):
    return AggregationQuery(
        stream=stream,
        predicate=TruePredicate(),
        window_spec=WindowSpec.tumbling(1_000),
        aggregation=AggregationSpec(kind=AggregationKind.COUNT),
        query_id=query_id,
    )


def _supervised_engine(plan, **policy_kwargs):
    cluster = SimulatedCluster(ClusterSpec(nodes=4))
    engine = make_engine(streams=("A",), cluster=cluster, log_inputs=True)
    go_live(engine, [_agg_query()])
    injector = FaultInjector(plan, cluster=cluster)
    injector.attach(engine.runtime)
    supervisor = Supervisor(
        engine,
        injector=injector,
        policy=SupervisorPolicy(**policy_kwargs),
    )
    return engine, injector, supervisor


class TestRecovery:
    def test_node_crash_recovers_with_positive_mttr(self):
        plan = FaultPlan().add(
            FaultEvent(at_ms=1_000, kind=FaultKind.NODE_CRASH, node=1)
        )
        engine, injector, supervisor = _supervised_engine(plan)
        assert supervisor.heartbeat(500) is None
        event = supervisor.heartbeat(1_000)
        assert event is not None
        assert event.mttr_ms > 0
        assert event.recovered_at_ms > event.detected_at_ms
        assert supervisor.busy_until_ms == event.recovered_at_ms
        assert injector.unhandled_failures() == []
        # The injector was re-attached to the fresh runtime.
        assert injector.attached
        assert engine.runtime._channel_hook is not None

    def test_recovery_restores_correct_outputs(self):
        plan = FaultPlan().add(
            FaultEvent(at_ms=0, kind=FaultKind.CHANNEL_DROP,
                       edge="select:A->agg:A", count=3)
        )
        engine, injector, supervisor = _supervised_engine(plan)
        supervisor.heartbeat(0)  # arms the drop
        for ts in range(0, 1_000, 100):
            engine.push("A", ts, field_tuple(key=1, f0=ts))
        # Three tuples were silently dropped; the supervisor notices at
        # the next heartbeat and replays everything fault-free.
        event = supervisor.heartbeat(1_000)
        assert event is not None
        # 10 records + the query-creation changelog marker.
        assert event.replayed_elements == 11
        engine.watermark(2_000)
        results = engine.results("sup-agg")
        assert len(results) == 1
        assert results[0].value.value == 10  # nothing missing

    def test_recovery_uses_latest_checkpoint(self):
        plan = FaultPlan().add(
            FaultEvent(at_ms=5_000, kind=FaultKind.NODE_CRASH, node=0)
        )
        engine, injector, supervisor = _supervised_engine(
            plan, checkpoint_interval_ms=2_000
        )
        for step in range(5):
            now = step * 1_000
            supervisor.heartbeat(now)
            engine.push("A", now, field_tuple(key=1, f0=step))
        event = supervisor.heartbeat(5_000)
        assert supervisor.checkpoints_taken >= 2
        assert event.checkpoint_id is not None
        # Replay covers only the post-checkpoint suffix.
        assert event.replayed_elements < 5

    def test_notify_failure_external_cause(self):
        engine, injector, supervisor = _supervised_engine(FaultPlan())
        event = supervisor.notify_failure(3_000, RuntimeError("boom"))
        assert "boom" in event.cause
        assert event.mttr_ms > 0
        assert supervisor.recovery_count == 1

    def test_mean_mttr_over_multiple_recoveries(self):
        plan = FaultPlan()
        plan.add(FaultEvent(at_ms=1_000, kind=FaultKind.NODE_CRASH, node=0))
        plan.add(FaultEvent(at_ms=2_000, kind=FaultKind.NODE_RESTORE, node=0))
        plan.add(FaultEvent(at_ms=3_000, kind=FaultKind.NODE_CRASH, node=1))
        engine, injector, supervisor = _supervised_engine(plan)
        for now in range(0, 4_000, 500):
            supervisor.heartbeat(now)
        assert supervisor.recovery_count == 2
        assert supervisor.mean_mttr_ms > 0


class TestCheckpointing:
    def test_periodic_checkpoints_and_compaction(self):
        engine, injector, supervisor = _supervised_engine(
            FaultPlan(), checkpoint_interval_ms=1_000
        )
        for step in range(10):
            now = step * 500
            engine.push("A", now, field_tuple(key=1))
            supervisor.heartbeat(now)
        assert supervisor.checkpoints_taken >= 4
        # Compaction keeps the input log bounded near one interval's data.
        assert engine.input_log_size <= 3

    def test_checkpointing_disabled_for_baseline(self):
        cluster = SimulatedCluster(ClusterSpec(nodes=4))
        engine = QueryAtATimeEngine(cluster=cluster, parallelism=1)
        engine.submit(_agg_query(), now_ms=0)
        supervisor = Supervisor(engine, cluster=cluster)
        supervisor.heartbeat(10_000)
        assert supervisor.checkpoints_taken == 0

    def test_zero_interval_disables_checkpoints(self):
        engine, injector, supervisor = _supervised_engine(
            FaultPlan(), checkpoint_interval_ms=0
        )
        supervisor.heartbeat(60_000)
        assert supervisor.checkpoints_taken == 0


class TestBaselineRecovery:
    def test_baseline_full_restart(self):
        cluster = SimulatedCluster(ClusterSpec(nodes=4))
        engine = QueryAtATimeEngine(cluster=cluster, parallelism=1)
        engine.submit(_agg_query(), now_ms=0)
        plan = FaultPlan().add(
            FaultEvent(at_ms=1_000, kind=FaultKind.NODE_CRASH, node=2)
        )
        injector = FaultInjector(plan, cluster=cluster)
        supervisor = Supervisor(engine, injector=injector, cluster=cluster)
        event = supervisor.heartbeat(1_000)
        assert event is not None
        assert event.checkpoint_id is None  # no checkpoint/replay path
        assert event.replayed_elements == 0
        assert event.mttr_ms > 0
        assert engine.active_query_count == 1


class TestLoadSheddingEscalation:
    def _setup(self):
        plan = FaultPlan().add(
            FaultEvent(at_ms=1_000, kind=FaultKind.NODE_CRASH, node=0)
        )
        cluster = SimulatedCluster(ClusterSpec(nodes=4))
        engine = make_engine(streams=("A",), cluster=cluster, log_inputs=True)
        go_live(engine, [_agg_query()])
        qos = QoSMonitor(
            thresholds=QoSThresholds(max_deployment_latency_ms=0.001)
        )
        admission = AdmissionController(engine, qos)
        injector = FaultInjector(plan, cluster=cluster)
        injector.attach(engine.runtime)
        supervisor = Supervisor(
            engine,
            injector=injector,
            admission=admission,
            qos=qos,
            policy=SupervisorPolicy(escalate_after_violations=3),
        )
        return engine, qos, admission, supervisor

    def test_persistent_violations_trigger_shedding(self):
        engine, qos, admission, supervisor = self._setup()
        supervisor.heartbeat(1_000)  # crash + recovery
        assert not admission.shedding
        for now in (2_000, 3_000, 4_000):  # three violating heartbeats
            supervisor.heartbeat(now)
        assert admission.shedding
        assert supervisor.shedding_escalations == 1
        decision = admission.submit(_agg_query("shed-q"), now_ms=5_000)
        assert decision is AdmissionDecision.DEFER

    def test_no_escalation_without_a_recovery(self):
        engine, qos, admission, supervisor = self._setup()
        for now in (100, 200, 300, 400):  # violations but no recovery yet
            supervisor.heartbeat(now)
        assert not admission.shedding

    def test_shedding_clears_when_qos_recovers(self):
        engine, qos, admission, supervisor = self._setup()
        for now in (1_000, 2_000, 3_000, 4_000):
            supervisor.heartbeat(now)
        assert admission.shedding
        qos.thresholds = QoSThresholds()  # boundaries relaxed: QoS holds
        supervisor.heartbeat(5_000)
        assert not admission.shedding


class TestDeterminism:
    def test_same_plan_same_recovery_log(self):
        def run():
            plan = FaultPlan()
            plan.add(FaultEvent(at_ms=1_000, kind=FaultKind.NODE_CRASH, node=0))
            plan.add(FaultEvent(at_ms=2_500, kind=FaultKind.CHANNEL_DROP,
                                edge="select:A->agg:A", count=2))
            engine, injector, supervisor = _supervised_engine(plan)
            for step in range(8):
                now = step * 500
                supervisor.heartbeat(now)
                engine.push("A", now, field_tuple(key=1, f0=step))
            engine.watermark(8_000)
            return (
                supervisor.log_lines(),
                injector.log_lines(),
                [(r.timestamp, repr(r.value)) for r in engine.results("sup-agg")],
            )

        assert run() == run()
