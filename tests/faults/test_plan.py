"""FaultPlan / FaultEvent: validation and seeded generation."""

import pytest

from repro.faults import FaultEvent, FaultKind, FaultPlan


class TestFaultEventValidation:
    def test_node_crash_requires_node(self):
        with pytest.raises(ValueError, match="node index"):
            FaultEvent(at_ms=0, kind=FaultKind.NODE_CRASH)

    def test_operator_exception_requires_vertex(self):
        with pytest.raises(ValueError, match="vertex"):
            FaultEvent(at_ms=0, kind=FaultKind.OPERATOR_EXCEPTION)

    def test_channel_fault_requires_edge_syntax(self):
        with pytest.raises(ValueError, match="src->dst"):
            FaultEvent(at_ms=0, kind=FaultKind.CHANNEL_DROP, edge="nonsense")

    def test_delay_requires_positive_delay(self):
        with pytest.raises(ValueError, match="delay_ms"):
            FaultEvent(
                at_ms=0, kind=FaultKind.CHANNEL_DELAY, edge="a->b", delay_ms=0
            )

    def test_slow_node_requires_factor_and_duration(self):
        with pytest.raises(ValueError, match="factor"):
            FaultEvent(at_ms=0, kind=FaultKind.SLOW_NODE, node=0, factor=1.0,
                       duration_ms=100)
        with pytest.raises(ValueError, match="duration_ms"):
            FaultEvent(at_ms=0, kind=FaultKind.SLOW_NODE, node=0, factor=2.0)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError, match="at_ms"):
            FaultEvent(at_ms=-1, kind=FaultKind.NODE_CRASH, node=0)

    def test_valid_events_construct(self):
        FaultEvent(at_ms=5, kind=FaultKind.NODE_CRASH, node=2)
        FaultEvent(at_ms=5, kind=FaultKind.CHANNEL_DROP, edge="a->b", count=3)
        FaultEvent(
            at_ms=5, kind=FaultKind.OPERATOR_EXCEPTION, vertex="agg:A",
            after_records=10, repeat=2,
        )


class TestFaultPlan:
    def test_sorted_orders_by_time(self):
        plan = FaultPlan()
        plan.add(FaultEvent(at_ms=500, kind=FaultKind.NODE_CRASH, node=1))
        plan.add(FaultEvent(at_ms=100, kind=FaultKind.NODE_CRASH, node=0))
        assert [event.at_ms for event in plan.sorted()] == [100, 500]

    def test_shifted_moves_every_event(self):
        plan = FaultPlan().add(
            FaultEvent(at_ms=100, kind=FaultKind.NODE_CRASH, node=0)
        )
        shifted = plan.shifted(1_000)
        assert shifted.events[0].at_ms == 1_100
        assert plan.events[0].at_ms == 100  # original untouched

    def test_count_by_kind(self):
        plan = FaultPlan()
        plan.add(FaultEvent(at_ms=0, kind=FaultKind.NODE_CRASH, node=0))
        plan.add(FaultEvent(at_ms=1, kind=FaultKind.NODE_CRASH, node=1))
        plan.add(FaultEvent(at_ms=2, kind=FaultKind.NODE_RESTORE, node=0))
        assert plan.count(FaultKind.NODE_CRASH) == 2
        assert plan.count(FaultKind.SLOW_NODE) == 0


class TestRandomPlans:
    def test_same_seed_same_plan(self):
        kwargs = dict(
            duration_ms=10_000, nodes=4, edges=("a->b", "b->c"),
            vertices=("agg:A",), crashes=3, channel_faults=2,
            operator_faults=1, slow_nodes=1,
        )
        assert FaultPlan.random(seed=7, **kwargs).events == FaultPlan.random(
            seed=7, **kwargs
        ).events

    def test_different_seed_different_plan(self):
        kwargs = dict(duration_ms=10_000, nodes=4, crashes=3, channel_faults=0)
        assert (
            FaultPlan.random(seed=1, **kwargs).events
            != FaultPlan.random(seed=2, **kwargs).events
        )

    def test_every_crash_gets_a_restore(self):
        plan = FaultPlan.random(seed=3, duration_ms=20_000, nodes=4, crashes=5,
                                channel_faults=0)
        assert plan.count(FaultKind.NODE_CRASH) == 5
        assert plan.count(FaultKind.NODE_RESTORE) == 5

    def test_channel_faults_need_edges(self):
        with pytest.raises(ValueError, match="edges"):
            FaultPlan.random(seed=0, duration_ms=1_000, nodes=2, crashes=0,
                             channel_faults=1)

    def test_operator_faults_need_vertices(self):
        with pytest.raises(ValueError, match="vertices"):
            FaultPlan.random(seed=0, duration_ms=1_000, nodes=2, crashes=0,
                             channel_faults=0, operator_faults=1)
