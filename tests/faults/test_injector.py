"""FaultInjector: channel faults, operator faults, node faults, timing."""

import pytest

from repro.faults import (
    FaultEvent,
    FaultInjector,
    FaultKind,
    FaultPlan,
    InjectedFaultError,
)
from repro.minispe.cluster import ClusterSpec, SimulatedCluster
from repro.minispe.graph import JobGraph, Partitioning
from repro.minispe.operators import FilterOperator
from repro.minispe.record import Record
from repro.minispe.runtime import JobRuntime
from repro.minispe.sinks import CallbackSink


def _pipeline(out):
    """src -> op -> sink, collecting record values into ``out``."""
    graph = JobGraph("fault-test")
    graph.add_source("src")
    graph.add_operator("op", lambda: FilterOperator(lambda value: True))
    graph.add_operator(
        "sink", lambda: CallbackSink(lambda record: out.append(record.value))
    )
    graph.connect("src", "op", Partitioning.REBALANCE)
    graph.connect("op", "sink", Partitioning.REBALANCE)
    return JobRuntime(graph)


def _attach(plan, runtime, cluster=None):
    injector = FaultInjector(plan, cluster=cluster)
    injector.attach(runtime)
    return injector


class TestChannelFaults:
    def test_drop_swallows_the_next_n_records(self):
        out = []
        runtime = _pipeline(out)
        plan = FaultPlan().add(
            FaultEvent(at_ms=0, kind=FaultKind.CHANNEL_DROP,
                       edge="op->sink", count=2)
        )
        injector = _attach(plan, runtime)
        injector.advance(0)
        for value in range(4):
            runtime.push("src", Record(timestamp=value, value=value))
        assert out == [2, 3]
        (record,) = injector.unhandled_failures()
        assert record.strikes == 2
        assert record.requires_recovery

    def test_duplicate_delivers_twice(self):
        out = []
        runtime = _pipeline(out)
        plan = FaultPlan().add(
            FaultEvent(at_ms=0, kind=FaultKind.CHANNEL_DUPLICATE,
                       edge="op->sink", count=1)
        )
        injector = _attach(plan, runtime)
        injector.advance(0)
        runtime.push("src", Record(timestamp=0, value="x"))
        runtime.push("src", Record(timestamp=1, value="y"))
        assert out == ["x", "x", "y"]
        assert injector.unhandled_failures()

    def test_delay_withholds_until_due(self):
        out = []
        runtime = _pipeline(out)
        plan = FaultPlan().add(
            FaultEvent(at_ms=0, kind=FaultKind.CHANNEL_DELAY,
                       edge="op->sink", count=1, delay_ms=500)
        )
        injector = _attach(plan, runtime)
        injector.advance(0)
        runtime.push("src", Record(timestamp=0, value="late"))
        assert out == []
        assert injector.delayed_count == 1
        assert injector.drain_due_redeliveries(400) == 0
        assert injector.drain_due_redeliveries(500) == 1
        assert out == ["late"]
        # Delays do not corrupt state: no recovery required.
        assert injector.unhandled_failures() == []

    def test_unarmed_fault_does_not_strike_before_its_time(self):
        out = []
        runtime = _pipeline(out)
        plan = FaultPlan().add(
            FaultEvent(at_ms=1_000, kind=FaultKind.CHANNEL_DROP,
                       edge="op->sink")
        )
        injector = _attach(plan, runtime)
        injector.advance(500)  # before at_ms: not armed yet
        runtime.push("src", Record(timestamp=0, value=1))
        assert out == [1]
        injector.advance(1_000)
        runtime.push("src", Record(timestamp=0, value=2))
        assert out == [1]

    def test_detach_discards_withheld_records(self):
        out = []
        runtime = _pipeline(out)
        plan = FaultPlan().add(
            FaultEvent(at_ms=0, kind=FaultKind.CHANNEL_DELAY,
                       edge="op->sink", count=1, delay_ms=500)
        )
        injector = _attach(plan, runtime)
        injector.advance(0)
        runtime.push("src", Record(timestamp=0, value="gone"))
        injector.detach()
        assert injector.delayed_count == 0
        assert injector.drain_due_redeliveries(10_000) == 0
        assert out == []


class TestOperatorFaults:
    def test_raises_after_n_records_then_clears(self):
        out = []
        runtime = _pipeline(out)
        plan = FaultPlan().add(
            FaultEvent(at_ms=0, kind=FaultKind.OPERATOR_EXCEPTION,
                       vertex="op", after_records=1, repeat=1)
        )
        injector = _attach(plan, runtime)
        injector.advance(0)
        runtime.push("src", Record(timestamp=0, value=1))  # seen=1: passes
        with pytest.raises(InjectedFaultError):
            runtime.push("src", Record(timestamp=1, value=2))
        runtime.push("src", Record(timestamp=2, value=3))  # repeat spent
        assert out == [1, 3]
        (record,) = injector.unhandled_failures()
        assert record.requires_recovery

    def test_repeat_defeats_fewer_retries(self):
        out = []
        runtime = _pipeline(out)
        plan = FaultPlan().add(
            FaultEvent(at_ms=0, kind=FaultKind.OPERATOR_EXCEPTION,
                       vertex="op", after_records=0, repeat=3)
        )
        injector = _attach(plan, runtime)
        injector.advance(0)
        for _ in range(3):
            with pytest.raises(InjectedFaultError):
                runtime.push("src", Record(timestamp=0, value="poison"))
        runtime.push("src", Record(timestamp=0, value="poison"))
        assert out == ["poison"]


class TestNodeFaults:
    def test_crash_and_restore_through_the_cluster(self):
        cluster = SimulatedCluster(ClusterSpec(nodes=4))
        plan = FaultPlan()
        plan.add(FaultEvent(at_ms=100, kind=FaultKind.NODE_CRASH, node=2))
        plan.add(FaultEvent(at_ms=900, kind=FaultKind.NODE_RESTORE, node=2))
        injector = FaultInjector(plan, cluster=cluster)
        fired = injector.advance(100)
        assert cluster.healthy_nodes == 3
        assert [record.event.kind for record in fired] == [FaultKind.NODE_CRASH]
        assert injector.unhandled_failures() == fired
        injector.advance(900)
        assert cluster.healthy_nodes == 4

    def test_node_events_require_a_cluster(self):
        plan = FaultPlan().add(
            FaultEvent(at_ms=0, kind=FaultKind.NODE_CRASH, node=0)
        )
        with pytest.raises(ValueError, match="cluster"):
            FaultInjector(plan)

    def test_double_crash_needs_no_second_recovery(self):
        cluster = SimulatedCluster(ClusterSpec(nodes=4))
        plan = FaultPlan()
        plan.add(FaultEvent(at_ms=0, kind=FaultKind.NODE_CRASH, node=1))
        plan.add(FaultEvent(at_ms=10, kind=FaultKind.NODE_CRASH, node=1))
        injector = FaultInjector(plan, cluster=cluster)
        injector.advance(20)
        recoverable = injector.unhandled_failures()
        assert len(recoverable) == 1  # the no-op repeat does not count


class TestSlowNodes:
    def test_slow_window_raises_the_factor_then_expires(self):
        cluster = SimulatedCluster(ClusterSpec(nodes=4))
        plan = FaultPlan().add(
            FaultEvent(at_ms=100, kind=FaultKind.SLOW_NODE, node=0,
                       factor=3.0, duration_ms=400)
        )
        injector = FaultInjector(plan, cluster=cluster)
        assert injector.slow_factor(0) == 1.0
        injector.advance(100)
        assert injector.slow_factor(100) == 3.0
        assert injector.slow_factor(499) == 3.0
        assert injector.slow_factor(500) == 1.0


class TestDeterminism:
    def test_same_plan_same_workload_same_log(self):
        def run():
            out = []
            runtime = _pipeline(out)
            plan = FaultPlan()
            plan.add(FaultEvent(at_ms=0, kind=FaultKind.CHANNEL_DROP,
                                edge="op->sink", count=2))
            plan.add(FaultEvent(at_ms=50, kind=FaultKind.CHANNEL_DUPLICATE,
                                edge="op->sink", count=1))
            injector = _attach(plan, runtime)
            for step in range(10):
                injector.advance(step * 10)
                runtime.push("src", Record(timestamp=step, value=step))
            return out, injector.log_lines()

        assert run() == run()

    def test_exhausted_after_all_events_strike(self):
        out = []
        runtime = _pipeline(out)
        plan = FaultPlan().add(
            FaultEvent(at_ms=0, kind=FaultKind.CHANNEL_DROP,
                       edge="op->sink", count=1)
        )
        injector = _attach(plan, runtime)
        injector.advance(0)
        assert not injector.exhausted
        runtime.push("src", Record(timestamp=0, value=0))
        assert injector.exhausted
