"""Unit tests for per-query/per-tenant latency SLOs (ISSUE 9).

Burn-rate arithmetic, declaration validation, the summary shape the
``stats`` frame and inspector consume, and the associative cross-shard
snapshot merge (counts sum, targets max, reservoirs concatenate).
"""

import pytest

from repro.obs.slo import (
    SLOTracker,
    merge_slo_snapshots,
    summary_from_snapshot,
)


class TestDeclaration:
    def test_declare_validates_target(self):
        tracker = SLOTracker()
        with pytest.raises(ValueError):
            tracker.declare("q1", 0.0)
        with pytest.raises(ValueError):
            tracker.declare("q1", -5.0)
        tracker.declare("q1", 10.0, tenant="alice")
        assert tracker.target("q1") == 10.0

    def test_observe_only_declaration_has_no_burn(self):
        tracker = SLOTracker()
        tracker.declare("q1", None, tenant="alice")
        for _ in range(10):
            tracker.observe("q1", 999.0)
        assert tracker.burn_rate("q1") == 0.0
        assert tracker.max_burn_rate() == 0.0
        entry = tracker.summary()["queries"]["q1"]
        assert entry["target_ms"] is None
        assert "burn_rate" not in entry

    def test_constructor_validates(self):
        with pytest.raises(ValueError):
            SLOTracker(objective=1.0)
        with pytest.raises(ValueError):
            SLOTracker(objective=0.0)
        with pytest.raises(ValueError):
            SLOTracker(window=0)


class TestBurnRate:
    def test_all_meeting_target_burns_zero(self):
        tracker = SLOTracker(objective=0.99)
        tracker.declare("q1", 100.0)
        for _ in range(50):
            tracker.observe("q1", 10.0)
        assert tracker.burn_rate("q1") == 0.0
        assert tracker.violations_total == 0

    def test_burn_is_violating_fraction_over_error_budget(self):
        tracker = SLOTracker(objective=0.9)  # 10% error budget
        tracker.declare("q1", 100.0)
        for i in range(20):
            # Every 5th delivery violates: 20% violating, budget 10%.
            tracker.observe("q1", 200.0 if i % 5 == 0 else 10.0)
        assert tracker.burn_rate("q1") == pytest.approx(0.2 / 0.1)
        assert tracker.violations_total == 4

    def test_burn_windows_slide(self):
        tracker = SLOTracker(objective=0.9, window=4)
        tracker.declare("q1", 100.0)
        for _ in range(4):
            tracker.observe("q1", 500.0)  # saturate: burn = 1/0.1
        assert tracker.burn_rate("q1") == pytest.approx(10.0)
        for _ in range(4):
            tracker.observe("q1", 1.0)  # window forgets the violations
        assert tracker.burn_rate("q1") == 0.0

    def test_max_burn_and_burning_queries(self):
        tracker = SLOTracker(objective=0.9)
        tracker.declare("hot", 1.0)
        tracker.declare("cold", 1_000.0)
        for _ in range(8):
            tracker.observe("hot", 50.0)
            tracker.observe("cold", 50.0)
        assert tracker.max_burn_rate() == pytest.approx(10.0)
        assert tracker.burning_queries(1.0) == ["hot"]
        assert tracker.burning_queries(100.0) == []

    def test_forget_drops_query_state_keeps_tenant_aggregate(self):
        tracker = SLOTracker()
        tracker.declare("q1", 1.0, tenant="alice")
        tracker.observe("q1", 50.0)
        tracker.forget("q1")
        assert tracker.target("q1") is None
        assert tracker.burn_rate("q1") == 0.0
        summary = tracker.summary()
        assert "q1" not in summary["queries"]
        assert summary["tenants"]["alice"]["count"] == 1


class TestSummary:
    def test_percentiles_and_tenant_rollup(self):
        tracker = SLOTracker()
        tracker.declare("q1", 100.0, tenant="alice")
        tracker.declare("q2", 100.0, tenant="alice")
        for v in range(1, 101):
            tracker.observe("q1", float(v))
        tracker.observe("q2", 5.0)
        summary = tracker.summary()
        q1 = summary["queries"]["q1"]
        assert q1["count"] == 100
        assert q1["p50"] == pytest.approx(50.0, abs=2.0)
        assert q1["p99"] == pytest.approx(99.0, abs=2.0)
        assert summary["tenants"]["alice"]["count"] == 101
        assert summary["observed_total"] == 101


class TestSnapshotMerge:
    def _shard(self, latencies, target=100.0):
        tracker = SLOTracker(objective=0.9)
        tracker.declare("q1", target, tenant="alice")
        for latency in latencies:
            tracker.observe("q1", latency)
        return tracker.snapshot()

    def test_merge_sums_counts_and_concatenates_reservoirs(self):
        merged = merge_slo_snapshots(
            [self._shard([10.0, 20.0]), self._shard([30.0, 200.0]), None, {}]
        )
        entry = merged["queries"]["q1"]
        assert entry["count"] == 4
        assert sorted(entry["reservoir"]) == [10.0, 20.0, 30.0, 200.0]
        assert entry["target_ms"] == 100.0
        assert len(entry["recent"]) == 4
        assert merged["observed_total"] == 4
        assert merged["violations_total"] == 1
        assert merged["tenants"]["alice"]["count"] == 4

    def test_merge_takes_max_target(self):
        merged = merge_slo_snapshots(
            [self._shard([1.0], target=50.0), self._shard([1.0], target=80.0)]
        )
        assert merged["queries"]["q1"]["target_ms"] == 80.0

    def test_summary_from_merged_snapshot_recomputes_burn(self):
        merged = merge_slo_snapshots(
            [self._shard([10.0] * 3 + [500.0]), self._shard([10.0] * 4)]
        )
        summary = summary_from_snapshot(merged)
        entry = summary["queries"]["q1"]
        assert entry["count"] == 8
        # 1 violation in 8 recent samples over a 10% budget.
        assert entry["burn_rate"] == pytest.approx((1 / 8) / 0.1)
        assert summary["max_burn_rate"] == entry["burn_rate"]
        assert summary["tenants"]["alice"]["count"] == 8

    def test_merge_is_associative(self):
        a, b, c = (
            self._shard([10.0, 300.0]),
            self._shard([20.0]),
            self._shard([400.0, 30.0]),
        )
        left = merge_slo_snapshots([merge_slo_snapshots([a, b]), c])
        right = merge_slo_snapshots([a, merge_slo_snapshots([b, c])])
        left["queries"]["q1"]["reservoir"].sort()
        right["queries"]["q1"]["reservoir"].sort()
        assert left == right
