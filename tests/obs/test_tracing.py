"""TraceCollector: span nesting, exclusive math, merge (ISSUE 4).

WireTraceBook (ISSUE 9): boundary-stamp chains for trace-stamped push
frames — spans telescope to the end-to-end time exactly, the tail is
bounded for the flight recorder, and snapshots share the collector's
shape so the same breakdown renderer applies.
"""

import pytest

from repro.obs.tracing import (
    TraceCollector,
    WireTraceBook,
    breakdown_from_snapshot,
    merge_trace_snapshots,
    new_trace_id,
)


def _traced_push(tracer, stages):
    """Run one sampled push with a nested stage chain; returns the trace."""
    assert tracer.maybe_start()
    tracer.enter("source:A")
    for stage in stages:
        tracer.enter(stage)
    for _ in stages:
        tracer.exit()
    total = tracer.exit()  # root span inclusive time
    return tracer.finish(timestamp=123, total_ns=total)


class TestSampling:
    def test_cadence(self):
        # Every 4th push is sampled.
        tracer = TraceCollector(sample_every=4)
        sampled = 0
        for _ in range(16):
            if tracer.maybe_start():
                sampled += 1
                tracer.finish()
        assert sampled == 4

    def test_sample_every_one_traces_all(self):
        tracer = TraceCollector(sample_every=1)
        for _ in range(3):
            assert tracer.maybe_start()
            tracer.finish()
        assert tracer.e2e_count == 3

    def test_sample_every_validated(self):
        with pytest.raises(ValueError):
            TraceCollector(sample_every=0)


class TestExclusiveMath:
    def test_stage_sums_equal_e2e_exactly(self):
        # Exclusive stage times telescope to the root span's inclusive
        # time when finish() is given the root's return value — the
        # acceptance criterion holds with zero slack, not 5%.
        tracer = TraceCollector(sample_every=1)
        for _ in range(10):
            _traced_push(tracer, ["select:A", "join:A~B", "router:join:A~B"])
        breakdown = tracer.breakdown()
        assert breakdown["sampled"] == 10
        assert breakdown["stage_sum_ns"] == breakdown["e2e_total_ns"]
        assert breakdown["coverage"] == 1.0

    def test_nested_child_time_excluded_from_parent(self):
        tracer = TraceCollector(sample_every=1)
        tracer.maybe_start()
        tracer.enter("parent")
        tracer.enter("child")
        for _ in range(2000):  # measurable work inside the child
            pass
        tracer.exit()
        total = tracer.exit()
        tracer.finish(total_ns=total)
        stages = tracer.stage_totals
        parent_exclusive = stages["parent"][1]
        child_exclusive = stages["child"][1]
        assert parent_exclusive + child_exclusive == total
        assert child_exclusive > 0

    def test_sibling_spans_fold_into_one_stage_entry(self):
        # stage_totals counts sampled *pushes* touching a stage (so
        # mean_ns is per-push stage cost), not individual spans: three
        # sibling deliveries fold into one entry whose exclusive time
        # still telescopes with the root's.
        tracer = TraceCollector(sample_every=1)
        tracer.maybe_start()
        tracer.enter("root")
        for _ in range(3):
            tracer.enter("select:A")
            tracer.exit()
        total = tracer.exit()
        tracer.finish(total_ns=total)
        assert tracer.stage_totals["select:A"][0] == 1
        assert (
            tracer.stage_totals["root"][1] + tracer.stage_totals["select:A"][1]
            == total
        )

    def test_trace_entry_shape(self):
        tracer = TraceCollector(sample_every=1)
        trace = _traced_push(tracer, ["select:A"])
        assert trace["timestamp"] == 123
        assert set(trace["stages"]) == {"source:A", "select:A"}
        assert trace["total_ns"] == sum(trace["stages"].values())

    def test_trace_list_bounded(self):
        tracer = TraceCollector(sample_every=1, max_traces=5)
        for _ in range(10):
            _traced_push(tracer, [])
        assert len(tracer.traces) == 5
        assert tracer.e2e_count == 10  # aggregates keep counting


class TestSnapshots:
    def test_snapshot_drain(self):
        tracer = TraceCollector(sample_every=1)
        _traced_push(tracer, ["select:A"])
        kept = tracer.snapshot(drain_traces=False)
        assert len(kept["traces"]) == 1
        assert len(tracer.traces) == 1
        drained = tracer.snapshot(drain_traces=True)
        assert len(drained["traces"]) == 1
        assert tracer.traces == []
        # Aggregates are cumulative, not drained.
        assert tracer.snapshot()["e2e_count"] == 1

    def test_merge_sums_and_caps(self):
        tracers = []
        for _ in range(3):
            tracer = TraceCollector(sample_every=1)
            _traced_push(tracer, ["select:A", "agg:A"])
            tracers.append(tracer)
        merged = merge_trace_snapshots(
            [tracer.snapshot() for tracer in tracers]
        )
        assert merged["e2e_count"] == 3
        assert merged["stage_totals"]["agg:A"][0] == 3
        assert len(merged["traces"]) == 3

    def test_merge_skips_empty(self):
        tracer = TraceCollector(sample_every=1)
        _traced_push(tracer, [])
        merged = merge_trace_snapshots([None, {}, tracer.snapshot()])
        assert merged["e2e_count"] == 1

    def test_breakdown_from_merged_snapshot_full_coverage(self):
        tracer = TraceCollector(sample_every=1)
        for _ in range(4):
            _traced_push(tracer, ["select:A", "join:A~B"])
        breakdown = breakdown_from_snapshot(
            merge_trace_snapshots([tracer.snapshot()])
        )
        assert breakdown["sampled"] == 4
        assert breakdown["coverage"] == 1.0
        assert breakdown["stages"]["join:A~B"]["count"] == 4


def _chain(t0, *spans):
    """Boundary stamps from an origin and per-stage span lengths."""
    boundaries = [("ingest", t0)]
    now = t0
    for stage, span_ns in spans:
        now += span_ns
        boundaries.append((stage, now))
    return boundaries


class TestWireTraceBook:
    def test_spans_telescope_exactly(self):
        book = WireTraceBook()
        record = book.close(
            7,
            _chain(1_000, ("client", 10), ("server", 20), ("shard", 300),
                   ("subscription", 40)),
            queries=["q1"],
        )
        assert record["spans"] == [
            ("client", 10), ("server", 20), ("shard", 300),
            ("subscription", 40),
        ]
        assert record["e2e_ns"] == 370
        assert sum(ns for _, ns in record["spans"]) == record["e2e_ns"]
        assert record["queries"] == ["q1"]
        assert book.e2e_count == 1
        assert book.stage_totals["shard"] == [1, 300]

    def test_force_next_overrides_cadence(self):
        tracer = TraceCollector(sample_every=100)
        assert not tracer.maybe_start()
        tracer.force_next()
        assert tracer.maybe_start()
        tracer.finish(total_ns=0)
        assert not tracer.maybe_start()

    def test_tail_bounded_with_id_index_eviction(self):
        book = WireTraceBook(max_tail=2)
        for trace_id in (1, 2, 3):
            book.close(trace_id, _chain(0, ("client", trace_id)))
        assert [rec["id"] for rec in book.tail()] == [2, 3]
        # Aggregates keep counting past the tail.
        assert book.e2e_count == 3
        # Evicted ids can no longer take detail; live ones can.
        assert not book.attach_detail(1, {"shard": 0})
        assert book.attach_detail(3, {"shard": 0})
        assert book.tail()[-1]["detail"] == [{"shard": 0}]

    def test_snapshot_renders_via_breakdown(self):
        book = WireTraceBook()
        for trace_id in (1, 2):
            book.close(
                trace_id,
                _chain(0, ("client", 100), ("server", 50), ("shard", 850)),
            )
        breakdown = breakdown_from_snapshot(book.snapshot())
        assert breakdown["sampled"] == 2
        assert breakdown["coverage"] == 1.0
        assert breakdown["stages"]["shard"]["mean_ns"] == 850
        snapshot = book.snapshot()
        assert snapshot["traces"][0]["stages"] == {
            "client": 100, "server": 50, "shard": 850,
        }

    def test_trace_ids_are_odd_int64(self):
        for _ in range(32):
            trace_id = new_trace_id()
            assert 0 < trace_id < 2**63
            assert trace_id & 1
