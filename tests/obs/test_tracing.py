"""TraceCollector: span nesting, exclusive math, merge (ISSUE 4)."""

import pytest

from repro.obs.tracing import (
    TraceCollector,
    breakdown_from_snapshot,
    merge_trace_snapshots,
)


def _traced_push(tracer, stages):
    """Run one sampled push with a nested stage chain; returns the trace."""
    assert tracer.maybe_start()
    tracer.enter("source:A")
    for stage in stages:
        tracer.enter(stage)
    for _ in stages:
        tracer.exit()
    total = tracer.exit()  # root span inclusive time
    return tracer.finish(timestamp=123, total_ns=total)


class TestSampling:
    def test_cadence(self):
        # Every 4th push is sampled.
        tracer = TraceCollector(sample_every=4)
        sampled = 0
        for _ in range(16):
            if tracer.maybe_start():
                sampled += 1
                tracer.finish()
        assert sampled == 4

    def test_sample_every_one_traces_all(self):
        tracer = TraceCollector(sample_every=1)
        for _ in range(3):
            assert tracer.maybe_start()
            tracer.finish()
        assert tracer.e2e_count == 3

    def test_sample_every_validated(self):
        with pytest.raises(ValueError):
            TraceCollector(sample_every=0)


class TestExclusiveMath:
    def test_stage_sums_equal_e2e_exactly(self):
        # Exclusive stage times telescope to the root span's inclusive
        # time when finish() is given the root's return value — the
        # acceptance criterion holds with zero slack, not 5%.
        tracer = TraceCollector(sample_every=1)
        for _ in range(10):
            _traced_push(tracer, ["select:A", "join:A~B", "router:join:A~B"])
        breakdown = tracer.breakdown()
        assert breakdown["sampled"] == 10
        assert breakdown["stage_sum_ns"] == breakdown["e2e_total_ns"]
        assert breakdown["coverage"] == 1.0

    def test_nested_child_time_excluded_from_parent(self):
        tracer = TraceCollector(sample_every=1)
        tracer.maybe_start()
        tracer.enter("parent")
        tracer.enter("child")
        for _ in range(2000):  # measurable work inside the child
            pass
        tracer.exit()
        total = tracer.exit()
        tracer.finish(total_ns=total)
        stages = tracer.stage_totals
        parent_exclusive = stages["parent"][1]
        child_exclusive = stages["child"][1]
        assert parent_exclusive + child_exclusive == total
        assert child_exclusive > 0

    def test_sibling_spans_fold_into_one_stage_entry(self):
        # stage_totals counts sampled *pushes* touching a stage (so
        # mean_ns is per-push stage cost), not individual spans: three
        # sibling deliveries fold into one entry whose exclusive time
        # still telescopes with the root's.
        tracer = TraceCollector(sample_every=1)
        tracer.maybe_start()
        tracer.enter("root")
        for _ in range(3):
            tracer.enter("select:A")
            tracer.exit()
        total = tracer.exit()
        tracer.finish(total_ns=total)
        assert tracer.stage_totals["select:A"][0] == 1
        assert (
            tracer.stage_totals["root"][1] + tracer.stage_totals["select:A"][1]
            == total
        )

    def test_trace_entry_shape(self):
        tracer = TraceCollector(sample_every=1)
        trace = _traced_push(tracer, ["select:A"])
        assert trace["timestamp"] == 123
        assert set(trace["stages"]) == {"source:A", "select:A"}
        assert trace["total_ns"] == sum(trace["stages"].values())

    def test_trace_list_bounded(self):
        tracer = TraceCollector(sample_every=1, max_traces=5)
        for _ in range(10):
            _traced_push(tracer, [])
        assert len(tracer.traces) == 5
        assert tracer.e2e_count == 10  # aggregates keep counting


class TestSnapshots:
    def test_snapshot_drain(self):
        tracer = TraceCollector(sample_every=1)
        _traced_push(tracer, ["select:A"])
        kept = tracer.snapshot(drain_traces=False)
        assert len(kept["traces"]) == 1
        assert len(tracer.traces) == 1
        drained = tracer.snapshot(drain_traces=True)
        assert len(drained["traces"]) == 1
        assert tracer.traces == []
        # Aggregates are cumulative, not drained.
        assert tracer.snapshot()["e2e_count"] == 1

    def test_merge_sums_and_caps(self):
        tracers = []
        for _ in range(3):
            tracer = TraceCollector(sample_every=1)
            _traced_push(tracer, ["select:A", "agg:A"])
            tracers.append(tracer)
        merged = merge_trace_snapshots(
            [tracer.snapshot() for tracer in tracers]
        )
        assert merged["e2e_count"] == 3
        assert merged["stage_totals"]["agg:A"][0] == 3
        assert len(merged["traces"]) == 3

    def test_merge_skips_empty(self):
        tracer = TraceCollector(sample_every=1)
        _traced_push(tracer, [])
        merged = merge_trace_snapshots([None, {}, tracer.snapshot()])
        assert merged["e2e_count"] == 1

    def test_breakdown_from_merged_snapshot_full_coverage(self):
        tracer = TraceCollector(sample_every=1)
        for _ in range(4):
            _traced_push(tracer, ["select:A", "join:A~B"])
        breakdown = breakdown_from_snapshot(
            merge_trace_snapshots([tracer.snapshot()])
        )
        assert breakdown["sampled"] == 4
        assert breakdown["coverage"] == 1.0
        assert breakdown["stages"]["join:A~B"]["count"] == 4
