"""MetricsRegistry: scoping, snapshots, cross-shard merging (ISSUE 4)."""

import pytest

from repro.obs.exposition import render_prometheus
from repro.obs.registry import (
    MetricsRegistry,
    merge_snapshots,
    relabel_snapshot,
    render_key,
)


class TestRenderKey:
    def test_no_labels(self):
        assert render_key("records", {}) == "records"

    def test_labels_sorted(self):
        assert (
            render_key("records", {"shard": "2", "operator": "agg:A"})
            == "records{operator=agg:A,shard=2}"
        )


class TestScoping:
    def test_scope_labels_stamped(self):
        registry = MetricsRegistry()
        registry.scope(operator="join:A~B").counter("pairs").inc(3)
        snapshot = registry.snapshot()
        entry = snapshot["pairs{operator=join:A~B}"]
        assert entry["value"] == 3
        assert entry["labels"] == {"operator": "join:A~B"}

    def test_nested_scopes_accumulate(self):
        registry = MetricsRegistry()
        scope = registry.scope(shard="1").scope(operator="agg:A")
        assert scope.labels == {"shard": "1", "operator": "agg:A"}
        scope.gauge("slices").set(4)
        assert "slices{operator=agg:A,shard=1}" in registry.snapshot()

    def test_same_key_same_instrument(self):
        registry = MetricsRegistry()
        registry.counter("c", operator="x").inc()
        registry.counter("c", operator="x").inc()
        registry.counter("c", operator="y").inc()
        snapshot = registry.snapshot()
        assert snapshot["c{operator=x}"]["value"] == 2
        assert snapshot["c{operator=y}"]["value"] == 1

    def test_gauge_merge_policy_validated(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.gauge("g", merge="median")


class TestSnapshot:
    def test_histogram_snapshot_fields(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("latency_ms")
        for value in range(1, 101):
            histogram.record(value)
        entry = registry.snapshot()["latency_ms"]
        assert entry["type"] == "histogram"
        assert entry["count"] == 100
        assert entry["min"] == 1 and entry["max"] == 100
        assert entry["p50"] == 50 and entry["p99"] == 99
        assert entry["sum"] == pytest.approx(5050)
        assert entry["reservoir"] == sorted(entry["reservoir"])

    def test_snapshot_is_json_able(self):
        import json

        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.gauge("g").set(2)
        registry.histogram("h").record(1.5)
        json.dumps(registry.snapshot())


class TestRelabel:
    def test_adds_labels_and_rekeys(self):
        registry = MetricsRegistry()
        registry.counter("records", operator="select:A").inc(5)
        relabeled = relabel_snapshot(registry.snapshot(), shard="3")
        key = "records{operator=select:A,shard=3}"
        assert key in relabeled
        assert relabeled[key]["labels"]["shard"] == "3"
        # The original snapshot is not mutated.
        assert "records{operator=select:A}" in registry.snapshot()


class TestMerge:
    def _shard_snapshot(self, count, slices, width):
        registry = MetricsRegistry()
        registry.counter("records").inc(count)
        registry.gauge("slices", merge="sum").set(slices)
        registry.gauge("bitset_width", merge="max").set(width)
        registry.gauge("last_watermark", merge="last").set(count)
        for value in range(count):
            registry.histogram("latency").record(value)
        return registry.snapshot()

    def test_counters_sum(self):
        merged = merge_snapshots(
            [self._shard_snapshot(10, 1, 4), self._shard_snapshot(32, 2, 4)]
        )
        assert merged["records"]["value"] == 42

    def test_gauge_merge_hints(self):
        merged = merge_snapshots(
            [self._shard_snapshot(10, 3, 4), self._shard_snapshot(20, 5, 7)]
        )
        assert merged["slices"]["value"] == 8  # sum
        assert merged["bitset_width"]["value"] == 7  # max
        assert merged["last_watermark"]["value"] == 20  # last wins

    def test_histograms_merge_counts_and_extremes(self):
        merged = merge_snapshots(
            [self._shard_snapshot(10, 1, 1), self._shard_snapshot(100, 1, 1)]
        )
        entry = merged["latency"]
        assert entry["count"] == 110
        assert entry["min"] == 0
        assert entry["max"] == 99
        assert 40 <= entry["p50"] <= 60  # re-estimated from reservoirs

    def test_disjoint_keys_pass_through(self):
        a = MetricsRegistry()
        a.counter("only_a").inc()
        b = MetricsRegistry()
        b.counter("only_b").inc(2)
        merged = merge_snapshots([a.snapshot(), b.snapshot()])
        assert merged["only_a"]["value"] == 1
        assert merged["only_b"]["value"] == 2

    def test_per_shard_addressability_after_relabel_merge(self):
        # The coordinator pattern: relabel each shard then merge — keys
        # stay distinct, so per-shard operator stats remain readable.
        shards = [self._shard_snapshot(10, 1, 4), self._shard_snapshot(20, 2, 4)]
        merged = merge_snapshots(
            [
                relabel_snapshot(snapshot, shard=str(index))
                for index, snapshot in enumerate(shards)
            ]
        )
        assert merged["records{shard=0}"]["value"] == 10
        assert merged["records{shard=1}"]["value"] == 20


class TestPrometheus:
    def test_exposition_format(self):
        registry = MetricsRegistry()
        registry.counter("records", operator="select:A").inc(5)
        registry.gauge("slices").set(3)
        registry.histogram("latency_ms").record(10)
        text = render_prometheus(registry.snapshot())
        assert '# TYPE records_total counter' in text
        assert 'records_total{operator="select:A"} 5' in text
        assert "# TYPE slices gauge" in text
        assert "slices 3" in text.splitlines()
        assert "# TYPE latency_ms summary" in text
        assert 'latency_ms{quantile="0.5"} 10' in text
        assert "latency_ms_count 1" in text

    def test_sanitizes_names(self):
        registry = MetricsRegistry()
        registry.counter("join:A~B/pairs").inc()
        text = render_prometheus(registry.snapshot())
        assert "join:A_B_pairs_total" in text

    def test_empty_snapshot(self):
        assert render_prometheus({}) == ""

    def test_label_values_escaped(self):
        # Query ids come straight from user SQL, so label values can
        # carry quotes, backslashes, and newlines — the text format
        # requires all three escaped (backslash first).
        registry = MetricsRegistry()
        registry.counter(
            "results", query='q"1"\\raw\nnext'
        ).inc()
        text = render_prometheus(registry.snapshot())
        assert 'query="q\\"1\\"\\\\raw\\nnext"' in text
        assert "\n" not in text.split("results_total{", 1)[1].split("}")[0]

    def test_help_text_for_known_metrics(self):
        registry = MetricsRegistry()
        registry.counter("serve_traced_pushes").inc()
        registry.histogram("query_latency_ms", query="q1").record(2)
        text = render_prometheus(registry.snapshot())
        assert (
            "# HELP serve_traced_pushes_total "
            "Push frames carrying a wire trace context" in text
        )
        assert "# HELP query_latency_ms " in text
