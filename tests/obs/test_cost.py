"""Unit tests for shared-work CPU cost attribution (ISSUE 9).

The conservation contract: :func:`attribute_costs` is a proportional
split of the *measured* total, so per-query shares plus the idle bucket
sum to the total exactly — shared covering-group work is divided equally
across member queries.  Raw shard profiles (slot bitmasks) merge before
the coordinator resolves them to query ids.
"""

import pytest

from repro.obs.cost import (
    attribute_costs,
    cost_summary,
    merge_cost_profiles,
    slots_of,
)


class TestSlotsOf:
    def test_bit_positions(self):
        assert slots_of(0) == []
        assert slots_of(0b1) == [0]
        assert slots_of(0b1010) == [1, 3]
        assert slots_of(1 << 63) == [63]


def _profile(entries, unattributed=0.0):
    return {"streams": {"A": entries}, "unattributed_evaluations": unattributed}


class TestAttribution:
    def test_shares_sum_to_total_exactly(self):
        profile = _profile(
            [
                {"kind": "direct", "queries": ["q1"], "evaluations": 7},
                {"kind": "cover", "queries": ["q1", "q2", "q3"],
                 "evaluations": 11},
                {"kind": "direct", "queries": ["q2"], "evaluations": 3},
            ],
            unattributed=5,
        )
        total = 1_000_003  # awkward total: integer truncation guaranteed
        result = attribute_costs(total, profile)
        assert (
            sum(result["queries"].values()) + result["unattributed_ns"]
            == total
        )
        assert set(result["queries"]) == {"q1", "q2", "q3"}

    def test_shared_work_splits_equally(self):
        profile = _profile(
            [{"kind": "cover", "queries": ["q1", "q2"], "evaluations": 100}]
        )
        result = attribute_costs(1_000_000, profile)
        assert result["weights"]["q1"] == result["weights"]["q2"] == 50.0
        # Shares match up to the remainder nanosecond.
        q1, q2 = result["queries"]["q1"], result["queries"]["q2"]
        assert abs(q1 - q2) <= 1
        assert q1 + q2 == 1_000_000

    def test_memberless_entry_counts_as_unattributed(self):
        profile = _profile(
            [
                {"kind": "direct", "queries": [], "evaluations": 30},
                {"kind": "direct", "queries": ["q1"], "evaluations": 10},
            ]
        )
        result = attribute_costs(4_000, profile)
        assert result["queries"]["q1"] == 1_000
        assert result["unattributed_ns"] == 3_000

    def test_zero_total_and_zero_weight(self):
        assert attribute_costs(0, _profile([]))["queries"] == {}
        idle = attribute_costs(500, _profile([]))
        assert idle["queries"] == {}
        assert idle["unattributed_ns"] == 500

    def test_zero_evaluation_entries_ignored(self):
        profile = _profile(
            [
                {"kind": "direct", "queries": ["q1"], "evaluations": 0},
                {"kind": "direct", "queries": ["q2"], "evaluations": 4},
            ]
        )
        result = attribute_costs(100, profile)
        assert "q1" not in result["queries"]
        assert result["queries"]["q2"] == 100


class TestMerge:
    def test_raw_slot_entries_merge_by_mask(self):
        shard0 = {
            "streams": {
                "A": [{"kind": "cover", "slots": 0b11, "evaluations": 10}]
            },
            "unattributed_evaluations": 1,
            "engine_cpu_ns": 100,
        }
        shard1 = {
            "streams": {
                "A": [
                    {"kind": "cover", "slots": 0b11, "evaluations": 5},
                    {"kind": "direct", "slots": 0b100, "evaluations": 2},
                ]
            },
            "unattributed_evaluations": 2,
            "engine_cpu_ns": 250,
        }
        merged = merge_cost_profiles([shard0, None, shard1])
        assert merged["engine_cpu_ns"] == 350
        assert merged["unattributed_evaluations"] == 3
        entries = {
            (e["kind"], e["slots"]): e["evaluations"]
            for e in merged["streams"]["A"]
        }
        assert entries[("cover", 0b11)] == 15.0
        assert entries[("direct", 0b100)] == 2.0

    def test_resolved_query_entries_merge_by_member_set(self):
        a = _profile(
            [{"kind": "cover", "queries": ["q2", "q1"], "evaluations": 3}]
        )
        b = _profile(
            [{"kind": "cover", "queries": ["q1", "q2"], "evaluations": 4}]
        )
        merged = merge_cost_profiles([a, b])
        (entry,) = merged["streams"]["A"]
        assert entry["queries"] == ["q1", "q2"]
        assert entry["evaluations"] == 7.0

    def test_merged_raw_profile_feeds_attribution(self):
        # The process-backend path: merge raw shard masks, resolve
        # (here: trivially rename), attribute — conservation holds.
        merged = merge_cost_profiles(
            [
                {
                    "streams": {
                        "A": [{"kind": "cover", "slots": 0b1,
                               "evaluations": 6}]
                    },
                    "engine_cpu_ns": 900,
                },
                {
                    "streams": {
                        "A": [{"kind": "cover", "slots": 0b1,
                               "evaluations": 6}]
                    },
                    "engine_cpu_ns": 100,
                },
            ]
        )
        resolved = {
            "streams": {
                "A": [
                    {
                        "kind": entry["kind"],
                        "queries": [f"q{s}" for s in slots_of(entry["slots"])],
                        "evaluations": entry["evaluations"],
                    }
                    for entry in merged["streams"]["A"]
                ]
            },
            "unattributed_evaluations": merged["unattributed_evaluations"],
        }
        result = attribute_costs(merged["engine_cpu_ns"], resolved)
        assert result["queries"] == {"q0": 1_000}


class TestSummary:
    def test_ranked_shares(self):
        attribution = {
            "total_ns": 100,
            "queries": {"small": 10, "big": 70, "mid": 20},
            "unattributed_ns": 0,
        }
        rows = cost_summary(attribution, top=2)
        assert [row["query_id"] for row in rows] == ["big", "mid"]
        assert rows[0]["share"] == pytest.approx(0.7)
