"""EventLog: ring bounds, ship cursor, coordinator-side absorb (ISSUE 4)."""

import json

import pytest

from repro.obs.events import EventLog


class TestEmit:
    def test_seq_monotonic(self):
        log = EventLog()
        events = [log.emit("tick", t_ms=i) for i in range(5)]
        assert [event["seq"] for event in events] == [0, 1, 2, 3, 4]
        assert [event["seq"] for event in log.events()] == [0, 1, 2, 3, 4]

    def test_fields_stored(self):
        log = EventLog()
        event = log.emit("checkpoint", t_ms=1000, size_bytes=42)
        assert event["kind"] == "checkpoint"
        assert event["t_ms"] == 1000
        assert event["size_bytes"] == 42

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            EventLog(capacity=0)


class TestRing:
    def test_ring_keeps_newest(self):
        log = EventLog(capacity=3)
        for i in range(10):
            log.emit("tick", t_ms=i)
        assert len(log) == 3
        assert [event["t_ms"] for event in log.events()] == [7, 8, 9]
        assert log.total_emitted == 10
        assert log.dropped == 7

    def test_tail_and_of_kind(self):
        log = EventLog()
        log.emit("a")
        log.emit("b")
        log.emit("a")
        assert [event["kind"] for event in log.tail(2)] == ["b", "a"]
        assert log.tail(0) == []
        assert [event["seq"] for event in log.of_kind("a")] == [0, 2]


class TestShipping:
    def test_take_new_drains_once(self):
        log = EventLog()
        log.emit("a")
        log.emit("b")
        first = log.take_new()
        assert [event["kind"] for event in first] == ["a", "b"]
        assert log.take_new() == []
        log.emit("c")
        assert [event["kind"] for event in log.take_new()] == ["c"]

    def test_take_new_limit_resumes(self):
        # Regular acks cap the payload; the remainder ships on the next
        # ack without loss or duplication.
        log = EventLog()
        for i in range(5):
            log.emit("tick", t_ms=i)
        assert [e["t_ms"] for e in log.take_new(limit=2)] == [0, 1]
        assert [e["t_ms"] for e in log.take_new(limit=2)] == [2, 3]
        assert [e["t_ms"] for e in log.take_new()] == [4]

    def test_absorb_relabels_and_resequences(self):
        worker = EventLog()
        worker.emit("slice_create", t_ms=100, operator="agg:A", count=2)
        coordinator = EventLog()
        coordinator.emit("changelog", t_ms=0)
        absorbed = coordinator.absorb(worker.take_new(), shard="1")
        assert absorbed == 1
        event = coordinator.events()[-1]
        assert event["kind"] == "slice_create"
        assert event["seq"] == 1  # local arrival order
        assert event["src_seq"] == 0  # origin sequence preserved
        assert event["shard"] == "1"
        assert event["operator"] == "agg:A"
        assert event["t_ms"] == 100


class TestExport:
    def test_jsonl_round_trip(self):
        log = EventLog()
        log.emit("query_create", t_ms=5, query="q1")
        log.emit("query_delete", t_ms=9, query="q1")
        lines = log.to_jsonl().splitlines()
        parsed = [json.loads(line) for line in lines]
        assert [event["kind"] for event in parsed] == [
            "query_create",
            "query_delete",
        ]
        assert parsed[0]["query"] == "q1"

    def test_write_jsonl(self, tmp_path):
        log = EventLog()
        log.emit("a")
        path = tmp_path / "events.jsonl"
        assert log.write_jsonl(path) == 1
        assert json.loads(path.read_text().strip())["kind"] == "a"

    def test_empty_log_writes_empty_file(self, tmp_path):
        path = tmp_path / "events.jsonl"
        assert EventLog().write_jsonl(path) == 0
        assert path.read_text() == ""
