"""Engine-level telemetry integration (ISSUE 4 tentpole).

Observe mode threads one :class:`~repro.obs.Observability` hub through
the engine: control-plane transitions land in the event log, operator
state lands in labelled gauges, sampled pushes land in the trace, and
the whole picture comes back from ``engine.obs_snapshot()``.
"""

import pytest

from repro.core.engine import AStreamEngine, EngineConfig
from repro.core.query import (
    AggregationQuery,
    JoinQuery,
    TruePredicate,
    WindowSpec,
)
from repro.minispe.cluster import ClusterSpec, SimulatedCluster
from repro.obs import Observability
from repro.obs.tracing import breakdown_from_snapshot
from tests.conftest import field_tuple


def _engine(**overrides):
    config = EngineConfig(
        streams=("A", "B"),
        parallelism=1,
        observe=True,
        obs_sample_every=1,  # trace every push in tests
        **overrides,
    )
    return AStreamEngine(config, cluster=SimulatedCluster(ClusterSpec(nodes=4)))


def _join_query():
    return JoinQuery(
        left_stream="A",
        right_stream="B",
        left_predicate=TruePredicate(),
        right_predicate=TruePredicate(),
        window_spec=WindowSpec.tumbling(1_000),
    )


def _drive(engine, steps=8, per_step=10):
    for step in range(steps):
        now = step * 500
        for stream in ("A", "B"):
            for offset in range(per_step):
                engine.push(stream, now + offset * 10, field_tuple(key=offset))
        engine.watermark(now)


class TestObserveOff:
    def test_obs_is_none_by_default(self):
        engine = AStreamEngine(
            EngineConfig(streams=("A", "B"), parallelism=1),
            cluster=SimulatedCluster(ClusterSpec(nodes=4)),
        )
        assert engine.obs is None
        with pytest.raises(RuntimeError, match="observe=True"):
            engine.obs_snapshot()
        engine.shutdown()


class TestEventLog:
    def test_query_lifecycle_events(self):
        engine = _engine()
        query = _join_query()
        engine.submit(query, now_ms=0)
        engine.flush_session(0)
        engine.stop(query.query_id, now_ms=1_000)
        engine.flush_session(1_000)
        kinds = [event["kind"] for event in engine.obs.events.events()]
        assert kinds.count("changelog") == 2
        create = engine.obs.events.of_kind("query_create")[0]
        assert create["query_id"] == query.query_id
        delete = engine.obs.events.of_kind("query_delete")[0]
        assert delete["query_id"] == query.query_id
        # Create strictly precedes delete in the log.
        assert create["seq"] < delete["seq"]
        engine.shutdown()

    def test_slice_events_emitted_on_watermark(self):
        engine = _engine()
        engine.submit(_join_query(), now_ms=0)
        engine.flush_session(0)
        _drive(engine, steps=10)
        created = engine.obs.events.of_kind("slice_create")
        assert created and created[0]["operator"] == "join:A~B"
        assert all(event["count"] >= 1 for event in created)

    def test_checkpoint_and_restore_events(self):
        engine = _engine(log_inputs=True)
        engine.submit(_join_query(), now_ms=0)
        engine.flush_session(0)
        _drive(engine, steps=4)
        engine.checkpoint()
        _drive(engine, steps=2)
        engine.recover()
        checkpoint = engine.obs.events.of_kind("checkpoint")[0]
        assert checkpoint["size_bytes"] > 0
        restore = engine.obs.events.of_kind("restore")[0]
        assert restore["replayed_elements"] > 0
        assert checkpoint["seq"] < restore["seq"]
        registry = engine.obs.registry.snapshot()
        assert registry["checkpoints"]["value"] == 1
        assert registry["recoveries"]["value"] == 1
        engine.shutdown()


class TestSnapshot:
    def test_operator_gauges_and_trace(self):
        engine = _engine()
        engine.submit(_join_query(), now_ms=0)
        engine.flush_session(0)
        _drive(engine)
        snapshot = engine.obs_snapshot()
        registry = snapshot["registry"]
        assert registry["tuples_stored{operator=join:A~B}"]["value"] > 0
        assert registry["operator_records_in{operator=select:A}"]["value"] > 0
        assert registry["active_queries"]["value"] == 1
        assert registry["active_queries"]["merge"] == "max"
        assert registry["bitset_width"]["value"] >= 1
        assert registry["deployment_latency_ms"]["count"] >= 1
        # Sampled-trace acceptance: stage exclusive sums telescope to
        # end-to-end exactly (the ISSUE asks for within 5%).
        breakdown = breakdown_from_snapshot(snapshot["trace"])
        assert breakdown["sampled"] > 0
        assert breakdown["coverage"] == pytest.approx(1.0)
        assert "join:A~B" in breakdown["stages"]
        engine.shutdown()

    def test_agg_gauges(self):
        engine = _engine()
        engine.submit(
            AggregationQuery(
                stream="A",
                predicate=TruePredicate(),
                window_spec=WindowSpec.tumbling(1_000),
            ),
            now_ms=0,
        )
        engine.flush_session(0)
        _drive(engine)
        registry = engine.obs_snapshot()["registry"]
        assert registry["slices_created{operator=agg:A}"]["value"] > 0
        assert registry["results_emitted{operator=agg:A}"]["value"] > 0
        engine.shutdown()


class TestSpan:
    def test_span_records_histogram_and_event(self):
        obs = Observability(sample_every=1)
        with obs.span("deploy", t_ms=42, queries=3) as fields:
            fields["outcome"] = "ok"
        event = obs.events.events()[-1]
        assert event["kind"] == "deploy"
        assert event["t_ms"] == 42
        assert event["queries"] == 3
        assert event["outcome"] == "ok"
        assert event["duration_ms"] >= 0
        snapshot = obs.registry.snapshot()
        assert snapshot["span_ms{span=deploy}"]["count"] == 1

    def test_span_survives_exceptions(self):
        obs = Observability()
        with pytest.raises(ValueError):
            with obs.span("deploy"):
                raise ValueError("boom")
        assert obs.events.events()[-1]["kind"] == "deploy"
