"""Documentation coverage: every public item carries a docstring.

The deliverable is a library others can adopt; this meta-test walks the
whole ``repro`` package and fails if a public module, class, function,
or method is missing a docstring (dataclass-generated plumbing and
dunder methods excepted).
"""

import importlib
import inspect
import pkgutil

import repro

_GENERATED = {
    "__init__", "__repr__", "__eq__", "__hash__", "__post_init__",
}


def _iter_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


def _public_members(module):
    for name, member in vars(module).items():
        if name.startswith("_"):
            continue
        if inspect.isclass(member) or inspect.isfunction(member):
            if getattr(member, "__module__", None) == module.__name__:
                yield name, member


def test_every_module_has_a_docstring():
    undocumented = [
        module.__name__
        for module in _iter_modules()
        if not (module.__doc__ or "").strip()
    ]
    assert undocumented == []


def test_every_public_class_and_function_has_a_docstring():
    undocumented = []
    for module in _iter_modules():
        for name, member in _public_members(module):
            if not (member.__doc__ or "").strip():
                undocumented.append(f"{module.__name__}.{name}")
    assert undocumented == []


def _documented_in_base(klass, name) -> bool:
    """True when a base class documents this method's contract.

    Overrides inherit their contract's documentation (e.g. every
    operator's ``process``); requiring a copy on each override would
    just invite drift.
    """
    for base in klass.__mro__[1:]:
        member = base.__dict__.get(name)
        if member is None:
            continue
        target = member
        if isinstance(member, (staticmethod, classmethod)):
            target = member.__func__
        elif isinstance(member, property):
            target = member.fget
        if target is not None and (getattr(target, "__doc__", "") or "").strip():
            return True
    return False


def test_every_public_method_has_a_docstring():
    undocumented = []
    for module in _iter_modules():
        for class_name, klass in _public_members(module):
            if not inspect.isclass(klass):
                continue
            for name, member in vars(klass).items():
                if name.startswith("_") and name not in _GENERATED:
                    continue
                if name in _GENERATED:
                    continue
                if _documented_in_base(klass, name):
                    continue
                if not (
                    inspect.isfunction(member)
                    or isinstance(member, (property, staticmethod, classmethod))
                ):
                    continue
                target = member
                if isinstance(member, (staticmethod, classmethod)):
                    target = member.__func__
                elif isinstance(member, property):
                    target = member.fget
                if target is None or not (target.__doc__ or "").strip():
                    undocumented.append(
                        f"{module.__name__}.{class_name}.{name}"
                    )
    assert undocumented == []
