"""Tests for the query-at-a-time baseline engine."""

import pytest

from repro.baseline import BaselineDeploymentModel, QueryAtATimeEngine
from repro.core.query import (
    AggregationQuery,
    ComplexQuery,
    Comparison,
    FieldPredicate,
    JoinQuery,
    SelectionQuery,
    TruePredicate,
    WindowSpec,
)
from repro.minispe.cluster import ClusterCapacityError, ClusterSpec, SimulatedCluster
from tests.conftest import field_tuple


def _engine(nodes=4, parallelism=1, **kwargs) -> QueryAtATimeEngine:
    return QueryAtATimeEngine(
        cluster=SimulatedCluster(ClusterSpec(nodes=nodes)),
        parallelism=parallelism,
        **kwargs,
    )


class TestDeployment:
    def test_each_query_occupies_slots(self):
        engine = _engine()
        engine.submit(
            SelectionQuery(stream="A", predicate=TruePredicate()), now_ms=0
        )
        first_usage = engine.used_slots
        engine.submit(
            SelectionQuery(stream="A", predicate=TruePredicate()), now_ms=0
        )
        assert engine.used_slots == 2 * first_usage

    def test_capacity_exhaustion(self):
        engine = _engine(nodes=1)
        with pytest.raises(ClusterCapacityError):
            for index in range(100):
                engine.submit(
                    SelectionQuery(stream="A", predicate=TruePredicate()),
                    now_ms=0,
                )

    def test_stop_releases_slots(self):
        engine = _engine()
        query = SelectionQuery(stream="A", predicate=TruePredicate())
        engine.submit(query, now_ms=0)
        engine.stop(query.query_id, now_ms=100)
        assert engine.used_slots == 0
        assert engine.active_query_count == 0

    def test_stop_unknown_rejected(self):
        with pytest.raises(KeyError):
            _engine().stop("ghost", now_ms=0)

    def test_first_deploy_pays_cold_start(self):
        engine = _engine()
        q1 = SelectionQuery(stream="A", predicate=TruePredicate())
        q2 = SelectionQuery(stream="A", predicate=TruePredicate())
        engine.submit(q1, now_ms=0)
        engine.submit(q2, now_ms=0)
        first, second = engine.deployment_events
        assert first.deployment_latency_ms > second.deployment_latency_ms
        assert (
            first.deployment_latency_ms - second.deployment_latency_ms
            == engine.deployment.cold_start_ms
        )

    def test_deploy_cost_ms_is_side_effect_free(self):
        engine = _engine()
        query = SelectionQuery(stream="A", predicate=TruePredicate())
        cost = engine.deploy_cost_ms(query)
        assert cost > 0
        assert engine.used_slots == 0


class TestDataPath:
    def test_selection_query(self):
        engine = _engine()
        query = SelectionQuery(
            stream="A", predicate=FieldPredicate(0, Comparison.GT, 5)
        )
        engine.submit(query, now_ms=0)
        engine.push("A", 100, field_tuple(key=1, f0=9))
        engine.push("A", 200, field_tuple(key=1, f0=1))
        assert engine.result_count(query.query_id) == 1

    def test_tuples_before_creation_not_delivered(self):
        """A baseline job attaches at the latest offset."""
        engine = _engine()
        query = SelectionQuery(stream="A", predicate=TruePredicate())
        engine.submit(query, now_ms=1_000)
        engine.push("A", 500, field_tuple(key=1))
        engine.push("A", 1_500, field_tuple(key=1))
        assert engine.result_count(query.query_id) == 1

    def test_tuple_forked_to_every_matching_job(self):
        engine = _engine()
        queries = [
            SelectionQuery(stream="A", predicate=TruePredicate())
            for _ in range(3)
        ]
        for query in queries:
            engine.submit(query, now_ms=0)
        engine.push("A", 100, field_tuple(key=1))
        for query in queries:
            assert engine.result_count(query.query_id) == 1

    def test_join_query(self):
        engine = _engine()
        query = JoinQuery(
            left_stream="A", right_stream="B",
            left_predicate=TruePredicate(), right_predicate=TruePredicate(),
            window_spec=WindowSpec.tumbling(1_000),
        )
        engine.submit(query, now_ms=0)
        engine.push("A", 100, field_tuple(key=1, f0=1))
        engine.push("B", 200, field_tuple(key=1, f1=2))
        engine.push("B", 300, field_tuple(key=2, f1=3))
        engine.watermark(5_000)
        assert engine.result_count(query.query_id) == 1

    def test_aggregation_query(self):
        engine = _engine()
        query = AggregationQuery(
            stream="A",
            predicate=TruePredicate(),
            window_spec=WindowSpec.tumbling(1_000),
        )
        engine.submit(query, now_ms=0)
        for ts in (100, 300, 500):
            engine.push("A", ts, field_tuple(key=1, f0=2))
        engine.watermark(4_000)
        outputs = engine.results(query.query_id)
        assert len(outputs) == 1
        assert outputs[0].value.value == 6

    def test_complex_query_cascade(self):
        engine = _engine()
        query = ComplexQuery(
            join_streams=("A", "B", "C"),
            predicates=(TruePredicate(),) * 3,
            join_window=WindowSpec.tumbling(2_000),
            aggregation_window=WindowSpec.tumbling(2_000),
        )
        engine.submit(query, now_ms=0)
        engine.push("A", 100, field_tuple(key=1, f0=4))
        engine.push("B", 200, field_tuple(key=1))
        engine.push("C", 300, field_tuple(key=1))
        engine.watermark(8_000)
        outputs = engine.results(query.query_id)
        assert len(outputs) == 1
        assert outputs[0].value.value == 4

    def test_unsupported_query_type_rejected(self):
        class Unknown:
            query_id = "u"
            streams = ("A",)

        with pytest.raises(TypeError):
            _engine().submit(Unknown(), now_ms=0)

    def test_shutdown_stops_everything(self):
        engine = _engine()
        for _ in range(3):
            engine.submit(
                SelectionQuery(stream="A", predicate=TruePredicate()), now_ms=0
            )
        engine.shutdown()
        assert engine.active_query_count == 0
        assert engine.used_slots == 0


class TestDeploymentModel:
    def test_deploy_costs(self):
        model = BaselineDeploymentModel()
        first = model.deploy_ms(8, 4, first=True)
        later = model.deploy_ms(8, 4, first=False)
        assert first - later == model.cold_start_ms
        assert model.stop_ms() == model.job_stop_ms

    def test_placement_parallel_across_nodes(self):
        model = BaselineDeploymentModel(per_instance_ms=100)
        assert model.deploy_ms(8, 8, first=False) < model.deploy_ms(
            8, 1, first=False
        )


class TestRecovery:
    def test_recover_redeploys_every_running_job(self):
        engine = _engine()
        queries = [
            SelectionQuery(stream="A", predicate=TruePredicate())
            for _ in range(3)
        ]
        for query in queries:
            engine.submit(query, now_ms=0)
        slots_before = engine.used_slots
        assert engine.recover() == 3
        assert engine.active_query_count == 3
        assert engine.used_slots == slots_before  # allocations preserved
        engine.push("A", 100, field_tuple(key=1))
        for query in queries:
            assert engine.result_count(query.query_id) == 1

    def test_recover_preserves_prior_results_but_loses_window_state(self):
        engine = _engine()
        selection = SelectionQuery(stream="A", predicate=TruePredicate())
        aggregation = AggregationQuery(
            stream="A",
            predicate=TruePredicate(),
            window_spec=WindowSpec.tumbling(1_000),
        )
        engine.submit(selection, now_ms=0)
        engine.submit(aggregation, now_ms=0)
        engine.push("A", 100, field_tuple(key=1, f0=2))  # in the open window
        assert engine.result_count(selection.query_id) == 1

        engine.recover()

        # Delivered results survive (the channel is engine-side) ...
        assert engine.result_count(selection.query_id) == 1
        # ... but the crashed window's partial state does not: without a
        # checkpoint/replay path, only post-recovery tuples count.
        engine.push("A", 300, field_tuple(key=1, f0=5))
        engine.watermark(4_000)
        outputs = engine.results(aggregation.query_id)
        assert len(outputs) == 1
        assert outputs[0].value.value == 5  # the pre-crash 2 is lost

    def test_capacity_error_mid_schedule_leaves_engine_usable(self):
        engine = _engine(nodes=1)
        admitted = []
        rejected = 0
        for index in range(100):
            query = SelectionQuery(stream="A", predicate=TruePredicate())
            try:
                engine.submit(query, now_ms=index)
                admitted.append(query)
            except ClusterCapacityError:
                rejected += 1
                break
        assert admitted and rejected == 1
        # The failed submission did not wedge the engine: admitted queries
        # keep running and a freed slot admits the next query.
        engine.push("A", 1_000, field_tuple(key=1))
        assert engine.result_count(admitted[0].query_id) == 1
        engine.stop(admitted[0].query_id, now_ms=2_000)
        replacement = SelectionQuery(stream="A", predicate=TruePredicate())
        engine.submit(replacement, now_ms=3_000)
        engine.push("A", 4_000, field_tuple(key=1))
        assert engine.result_count(replacement.query_id) == 1
