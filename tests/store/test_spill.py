"""Unit tests for the dict-shaped spill views over one LSM store.

The shared aggregation operator only uses a narrow mapping protocol on
its per-slice stores; these tests pin that protocol on the spilled
implementation — including the drop-on-expiry tombstoning and the
key-manifest adopt path the lsm snapshot/restore seam depends on.
"""

import shutil
import tempfile

import pytest

from repro.store.lsm import LSMStateStore
from repro.store.spill import SpilledSliceStore, SpillingStoreHost


@pytest.fixture()
def state_dir():
    directory = tempfile.mkdtemp(prefix="spill-test-")
    yield directory
    shutil.rmtree(directory, ignore_errors=True)


def test_slot_view_mapping_protocol(state_dir):
    host = SpillingStoreHost(state_dir, memtable_entries=4)
    store = host.make_slice_store(1_000)
    assert store.slice_start == 1_000
    assert not store
    view = store.setdefault(3)
    assert store.setdefault(3) is view
    assert not view
    view["user-1"] = 10
    view["user-2"] = 20
    view["user-1"] = 11  # overwrite
    assert view.get("user-1") == 11
    assert view.get("ghost", "d") == "d"
    assert "user-2" in view and "ghost" not in view
    assert len(view) == 2 and bool(view)
    assert sorted(view.keys()) == ["user-1", "user-2"]
    assert dict(view.items()) == {"user-1": 11, "user-2": 20}
    assert store.get(3) is view
    assert store.get(9) is None
    assert 3 in store and 9 not in store
    host.close()


def test_items_are_slot_ordered_for_firing_determinism(state_dir):
    host = SpillingStoreHost(state_dir)
    store = host.make_slice_store(0)
    for slot in (5, 1, 3):
        store.setdefault(slot)["k"] = slot
    assert [slot for slot, _view in store.items()] == [1, 3, 5]
    host.close()


def test_slices_share_one_store_without_collisions(state_dir):
    host = SpillingStoreHost(state_dir, memtable_entries=2)
    first = host.make_slice_store(0)
    second = host.make_slice_store(1_000)
    first.setdefault(1)["k"] = "early"
    second.setdefault(1)["k"] = "late"
    assert first.get(1).get("k") == "early"
    assert second.get(1).get("k") == "late"
    assert first.spill_hot() == 1 and second.spill_hot() == 1
    assert len(host.store) == 2
    assert first.get(1).get("k") == "early"  # post-spill read-through
    assert second.get(1).get("k") == "late"
    host.close()


def test_drop_tombstones_and_compaction_reclaims(state_dir):
    host = SpillingStoreHost(state_dir, memtable_entries=2)
    store = host.make_slice_store(0)
    keeper = host.make_slice_store(1_000)
    for key in range(6):
        store.setdefault(0)[key] = key * key
    keeper.setdefault(0)["kept"] = 1
    store.spill_hot()
    keeper.spill_hot()
    host.store.flush()
    assert store.drop() == 6
    assert not store and len(store) == 0
    assert host.store.get((0, 0, 2)) is None
    host.store.compact()
    assert len(host.store) == 1  # only the keeper survives
    assert keeper.get(0).get("kept") == 1
    stats = host.stats()
    assert stats["backend"] == "lsm"
    assert stats["compactions"] == 1
    host.close()


def test_key_manifest_adopt_roundtrip(state_dir):
    host = SpillingStoreHost(state_dir, memtable_entries=4)
    store = host.make_slice_store(500)
    store.setdefault(2)["a"] = (1, 2)
    store.setdefault(2)["b"] = (3, 4)
    store.setdefault(7)["c"] = (5, 6)
    store.setdefault(9)  # empty slot: not in the manifest
    manifest = store.key_manifest()
    assert set(manifest) == {2, 7}
    assert sorted(manifest[2]) == ["a", "b"]
    store.spill_hot()  # the operator's pre-checkpoint barrier
    payload = host.store.checkpoint()

    other_dir = tempfile.mkdtemp(prefix="spill-restore-")
    try:
        restored_host = SpillingStoreHost(other_dir, memtable_entries=4)
        restored_host.store.restore(payload)
        restored = restored_host.make_slice_store(500)
        restored.adopt_keys(manifest)
        assert dict(restored.get(2).items()) == {"a": (1, 2), "b": (3, 4)}
        assert dict(restored.get(7).items()) == {"c": (5, 6)}
        restored_host.close()
    finally:
        host.close()
        shutil.rmtree(other_dir, ignore_errors=True)


def test_host_without_state_dir_owns_a_temp_directory():
    host = SpillingStoreHost(None)
    directory = host.store.directory
    import os

    assert os.path.isdir(directory)
    host.close()
    assert not os.path.exists(directory)


def test_store_standalone_facade():
    backing = LSMStateStore(None, memtable_entries=8)
    store = SpilledSliceStore(backing, 42)
    store.setdefault(0)["x"] = 1
    assert store.get(0).get("x") == 1  # served from the write buffer
    assert backing.get((42, 0, "x")) is None
    assert store.spill_hot() == 1
    assert backing.get((42, 0, "x")) == 1
    backing.close()


def test_write_buffer_overflow_spills_on_its_own():
    backing = LSMStateStore(None, memtable_entries=4)
    store = SpilledSliceStore(backing, 0, buffer_entries=4)
    view = store.setdefault(0)
    for key in range(9):
        view[key] = key * 2
    assert len(backing) > 0  # overflow pushed buffered entries down
    assert dict(view.items()) == {key: key * 2 for key in range(9)}
    assert view.get(0) == 0 and view.get(8) == 16
    backing.close()
