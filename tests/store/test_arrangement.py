"""Property tests for shared arrangements (ISSUE 10 satellite).

The arrangement contract a warm attach relies on: after any insert
history and any frontier advance, a late reader at frontier ``F`` sees
*exactly* the post-``F`` deltas (in time order) plus a compacted prefix
that losslessly folds everything older.  Hypothesis generates the
histories; a dict/list reference model generates the truth.
"""

from hypothesis import given, settings, strategies as st

from repro.store.arrangement import Arrangement, ArrangementManager

KEYS = st.integers(min_value=0, max_value=7)
TIMES = st.integers(min_value=0, max_value=10_000)
DELTAS = st.integers(min_value=-50, max_value=50)
INSERTS = st.lists(st.tuples(TIMES, KEYS, DELTAS), max_size=80)


def _build(inserts):
    arrangement = Arrangement("t", combine=lambda a, b: a + b)
    for time_ms, key, delta in inserts:
        arrangement.insert(time_ms, key, delta)
    return arrangement


class TestFrontierCompaction:
    @given(inserts=INSERTS, frontier=TIMES)
    @settings(max_examples=100, deadline=None)
    def test_late_reader_sees_post_frontier_deltas_plus_prefix(
        self, inserts, frontier
    ):
        arrangement = _build(inserts)
        moved = arrangement.advance_frontier(frontier)
        assert arrangement.frontier == max(0, frontier)
        assert moved == sum(1 for t, _k, _d in inserts if t < frontier)
        for key in {k for _t, k, _d in inserts}:
            pre = [(t, d) for t, k, d in inserts if k == key and t < frontier]
            post = [
                (t, d) for t, k, d in inserts if k == key and t >= frontier
            ]
            prefix, run = arrangement.read(key)
            # Equal-time deltas carry no order contract; compare as a
            # time-sorted multiset and check run times are monotonic.
            assert sorted(run) == sorted(post)
            assert all(a[0] <= b[0] for a, b in zip(run, run[1:]))
            if pre:
                count, combined = prefix
                assert count == len(pre)
                assert combined == sum(d for _t, d in pre)
            else:
                assert prefix is None

    @given(inserts=INSERTS, frontier=TIMES)
    @settings(max_examples=60, deadline=None)
    def test_post_frontier_inserts_behind_frontier_fold_into_prefix(
        self, inserts, frontier
    ):
        """A straggler older than the frontier lands in the prefix, not a run."""
        arrangement = _build(inserts)
        arrangement.advance_frontier(frontier)
        if frontier <= 0:
            return
        key = 99  # untouched by the generated history
        arrangement.insert(frontier - 1, key, 5)
        prefix, run = arrangement.read(key)
        assert run == []
        assert prefix == (1, 5)

    @given(inserts=INSERTS, bounds=st.tuples(TIMES, TIMES))
    @settings(max_examples=100, deadline=None)
    def test_fold_range_matches_reference_fold(self, inserts, bounds):
        start, end = min(bounds), max(bounds)
        arrangement = _build(inserts)
        folded = arrangement.fold_range(
            start, end, initial=int, add=lambda acc, d: acc + d
        )
        reference = {}
        for time_ms, key, delta in inserts:
            if start <= time_ms < end:
                reference[key] = reference.get(key, 0) + delta
        assert folded == reference

    @given(inserts=INSERTS, bounds=st.tuples(TIMES, TIMES))
    @settings(max_examples=60, deadline=None)
    def test_fold_range_accept_filters_deltas(self, inserts, bounds):
        start, end = min(bounds), max(bounds)
        arrangement = _build(inserts)
        folded = arrangement.fold_range(
            start,
            end,
            initial=int,
            add=lambda acc, d: acc + d,
            accept=lambda d: d > 0,
        )
        reference = {}
        for time_ms, key, delta in inserts:
            if start <= time_ms < end and delta > 0:
                reference[key] = reference.get(key, 0) + delta
        assert folded == reference


class TestLeases:
    @given(inserts=INSERTS, floor=TIMES, target=TIMES)
    @settings(max_examples=100, deadline=None)
    def test_lease_floor_bounds_the_frontier(self, inserts, floor, target):
        arrangement = _build(inserts)
        lease = arrangement.acquire_lease("reader", floor=floor)
        arrangement.advance_frontier(target)
        assert arrangement.frontier == max(0, min(target, floor))
        debt = sum(
            1
            for t, _k, _d in inserts
            if arrangement.frontier <= t < target
        )
        assert arrangement.compaction_debt() == debt
        # Releasing the lease lets the remembered target apply in full.
        arrangement.release_lease(lease)
        arrangement.advance_frontier(target)
        assert arrangement.frontier == max(0, target)
        assert arrangement.compaction_debt() == 0

    def test_lease_floor_is_monotonic(self):
        arrangement = Arrangement("t")
        lease = arrangement.acquire_lease("reader", floor=100)
        lease.advance(50)  # backwards: ignored
        assert lease.floor == 100
        lease.advance(200)
        assert lease.floor == 200
        arrangement.release_lease(lease)
        arrangement.release_lease(lease)  # idempotent
        assert arrangement.reader_leases == 0


class TestSplit:
    @given(inserts=INSERTS, frontier=TIMES, parts=st.integers(2, 4))
    @settings(max_examples=60, deadline=None)
    def test_split_partitions_history_losslessly(
        self, inserts, frontier, parts
    ):
        arrangement = _build(inserts)
        arrangement.acquire_lease("reader", floor=frontier)
        arrangement.advance_frontier(frontier)
        owner = lambda key: key % parts
        splits = arrangement.split_by(owner, parts)
        assert len(splits) == parts
        for part in splits:
            assert part.frontier == arrangement.frontier
            assert part.reader_leases == arrangement.reader_leases
        for key in {k for _t, k, _d in inserts}:
            expected = arrangement.read(key)
            for index, part in enumerate(splits):
                if index == owner(key):
                    assert part.read(key) == expected
                else:
                    assert part.read(key) == (None, [])
        merged_deltas = sum(part.arranged_deltas for part in splits)
        assert merged_deltas == arrangement.arranged_deltas


class TestManager:
    def test_manager_creates_once_and_rolls_up(self):
        manager = ArrangementManager()
        a = manager.get_or_create("agg:clicks")
        assert manager.get_or_create("agg:clicks") is a
        b = manager.get_or_create("agg:views")
        a.insert(10, "k", 1)
        b.insert(20, "k", 2)
        assert len(manager) == 2
        assert {arr.name for arr in manager} == {"agg:clicks", "agg:views"}
        rollup = manager.stats()
        assert rollup["arrangement_count"] == 2
        assert rollup["arranged_deltas"] == 2
        assert manager.get("agg:missing") is None
