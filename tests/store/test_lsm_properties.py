"""Property tests for the LSM spill store (ISSUE 10 satellite).

Hypothesis drives random operation sequences — put / delete / flush /
compact / crash-reopen — against an :class:`LSMStateStore` and a plain
dict model in lockstep, then asserts the store's visible contents are
byte-for-byte what the model says.  A second family of properties pins
the checkpoint seam: ``materialize_checkpoint`` of any checkpoint
payload equals the model, restores roundtrip across backends, and a
second checkpoint only ships segments the first did not.
"""

import os
import shutil
import tempfile

import pytest
from hypothesis import given, settings, strategies as st

from repro.store.backend import make_state_store
from repro.store.lsm import LSMStateStore, materialize_checkpoint

KEYS = st.one_of(
    st.integers(min_value=0, max_value=15),
    st.sampled_from(["alpha", "beta", "gamma", ("slot", 1), ("slot", 2)]),
)
VALUES = st.one_of(
    st.integers(),
    st.text(max_size=8),
    st.lists(st.integers(min_value=-9, max_value=9), max_size=4),
)
OPS = st.lists(
    st.one_of(
        st.tuples(st.just("put"), KEYS, VALUES),
        st.tuples(st.just("delete"), KEYS),
        st.tuples(st.just("flush")),
        st.tuples(st.just("compact")),
        st.tuples(st.just("reopen")),
    ),
    max_size=60,
)


def _abandon(store: LSMStateStore) -> None:
    """Simulate a crash: release file handles without flushing anything."""
    for segment in store._segments:
        segment.close()
    if store._wal_file is not None:
        store._wal_file.close()
        store._wal_file = None


def _contents(store: LSMStateStore) -> dict:
    return dict(store.items())


class TestOpSequences:
    @given(ops=OPS)
    @settings(max_examples=60, deadline=None)
    def test_matches_dict_model(self, ops):
        """Any op sequence leaves the store equal to a dict model."""
        directory = tempfile.mkdtemp(prefix="lsm-prop-")
        store = LSMStateStore(directory, memtable_entries=4)
        model = {}
        try:
            for op in ops:
                if op[0] == "put":
                    store.put(op[1], op[2])
                    model[op[1]] = op[2]
                elif op[0] == "delete":
                    store.delete(op[1])
                    model.pop(op[1], None)
                elif op[0] == "flush":
                    store.flush()
                elif op[0] == "compact":
                    store.compact()
                    assert _contents(store) == model
                # "reopen" is only meaningful with the WAL (next test).
            assert _contents(store) == model
            assert len(store) == len(model)
            for key in model:
                assert key in store
                assert store.get(key) == model[key]
            assert store.get("__absent__", 41) == 41
        finally:
            store.close()
            shutil.rmtree(directory, ignore_errors=True)

    @given(ops=OPS)
    @settings(max_examples=40, deadline=None)
    def test_crash_reopen_with_wal_loses_nothing(self, ops):
        """With the WAL on, an unclean reopen replays every buffered write."""
        directory = tempfile.mkdtemp(prefix="lsm-wal-")
        store = LSMStateStore(directory, memtable_entries=8, wal=True)
        model = {}
        try:
            for op in ops:
                if op[0] == "put":
                    store.put(op[1], op[2])
                    model[op[1]] = op[2]
                elif op[0] == "delete":
                    store.delete(op[1])
                    model.pop(op[1], None)
                elif op[0] == "flush":
                    store.flush()
                elif op[0] == "compact":
                    store.compact()
                elif op[0] == "reopen":
                    _abandon(store)
                    store = LSMStateStore(
                        directory, memtable_entries=8, wal=True
                    )
                    assert _contents(store) == model
            _abandon(store)
            store = LSMStateStore(directory, memtable_entries=8, wal=True)
            assert _contents(store) == model
        finally:
            store.close()
            shutil.rmtree(directory, ignore_errors=True)


ENTRY_MAPS = st.dictionaries(KEYS, VALUES, max_size=24)


class TestCheckpointSeam:
    @given(entries=ENTRY_MAPS, removed=st.sets(KEYS, max_size=6))
    @settings(max_examples=60, deadline=None)
    def test_materialize_equals_model(self, entries, removed):
        """materialize_checkpoint sees exactly the live entries."""
        directory = tempfile.mkdtemp(prefix="lsm-ckpt-")
        store = LSMStateStore(directory, memtable_entries=4)
        try:
            for key, value in entries.items():
                store.put(key, value)
            for key in removed:
                store.delete(key)
            expected = {
                k: v for k, v in entries.items() if k not in removed
            }
            payload = store.checkpoint()
            assert payload["backend"] == "lsm"
            assert payload["entries"] == len(expected)
            assert materialize_checkpoint(payload) == expected
        finally:
            store.close()
            shutil.rmtree(directory, ignore_errors=True)

    @given(entries=ENTRY_MAPS)
    @settings(max_examples=40, deadline=None)
    def test_restore_roundtrips_across_backends(self, entries):
        """lsm→lsm, lsm→memory, and memory→lsm restores are lossless."""
        src_dir = tempfile.mkdtemp(prefix="lsm-src-")
        dst_dir = tempfile.mkdtemp(prefix="lsm-dst-")
        src = LSMStateStore(src_dir, memtable_entries=4)
        dst = LSMStateStore(dst_dir, memtable_entries=4)
        mem = make_state_store("memory")
        try:
            for key, value in entries.items():
                src.put(key, value)
            payload = src.checkpoint()
            dst.put("stale", "gone")  # restore must clear prior state
            dst.restore(payload)
            assert _contents(dst) == entries
            mem.restore(payload)
            assert dict(mem.items()) == entries
            back = LSMStateStore(None, memtable_entries=4)
            back.restore(mem.checkpoint())
            assert _contents(back) == entries
            back.close()
        finally:
            src.close()
            dst.close()
            shutil.rmtree(src_dir, ignore_errors=True)
            shutil.rmtree(dst_dir, ignore_errors=True)

    def test_second_checkpoint_ships_only_new_segments(self):
        directory = tempfile.mkdtemp(prefix="lsm-incr-")
        store = LSMStateStore(directory, memtable_entries=4)
        try:
            for i in range(16):
                store.put(i, i * i)
            first = store.checkpoint()
            assert sorted(first["new_segments"]) == sorted(first["segments"])
            assert first["new_bytes"] == first["bytes"] > 0
            for i in range(16, 24):
                store.put(i, i * i)
            second = store.checkpoint()
            assert set(first["segments"]) <= set(second["segments"])
            assert not set(second["new_segments"]) & set(first["segments"])
            assert second["new_bytes"] < second["bytes"]
            # Pinned segments survive compaction, so the first
            # checkpoint stays restorable after the store moves on.
            store.compact()
            assert materialize_checkpoint(first) == {
                i: i * i for i in range(16)
            }
        finally:
            store.close()
            shutil.rmtree(directory, ignore_errors=True)


class TestCapacity:
    def test_many_distinct_keys_under_capped_memtable(self):
        """Keys far beyond the memtable cap spill and stay readable.

        The acceptance-scale run (1M+ distinct keys) is exercised by
        ``benchmarks/bench_ablation_storage.py --keys 1000000``; here a
        40k-key sweep — 20x the memtable cap — keeps the property in
        the tier-1 suite without minutes of pickling.
        """
        directory = tempfile.mkdtemp(prefix="lsm-cap-")
        store = LSMStateStore(directory, memtable_entries=2_048)
        try:
            total = 40_000
            for i in range(total):
                store.put(i, (i, i % 7))
            assert len(store) == total
            stats = store.stats()
            assert stats["segments"] > 0
            assert stats["memtable_entries"] <= 2_048
            assert stats["spilled_bytes"] > 0
            for probe in (0, 1, 17, 2_047, 2_048, total // 2, total - 1):
                assert store.get(probe) == (probe, probe % 7)
            store.compact()
            assert len(store._segments) == 1
            assert store.get(total - 1) == (total - 1, (total - 1) % 7)
        finally:
            store.close()
            shutil.rmtree(directory, ignore_errors=True)

    def test_memtable_cap_is_validated(self):
        with pytest.raises(ValueError):
            LSMStateStore(None, memtable_entries=0)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            make_state_store("rocksdb")
