"""Tests for CSV trace ingestion and export."""

import pytest

from repro.workloads.datagen import DataGenerator, DataTuple
from repro.workloads.traces import (
    TraceError,
    read_csv_stream,
    sorted_by_time,
    write_csv_stream,
)


def _write(tmp_path, text):
    target = tmp_path / "trace.csv"
    target.write_text(text)
    return target


class TestReadCsvStream:
    def test_basic_read(self, tmp_path):
        path = _write(
            tmp_path,
            "ts,user,price,qty\n"
            "1000,7,19.5,3\n"
            "1500,8,2,1\n",
        )
        stream = list(
            read_csv_stream(path, "ts", "user", field_columns=("price", "qty"))
        )
        assert stream[0][0] == 1_000
        assert stream[0][1] == DataTuple(key=7, fields=(19.5, 3, 0, 0, 0))
        assert stream[1][1].key == 8

    def test_no_field_columns(self, tmp_path):
        path = _write(tmp_path, "ts,k\n5,1\n")
        ((timestamp, value),) = read_csv_stream(path, "ts", "k")
        assert timestamp == 5
        assert value.fields == (0, 0, 0, 0, 0)

    def test_missing_column_rejected(self, tmp_path):
        path = _write(tmp_path, "ts,k\n5,1\n")
        with pytest.raises(TraceError, match="missing columns"):
            list(read_csv_stream(path, "ts", "k", field_columns=("nope",)))

    def test_too_many_field_columns_rejected(self, tmp_path):
        path = _write(tmp_path, "ts,k\n")
        with pytest.raises(TraceError, match="at most 5"):
            list(read_csv_stream(path, "ts", "k", field_columns=("a",) * 6))

    def test_bad_value_reports_line(self, tmp_path):
        path = _write(tmp_path, "ts,k\n5,1\nbroken,2\n")
        with pytest.raises(TraceError, match=":3:"):
            list(read_csv_stream(path, "ts", "k"))

    def test_empty_file_rejected(self, tmp_path):
        path = _write(tmp_path, "")
        with pytest.raises(TraceError, match="empty file"):
            list(read_csv_stream(path, "ts", "k"))


class TestRoundTrip:
    def test_write_then_read(self, tmp_path):
        generator = DataGenerator(seed=4)
        original = list(generator.timestamped(25, 0, 100))
        path = tmp_path / "export.csv"
        write_csv_stream(path, original)
        restored = list(
            read_csv_stream(
                path, "timestamp_ms", "key",
                field_columns=("f0", "f1", "f2", "f3", "f4"),
            )
        )
        assert restored == original

    def test_write_validates_field_names(self, tmp_path):
        with pytest.raises(TraceError, match="exactly 5"):
            write_csv_stream(tmp_path / "x.csv", [], field_names=("a",))


class TestSortedByTime:
    def test_sorts_stable(self):
        value = DataTuple(key=1, fields=(0,) * 5)
        other = DataTuple(key=2, fields=(0,) * 5)
        stream = iter([(5, value), (1, other), (5, other)])
        ordered = sorted_by_time(stream)
        assert [ts for ts, _ in ordered] == [1, 5, 5]
        assert ordered[1][1] is value  # stable on ties


class TestTraceDrivesEngine:
    def test_trace_replay_through_engine(self, tmp_path):
        from repro.core.query import SelectionQuery, TruePredicate
        from tests.conftest import go_live, make_engine

        path = _write(
            tmp_path,
            "ts,k,v\n" + "".join(f"{ts},{ts % 3},{ts % 7}\n"
                                 for ts in range(0, 1_000, 50)),
        )
        engine = make_engine()
        query = SelectionQuery(
            stream="A", predicate=TruePredicate(), query_id="trace-q"
        )
        go_live(engine, [query], now_ms=0)
        count = 0
        for timestamp, value in read_csv_stream(path, "ts", "k", ("v",)):
            engine.push("A", timestamp, value)
            count += 1
        assert engine.result_count("trace-q") == count == 20
