"""Tests for the query generator templates."""

import pytest

from repro.core.query import (
    AggregationQuery,
    ComplexQuery,
    JoinQuery,
    SelectionQuery,
    WindowKind,
)
from repro.workloads.datagen import FIELD_COUNT
from repro.workloads.querygen import QueryGenerator


class TestPredicateGeneration:
    def test_field_indices_in_range(self):
        generator = QueryGenerator(seed=3)
        for _ in range(100):
            predicate = generator.random_predicate()
            assert 0 <= predicate.field_index < FIELD_COUNT
            assert 0 <= predicate.constant < generator.fields_max

    def test_deterministic(self):
        first = [QueryGenerator(seed=9).random_predicate() for _ in range(10)]
        second = [QueryGenerator(seed=9).random_predicate() for _ in range(10)]
        assert first == second


class TestWindowGeneration:
    def test_lengths_within_bounds(self):
        generator = QueryGenerator(seed=1, window_max_seconds=4)
        for _ in range(100):
            spec = generator.random_window()
            assert 1_000 <= spec.length_ms <= 4_000
            assert 1_000 <= spec.slide_ms <= spec.length_ms
            assert spec.length_ms % 1_000 == 0

    def test_session_window(self):
        spec = QueryGenerator(seed=1).random_session_window(gap_max_seconds=2)
        assert spec.kind is WindowKind.SESSION
        assert 1_000 <= spec.gap_ms <= 2_000


class TestQueryTemplates:
    def test_join_query_shape(self):
        query = QueryGenerator(streams=("A", "B"), seed=2).join_query()
        assert isinstance(query, JoinQuery)
        assert query.streams == ("A", "B")

    def test_join_needs_two_streams(self):
        with pytest.raises(ValueError):
            QueryGenerator(streams=("A",)).join_query()

    def test_aggregation_query_shape(self):
        query = QueryGenerator(seed=2).aggregation_query()
        assert isinstance(query, AggregationQuery)
        assert query.aggregation.field_index == 0  # SUM(A.FIELD1)

    def test_selection_query_shape(self):
        query = QueryGenerator(seed=2).selection_query(stream="B")
        assert isinstance(query, SelectionQuery)
        assert query.stream == "B"

    def test_complex_query_arity_bounds(self):
        generator = QueryGenerator(
            streams=("A", "B", "C", "D", "E", "F"), seed=4, max_join_arity=5
        )
        arities = {generator.complex_query().join_arity for _ in range(50)}
        assert arities <= {1, 2, 3, 4, 5}
        assert len(arities) > 1  # randomised

    def test_complex_query_uses_prefix_streams(self):
        generator = QueryGenerator(streams=("A", "B", "C"), seed=4)
        for _ in range(20):
            query = generator.complex_query()
            assert query.join_streams == generator.streams[: len(query.join_streams)]

    def test_complex_needs_two_streams(self):
        with pytest.raises(ValueError):
            QueryGenerator(streams=("A",)).complex_query()

    def test_dispatch(self):
        generator = QueryGenerator(streams=("A", "B"), seed=1)
        assert isinstance(generator.query("join"), JoinQuery)
        assert isinstance(generator.query("agg"), AggregationQuery)
        assert isinstance(generator.query("aggregation"), AggregationQuery)
        assert isinstance(generator.query("selection"), SelectionQuery)
        assert isinstance(generator.query("complex"), ComplexQuery)
        with pytest.raises(ValueError):
            generator.query("nope")

    def test_validation(self):
        with pytest.raises(ValueError):
            QueryGenerator(streams=())
        with pytest.raises(ValueError):
            QueryGenerator(window_max_seconds=0)
        with pytest.raises(ValueError):
            QueryGenerator(selective_fraction=2.0)
