"""Tests for the §4.2.1 data generator."""

import pytest
from hypothesis import given, strategies as st

from repro.workloads.datagen import (
    DEFAULT_FIELDS_MAX,
    DEFAULT_KEY_MAX,
    FIELD_COUNT,
    DataGenerator,
    DataTuple,
)


class TestDataTuple:
    def test_field_count_enforced(self):
        with pytest.raises(ValueError):
            DataTuple(key=0, fields=(1, 2, 3))

    def test_frozen(self):
        value = DataTuple(key=0, fields=(0,) * FIELD_COUNT)
        with pytest.raises(Exception):
            value.key = 1


class TestGenerator:
    def test_round_robin_keys(self):
        generator = DataGenerator(key_max=3)
        keys = [generator.next_tuple().key for _ in range(7)]
        assert keys == [0, 1, 2, 0, 1, 2, 0]

    def test_fields_within_range(self):
        generator = DataGenerator(seed=1, fields_max=10)
        for value in generator.tuples(200):
            assert len(value.fields) == FIELD_COUNT
            assert all(0 <= field < 10 for field in value.fields)

    def test_deterministic_under_seed(self):
        assert DataGenerator(seed=5).tuples(50) == DataGenerator(seed=5).tuples(50)

    def test_different_seeds_differ(self):
        assert DataGenerator(seed=1).tuples(50) != DataGenerator(seed=2).tuples(50)

    def test_defaults_match_paper(self):
        assert DEFAULT_KEY_MAX == 1_000
        assert FIELD_COUNT == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            DataGenerator(key_max=0)
        with pytest.raises(ValueError):
            DataGenerator(fields_max=0)
        with pytest.raises(ValueError):
            DataGenerator().tuples(-1)


class TestTimestamped:
    def test_rate_spacing(self):
        generator = DataGenerator()
        stamped = list(generator.timestamped(5, start_ms=1_000, rate_per_second=4))
        assert [ts for ts, _ in stamped] == [1_000, 1_250, 1_500, 1_750, 2_000]

    def test_high_rate_shares_milliseconds(self):
        generator = DataGenerator()
        stamped = list(
            generator.timestamped(4, start_ms=0, rate_per_second=4_000)
        )
        assert [ts for ts, _ in stamped] == [0, 0, 0, 0]

    def test_validation(self):
        with pytest.raises(ValueError):
            list(DataGenerator().timestamped(1, 0, rate_per_second=0))
        with pytest.raises(ValueError):
            list(DataGenerator().timestamped(-1, 0, rate_per_second=1))

    @given(st.integers(1, 200), st.floats(min_value=0.5, max_value=5_000))
    def test_timestamps_monotone(self, count, rate):
        stamped = list(DataGenerator().timestamped(count, 0, rate))
        timestamps = [ts for ts, _ in stamped]
        assert timestamps == sorted(timestamps)
        assert len(stamped) == count
