"""Tests for the Figure 5 driver."""

import random

import pytest

from repro.core.engine import AStreamEngine, EngineConfig
from repro.core.qos import QoSMonitor
from repro.baseline import QueryAtATimeEngine
from repro.minispe.cluster import ClusterSpec, SimulatedCluster
from repro.workloads.driver import (
    AStreamAdapter,
    BaselineAdapter,
    Driver,
    DriverConfig,
    RetryPolicy,
    RunReport,
)
from repro.workloads.querygen import QueryGenerator
from repro.workloads.scenarios import sc1_schedule, sc2_schedule


def _astream_driver(schedule, config=None, qos=None):
    qos = qos or QoSMonitor(sample_every=8)
    engine = AStreamEngine(
        EngineConfig(streams=("A", "B"), parallelism=1),
        cluster=SimulatedCluster(ClusterSpec(nodes=4)),
        on_deliver=qos.on_deliver,
    )
    return Driver(
        AStreamAdapter(engine),
        schedule,
        ("A", "B"),
        config or DriverConfig(input_rate_tps=200, duration_s=6.0),
        qos=qos,
    )


class TestDriverRuns:
    def test_sc1_run_produces_report(self):
        schedule = sc1_schedule(
            QueryGenerator(streams=("A", "B"), seed=3), 1, 3, kind="join"
        )
        report = _astream_driver(schedule).run()
        assert report.tuples_pushed > 0
        assert report.wall_seconds > 0
        assert report.service_rate_tps > 0
        assert report.active_queries_final == 3
        assert len(report.deployment_latencies_ms) == 3
        assert report.sustained

    def test_sc2_run_deletes_queries(self):
        schedule = sc2_schedule(
            QueryGenerator(streams=("A", "B"), seed=3), 2, 2, 3, kind="agg"
        )
        report = _astream_driver(schedule).run()
        assert report.active_queries_final == 2  # last batch only

    def test_active_queries_series_monotone_under_sc1(self):
        schedule = sc1_schedule(
            QueryGenerator(streams=("A", "B"), seed=3), 1, 3, kind="agg"
        )
        report = _astream_driver(schedule).run()
        counts = [count for _, count in report.active_queries_series]
        assert counts == sorted(counts)

    def test_latency_sampled(self):
        schedule = sc1_schedule(
            QueryGenerator(streams=("A", "B"), seed=3), 2, 2, kind="agg"
        )
        report = _astream_driver(schedule).run()
        assert report.mean_event_latency_ms >= 0

    def test_step_rate_series_populated(self):
        schedule = sc1_schedule(
            QueryGenerator(streams=("A", "B"), seed=3), 1, 2, kind="agg"
        )
        report = _astream_driver(schedule).run()
        assert report.step_rate_series
        assert all(rate > 0 for _, rate in report.step_rate_series)


class TestBaselineAdapter:
    def test_deployment_queueing(self):
        """Requests serialise on the job manager: latencies climb."""
        schedule = sc1_schedule(
            QueryGenerator(streams=("A", "B"), seed=3), 1, 4, kind="join"
        )
        qos = QoSMonitor(sample_every=8)
        engine = QueryAtATimeEngine(
            cluster=SimulatedCluster(ClusterSpec(nodes=8)),
            parallelism=1,
            on_deliver=qos.on_deliver,
        )
        driver = Driver(
            BaselineAdapter(engine),
            schedule,
            ("A", "B"),
            DriverConfig(input_rate_tps=100, duration_s=6.0),
            qos=qos,
        )
        report = driver.run()
        latencies = report.deployment_latencies_ms
        assert latencies == sorted(latencies)
        assert latencies[-1] - latencies[0] > 5_000

    def test_capacity_failure_recorded(self):
        schedule = sc1_schedule(
            QueryGenerator(streams=("A", "B"), seed=3), 10, 50, kind="join"
        )
        engine = QueryAtATimeEngine(
            cluster=SimulatedCluster(ClusterSpec(nodes=1, cores_per_node=8)),
            parallelism=1,
        )
        driver = Driver(
            BaselineAdapter(engine),
            schedule,
            ("A", "B"),
            DriverConfig(input_rate_tps=50, duration_s=8.0),
        )
        report = driver.run()
        assert not report.sustained
        assert "capacity" in report.failure


class TestQueueModel:
    def test_overload_marks_unsustainable(self):
        report = RunReport(name="synthetic", input_rate_tps=1_000_000.0)
        report.tuples_pushed = 10_000
        report.wall_seconds = 10.0  # capacity = 1_000 t/s << arrival
        schedule = sc1_schedule(
            QueryGenerator(streams=("A", "B"), seed=3), 1, 1
        )
        driver = _astream_driver(
            schedule, DriverConfig(input_rate_tps=500_000, duration_s=4.0)
        )
        driver._queue_model(report)
        assert not report.sustained
        assert "exceeds measured capacity" in report.failure
        assert report.queue_wait_final_ms > 0

    def test_underload_stays_sustained(self):
        report = RunReport(name="synthetic", input_rate_tps=100.0)
        report.tuples_pushed = 10_000
        report.wall_seconds = 1.0  # capacity 10k >> arrival
        schedule = sc1_schedule(
            QueryGenerator(streams=("A", "B"), seed=3), 1, 1
        )
        driver = _astream_driver(schedule)
        driver._queue_model(report)
        assert report.sustained
        assert report.queue_wait_final_ms == 0


class TestReportDerivedMetrics:
    def test_throughput_views(self):
        report = RunReport(name="r")
        report.tuples_pushed = 1_000
        report.wall_seconds = 2.0
        report.active_queries_final = 10
        assert report.service_rate_tps == 500
        assert report.slowest_throughput_tps(speedup=2.0) == 1_000
        assert report.overall_throughput_tps(speedup=1.0) == 5_000

    def test_empty_report_safe(self):
        report = RunReport(name="empty")
        assert report.service_rate_tps == 0.0
        assert report.mean_deployment_latency_ms() == 0.0
        assert report.total_latency_ms() == 0.0


class TestRetryPolicy:
    def test_backoff_grows_exponentially_without_jitter(self):
        policy = RetryPolicy(
            backoff_base_ms=100, backoff_multiplier=2.0, jitter_ms=0
        )
        rng = random.Random(0)
        assert [policy.backoff_ms(a, rng) for a in (1, 2, 3)] == [100, 200, 400]

    def test_jitter_is_bounded_and_seed_deterministic(self):
        policy = RetryPolicy(backoff_base_ms=200, jitter_ms=50)
        first = [policy.backoff_ms(1, random.Random(7)) for _ in range(5)]
        second = [policy.backoff_ms(1, random.Random(7)) for _ in range(5)]
        assert first == second
        assert all(200 <= value <= 250 for value in first)

    def test_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="backoff_multiplier"):
            RetryPolicy(backoff_multiplier=0.5)


class TestDriverResilience:
    """Submission retry/backoff and the dead-letter queue."""

    def _overloaded_baseline_driver(self, retry):
        schedule = sc1_schedule(
            QueryGenerator(streams=("A", "B"), seed=3), 10, 50, kind="join"
        )
        engine = QueryAtATimeEngine(
            cluster=SimulatedCluster(ClusterSpec(nodes=1, cores_per_node=8)),
            parallelism=1,
        )
        return Driver(
            BaselineAdapter(engine),
            schedule,
            ("A", "B"),
            DriverConfig(input_rate_tps=50, duration_s=8.0),
            retry=retry,
        )

    def test_capacity_errors_retry_then_dead_letter(self):
        report = self._overloaded_baseline_driver(RetryPolicy()).run()
        # With a retry policy the run survives the capacity exhaustion...
        assert report.failure is None
        assert report.tuples_pushed > 0
        # ...after backing off and re-trying each rejected submission.
        assert report.submit_retries > 0
        dead_requests = [
            letter for letter in report.dead_letters if letter.kind == "request"
        ]
        assert dead_requests
        exhausted = [
            letter for letter in dead_requests
            if letter.attempts == RetryPolicy().max_attempts
        ]
        assert exhausted
        assert "slots" in exhausted[0].reason

    def test_without_retry_capacity_error_aborts_the_feed(self):
        report = self._overloaded_baseline_driver(None).run()
        assert not report.sustained
        assert "capacity" in report.failure

    def test_retry_accounting_is_deterministic(self):
        def counters():
            report = self._overloaded_baseline_driver(RetryPolicy()).run()
            return (
                report.submit_retries,
                report.ack_timeouts,
                [
                    (letter.kind, letter.at_ms, letter.attempts)
                    for letter in report.dead_letters
                ],
            )

        assert counters() == counters()

    def test_plain_runs_unchanged_by_resilience_fields(self):
        schedule = sc1_schedule(
            QueryGenerator(streams=("A", "B"), seed=3), 1, 3, kind="join"
        )
        report = _astream_driver(schedule).run()
        assert report.submit_retries == 0
        assert report.tuple_retries == 0
        assert report.ack_timeouts == 0
        assert report.dead_letters == []
        assert report.recovery_events == []
