"""Tests for SC1/SC2 workload schedules."""

import pytest

from repro.workloads.querygen import QueryGenerator
from repro.workloads.scenarios import (
    ScheduledRequest,
    WorkloadSchedule,
    sc1_schedule,
    sc2_schedule,
    single_query_schedule,
)


def _generator():
    return QueryGenerator(streams=("A", "B"), seed=0)


class TestScheduledRequest:
    def test_validation(self):
        with pytest.raises(ValueError):
            ScheduledRequest(at_ms=0, kind="create")
        with pytest.raises(ValueError):
            ScheduledRequest(at_ms=0, kind="delete")


class TestSC1:
    def test_request_spacing(self):
        schedule = sc1_schedule(_generator(), queries_per_second=2, query_parallelism=4)
        times = [request.at_ms for request in schedule.sorted()]
        assert times == [0, 500, 1_000, 1_500]
        assert all(request.kind == "create" for request in schedule.requests)

    def test_peak_parallelism(self):
        schedule = sc1_schedule(_generator(), 1, 10)
        assert schedule.peak_parallelism == 10
        assert len(schedule) == 10

    def test_kind_propagated(self):
        schedule = sc1_schedule(_generator(), 1, 3, kind="agg")
        assert all("agg" in r.query.query_id for r in schedule.requests)

    def test_validation(self):
        with pytest.raises(ValueError):
            sc1_schedule(_generator(), 0, 10)
        with pytest.raises(ValueError):
            sc1_schedule(_generator(), 1, 0)


class TestSC2:
    def test_batches_create_and_delete(self):
        schedule = sc2_schedule(
            _generator(), queries_per_batch=3, batch_interval_s=10, batches=3
        )
        creates = [r for r in schedule.requests if r.kind == "create"]
        deletes = [r for r in schedule.requests if r.kind == "delete"]
        assert len(creates) == 9
        assert len(deletes) == 6  # first batch deleted at t=10s, second at 20s

    def test_steady_state_parallelism_is_batch_size(self):
        # Deletes of the previous batch land before the new creations at
        # each boundary, so parallelism never exceeds the batch size.
        schedule = sc2_schedule(_generator(), 5, 10, 4)
        assert schedule.peak_parallelism == 5

    def test_deletes_reference_previous_batch(self):
        schedule = sc2_schedule(_generator(), 2, 10, 2)
        first_batch_ids = {
            r.query.query_id
            for r in schedule.requests
            if r.kind == "create" and r.at_ms == 0
        }
        deleted_ids = {r.query_id for r in schedule.requests if r.kind == "delete"}
        assert deleted_ids == first_batch_ids

    def test_validation(self):
        with pytest.raises(ValueError):
            sc2_schedule(_generator(), 0, 10, 1)
        with pytest.raises(ValueError):
            sc2_schedule(_generator(), 1, 0, 1)
        with pytest.raises(ValueError):
            sc2_schedule(_generator(), 1, 10, 0)


class TestSingle:
    def test_single_query(self):
        schedule = single_query_schedule(_generator(), kind="join")
        assert len(schedule) == 1
        assert schedule.requests[0].kind == "create"


class TestSorting:
    def test_sorted_stable_on_ties(self):
        generator = _generator()
        first = generator.join_query()
        second = generator.join_query()
        schedule = WorkloadSchedule(
            name="tie",
            requests=[
                ScheduledRequest(at_ms=5, kind="create", query=first),
                ScheduledRequest(at_ms=5, kind="create", query=second),
            ],
        )
        ordered = schedule.sorted()
        assert ordered[0].query is first
        assert ordered[1].query is second
