"""Tests for the NEXMark-flavoured workload."""

import pytest

from repro.workloads.nexmark import (
    AUCTIONS,
    BIDS,
    CATEGORY,
    CATEGORY_COUNT,
    PRICE,
    RESERVE,
    NexmarkConfig,
    NexmarkGenerator,
    category_revenue,
    currency_filter,
    hot_items,
    winning_bids,
)
from tests.conftest import go_live, make_engine


class TestGenerator:
    def test_deterministic(self):
        first = [NexmarkGenerator(NexmarkConfig(seed=5)).bid() for _ in range(1)]
        second = [NexmarkGenerator(NexmarkConfig(seed=5)).bid() for _ in range(1)]
        assert first == second

    def test_auction_attributes_stable_per_id(self):
        generator = NexmarkGenerator(NexmarkConfig(auctions=3))
        listings = [generator.auction() for _ in range(6)]
        assert listings[0] == listings[3]
        assert listings[1] == listings[4]

    def test_bid_fields_in_range(self):
        generator = NexmarkGenerator(NexmarkConfig(auctions=10, seed=2))
        for _ in range(200):
            bid = generator.bid()
            assert 0 <= bid.key < 10
            assert bid.fields[PRICE] >= 1
            assert 0 <= bid.fields[CATEGORY] < CATEGORY_COUNT

    def test_bid_category_matches_auction(self):
        generator = NexmarkGenerator(NexmarkConfig(auctions=5, seed=1))
        catalogue = {listing.key: listing for listing in
                     (generator.auction() for _ in range(5))}
        for _ in range(100):
            bid = generator.bid()
            assert bid.fields[CATEGORY] == catalogue[bid.key].fields[CATEGORY]

    def test_timestamped_streams(self):
        generator = NexmarkGenerator()
        stamped = list(generator.timestamped_bids(4, 1_000, 2))
        assert [ts for ts, _ in stamped] == [1_000, 1_500, 2_000, 2_500]


class TestQueriesOnEngine:
    def _engine_with(self, queries):
        engine = make_engine(streams=(BIDS, AUCTIONS))
        go_live(engine, queries, now_ms=0)
        return engine

    def test_currency_filter(self):
        query = currency_filter(min_price=500, query_id="nx-filter")
        engine = self._engine_with([query])
        generator = NexmarkGenerator(NexmarkConfig(seed=3))
        prices = []
        for ts, bid in generator.timestamped_bids(200, 0, 100):
            prices.append(bid.fields[PRICE])
            engine.push(BIDS, ts, bid)
        expected = sum(1 for price in prices if price >= 500)
        assert engine.result_count("nx-filter") == expected > 0

    def test_hot_items_counts_bids_per_auction(self):
        query = hot_items(window_s=2, slide_s=2, query_id="nx-hot")
        engine = self._engine_with([query])
        generator = NexmarkGenerator(NexmarkConfig(auctions=4, seed=4))
        bids_in_window = 0
        for ts, bid in generator.timestamped_bids(100, 0, 50):
            engine.push(BIDS, ts, bid)
            if ts < 2_000:
                bids_in_window += 1
        engine.watermark(10_000)
        outputs = [
            output
            for output in engine.results("nx-hot")
            if output.value.window.start == 0
        ]
        assert sum(output.value.value for output in outputs) == bids_in_window

    def test_winning_bids_join(self):
        query = winning_bids(min_price=0, window_s=5, query_id="nx-win")
        engine = self._engine_with([query])
        generator = NexmarkGenerator(NexmarkConfig(auctions=6, seed=5))
        for ts, listing in generator.timestamped_auctions(6, 0, 10):
            engine.push(AUCTIONS, ts, listing)
        for ts, bid in generator.timestamped_bids(50, 0, 20):
            engine.push(BIDS, ts, bid)
        engine.watermark(20_000)
        outputs = engine.results("nx-win")
        assert outputs
        for output in outputs:
            bid, listing = output.value.parts
            assert bid.key == listing.key == output.value.key
        winners = [
            output
            for output in outputs
            if output.value.parts[0].fields[PRICE]
            >= output.value.parts[1].fields[RESERVE]
        ]
        assert winners  # somebody met a reserve

    def test_category_revenue(self):
        query = category_revenue(category=3, window_s=4, query_id="nx-rev")
        engine = self._engine_with([query])
        generator = NexmarkGenerator(NexmarkConfig(auctions=30, seed=6))
        expected = 0
        for ts, bid in generator.timestamped_bids(300, 0, 100):
            engine.push(BIDS, ts, bid)
            if ts < 4_000 and bid.fields[CATEGORY] == 3:
                expected += bid.fields[PRICE]
        engine.watermark(30_000)
        first_window = [
            output
            for output in engine.results("nx-rev")
            if output.value.window.start == 0
        ]
        assert sum(output.value.value for output in first_window) == expected
