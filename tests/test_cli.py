"""Tests for the command-line entry point."""

import pytest

from repro.__main__ import main


class TestList:
    def test_lists_all_figures(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for number in range(9, 21):
            assert f"fig{number:02d}" in out


class TestFigures:
    def test_single_quick_figure(self, capsys):
        assert main(["figures", "--only", "fig10"]) == 0
        out = capsys.readouterr().out
        assert "Figure 10" in out
        assert "astream" in out
        assert "completed in" in out

    def test_unknown_figure_rejected(self, capsys):
        assert main(["figures", "--only", "fig99"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiments" in err


class TestSql:
    def test_parse_and_describe(self, capsys):
        code = main(
            ["sql", "SELECT * FROM A, B RANGE 3 WHERE A.KEY = B.KEY"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "JoinQuery" in out
        assert "join:A~B" in out
        assert "-> sink" in out

    def test_bad_sql_fails(self, capsys):
        assert main(["sql", "DROP TABLE users"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            main([])


class TestSqlJson:
    def test_json_output_round_trips(self, capsys):
        import json

        from repro.core.serde import query_from_dict

        code = main(
            ["sql", "--json",
             "SELECT SUM(A.F0) FROM A RANGE 2 GROUP BY KEY"]
        )
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        query = query_from_dict(document)
        assert query.window_spec.length_ms == 2_000


class TestFiguresCsv:
    def test_csv_written(self, capsys, tmp_path):
        assert main(["figures", "--only", "fig10", "--csv", str(tmp_path)]) == 0
        target = tmp_path / "fig10.csv"
        assert target.exists()
        header = target.read_text().splitlines()[0]
        assert "latency_s" in header


class TestSummary:
    def test_prints_saved_results(self, capsys):
        # benchmarks/results is populated by earlier benchmark runs in
        # this repository; the command just concatenates the tables.
        code = main(["summary"])
        out = capsys.readouterr().out
        if code == 0:
            assert "Figure" in out or "Ablation" in out
        # (code 1 with a hint is acceptable on a fresh clone)
