"""Tests for the shared windowed aggregation."""

import pytest

from repro.core.query import (
    AggregationKind,
    AggregationQuery,
    AggregationSpec,
    Comparison,
    FieldPredicate,
    TruePredicate,
    WindowSpec,
)
from tests.conftest import field_tuple, go_live, make_engine
from tests.core.oracle import agg_outputs_multiset, expected_agg_multiset


def _agg(window, predicate=None, spec=None, name=None, stream="A"):
    kwargs = {}
    if name:
        kwargs["query_id"] = name
    return AggregationQuery(
        stream=stream,
        predicate=predicate or TruePredicate(),
        window_spec=window,
        aggregation=spec or AggregationSpec(field_index=0),
        **kwargs,
    )


def _push(engine, tuples, stream="A"):
    for ts, value in tuples:
        engine.push(stream, ts, value)


class TestSingleQueryCorrectness:
    def test_tumbling_sum_matches_oracle(self):
        engine = make_engine()
        query = _agg(WindowSpec.tumbling(1_000))
        go_live(engine, [query], now_ms=0)
        tuples = [
            (ts, field_tuple(key=ts % 3, f0=ts % 10)) for ts in range(0, 4_000, 130)
        ]
        _push(engine, tuples)
        engine.watermark(8_000)
        assert agg_outputs_multiset(
            engine.results(query.query_id)
        ) == expected_agg_multiset(query, 0, tuples, 8_000)

    def test_sliding_window_matches_oracle(self):
        engine = make_engine()
        query = _agg(WindowSpec.sliding(3_000, 1_000))
        go_live(engine, [query], now_ms=0)
        tuples = [(ts, field_tuple(key=1, f0=1)) for ts in range(0, 6_000, 400)]
        _push(engine, tuples)
        engine.watermark(10_000)
        assert agg_outputs_multiset(
            engine.results(query.query_id)
        ) == expected_agg_multiset(query, 0, tuples, 10_000)

    def test_predicate_applied(self):
        engine = make_engine()
        query = _agg(
            WindowSpec.tumbling(1_000),
            predicate=FieldPredicate(1, Comparison.GT, 5),
        )
        go_live(engine, [query], now_ms=0)
        tuples = [
            (100, field_tuple(key=1, f0=10, f1=9)),   # passes
            (200, field_tuple(key=1, f0=99, f1=2)),   # filtered
        ]
        _push(engine, tuples)
        engine.watermark(4_000)
        outputs = engine.results(query.query_id)
        assert len(outputs) == 1
        assert outputs[0].value.value == 10

    @pytest.mark.parametrize(
        "kind,expected",
        [
            (AggregationKind.SUM, 9),
            (AggregationKind.COUNT, 3),
            (AggregationKind.MIN, 2),
            (AggregationKind.MAX, 4),
            (AggregationKind.AVG, 3.0),
        ],
    )
    def test_aggregation_kinds(self, kind, expected):
        engine = make_engine()
        query = _agg(
            WindowSpec.tumbling(1_000),
            spec=AggregationSpec(kind, field_index=0),
        )
        go_live(engine, [query], now_ms=0)
        for ts, value in ((100, 2), (200, 3), (300, 4)):
            engine.push("A", ts, field_tuple(key=1, f0=value))
        engine.watermark(4_000)
        assert engine.results(query.query_id)[0].value.value == expected

    def test_parallel_instances_match_oracle(self):
        engine = make_engine(parallelism=3)
        query = _agg(WindowSpec.tumbling(2_000))
        go_live(engine, [query], now_ms=0)
        tuples = [
            (ts, field_tuple(key=ts % 7, f0=ts % 13)) for ts in range(0, 6_000, 170)
        ]
        _push(engine, tuples)
        engine.watermark(10_000)
        assert agg_outputs_multiset(
            engine.results(query.query_id)
        ) == expected_agg_multiset(query, 0, tuples, 10_000)


class TestMultiQuerySharing:
    def test_tuple_folds_into_every_interested_query(self):
        """§3.1.5: a tuple with query code 101 updates Q1 and Q3."""
        engine = make_engine()
        queries = [
            _agg(WindowSpec.tumbling(1_000), name="q1"),
            _agg(
                WindowSpec.tumbling(1_000),
                predicate=FieldPredicate(0, Comparison.GT, 1_000),
                name="q2",
            ),
            _agg(WindowSpec.tumbling(1_000), name="q3"),
        ]
        go_live(engine, queries, now_ms=0)
        engine.push("A", 100, field_tuple(key=1, f0=7))
        engine.watermark(4_000)
        assert engine.result_count("q1") == 1
        assert engine.result_count("q2") == 0
        assert engine.result_count("q3") == 1

    def test_mixed_windows_match_oracles(self):
        engine = make_engine()
        queries = [
            _agg(WindowSpec.tumbling(1_000), name="a1"),
            _agg(WindowSpec.sliding(2_000, 500), name="a2"),
            _agg(
                WindowSpec.tumbling(3_000),
                spec=AggregationSpec(AggregationKind.COUNT),
                name="a3",
            ),
        ]
        go_live(engine, queries, now_ms=0)
        tuples = [
            (ts, field_tuple(key=ts % 2, f0=ts % 5)) for ts in range(0, 5_000, 230)
        ]
        _push(engine, tuples)
        engine.watermark(9_000)
        for query in queries:
            assert agg_outputs_multiset(
                engine.results(query.query_id)
            ) == expected_agg_multiset(query, 0, tuples, 9_000), query.query_id

    def test_partial_updates_counted_per_interested_query(self):
        engine = make_engine()
        queries = [
            _agg(WindowSpec.tumbling(1_000), name=f"q{i}") for i in range(3)
        ]
        go_live(engine, queries, now_ms=0)
        engine.push("A", 100, field_tuple(key=1, f0=1))
        agg_op = engine.aggregation_operators("agg:A")[0]
        assert agg_op.partial_updates == 3


class TestSessionWindows:
    def test_session_aggregation(self):
        engine = make_engine()
        query = _agg(WindowSpec.session(1_000), name="sess")
        go_live(engine, [query], now_ms=0)
        for ts, value in ((100, 1), (600, 2), (5_000, 10)):
            engine.push("A", ts, field_tuple(key=1, f0=value))
        engine.watermark(10_000)
        outputs = engine.results("sess")
        values = sorted(output.value.value for output in outputs)
        assert values == [3, 10]
        windows = sorted(output.value.window for output in outputs)
        assert windows[0].start == 100
        assert windows[0].end == 1_600

    def test_session_per_key(self):
        engine = make_engine()
        query = _agg(WindowSpec.session(500), name="sess")
        go_live(engine, [query], now_ms=0)
        engine.push("A", 100, field_tuple(key=1, f0=1))
        engine.push("A", 150, field_tuple(key=2, f0=2))
        engine.watermark(5_000)
        outputs = engine.results("sess")
        assert {output.value.key for output in outputs} == {1, 2}

    def test_session_query_deletion_clears_state(self):
        engine = make_engine()
        query = _agg(WindowSpec.session(10_000), name="sess")
        go_live(engine, [query], now_ms=0)
        engine.push("A", 100, field_tuple(key=1, f0=1))
        engine.stop("sess", now_ms=500)
        engine.flush_session(500)
        engine.watermark(60_000)
        assert engine.result_count("sess") == 0


class TestAdHocChanges:
    def test_mid_stream_creation(self):
        engine = make_engine()
        early = _agg(WindowSpec.tumbling(1_000), name="early")
        go_live(engine, [early], now_ms=0)
        first = [(ts, field_tuple(key=1, f0=1)) for ts in range(0, 2_000, 250)]
        _push(engine, first)
        engine.watermark(2_000)
        late = _agg(WindowSpec.tumbling(1_000), name="late")
        engine.submit(late, now_ms=2_000)
        engine.flush_session(2_000)
        second = [(ts, field_tuple(key=1, f0=1)) for ts in range(2_000, 4_000, 250)]
        _push(engine, second)
        engine.watermark(8_000)
        tuples = first + second
        assert agg_outputs_multiset(
            engine.results("early")
        ) == expected_agg_multiset(early, 0, tuples, 8_000)
        assert agg_outputs_multiset(
            engine.results("late")
        ) == expected_agg_multiset(late, 2_000, tuples, 8_000)

    def test_slot_reuse_does_not_leak_partials(self):
        engine = make_engine()
        old = _agg(WindowSpec.tumbling(4_000), name="old")
        go_live(engine, [old], now_ms=0)
        engine.push("A", 500, field_tuple(key=1, f0=100))
        engine.stop("old", now_ms=1_000)
        new = _agg(WindowSpec.tumbling(2_000), name="new")
        engine.submit(new, now_ms=1_000)
        engine.flush_session(1_000)
        engine.push("A", 1_500, field_tuple(key=1, f0=7))
        engine.watermark(8_000)
        outputs = engine.results("new")
        assert len(outputs) == 1
        # Only the post-creation tuple; the old query's 100 must not leak.
        assert outputs[0].value.value == 7
