"""Tests for QoS-driven admission control."""

import pytest

from repro.core.admission import (
    AdmissionController,
    AdmissionDecision,
    AdmissionPolicy,
)
from repro.core.qos import QoSMonitor, QoSThresholds
from repro.core.query import SelectionQuery, TruePredicate
from tests.conftest import field_tuple, make_engine


def _query(name: str) -> SelectionQuery:
    return SelectionQuery(stream="A", predicate=TruePredicate(), query_id=name)


def _controller(thresholds=None, policy=None):
    qos = QoSMonitor(sample_every=1, thresholds=thresholds or QoSThresholds())
    engine = make_engine()
    return AdmissionController(engine, qos, policy), engine, qos


class TestAdmit:
    def test_healthy_system_admits(self):
        controller, engine, _ = _controller()
        decision = controller.submit(_query("q1"), now_ms=0)
        assert decision is AdmissionDecision.ADMIT
        engine.flush_session(0)
        assert engine.active_query_count == 1
        assert controller.admitted_total == 1

    def test_deletions_always_pass(self):
        controller, engine, _ = _controller(
            policy=AdmissionPolicy(max_active_queries=1)
        )
        controller.submit(_query("q1"), now_ms=0)
        engine.flush_session(0)
        controller.stop("q1", now_ms=10)
        engine.flush_session(10)
        assert engine.active_query_count == 0


class TestReject:
    def test_population_cap(self):
        controller, engine, _ = _controller(
            policy=AdmissionPolicy(max_active_queries=2)
        )
        assert controller.submit(_query("q1"), 0) is AdmissionDecision.ADMIT
        assert controller.submit(_query("q2"), 0) is AdmissionDecision.ADMIT
        # Pending (not yet flushed) requests count against the cap too.
        assert controller.submit(_query("q3"), 0) is AdmissionDecision.REJECT
        assert controller.rejected_total == 1

    def test_cap_frees_up_after_deletion(self):
        controller, engine, _ = _controller(
            policy=AdmissionPolicy(max_active_queries=1)
        )
        controller.submit(_query("q1"), 0)
        engine.flush_session(0)
        controller.stop("q1", now_ms=10)
        engine.flush_session(10)
        assert controller.submit(_query("q2"), 20) is AdmissionDecision.ADMIT


class TestDefer:
    def _violated_controller(self):
        thresholds = QoSThresholds(max_event_time_latency_ms=10)
        controller, engine, qos = _controller(thresholds=thresholds)
        # Manufacture a latency violation: deliver a very old tuple.
        qos.now_ms = 100_000
        qos.on_deliver("someone", 0)
        assert qos.violations()
        return controller, engine, qos

    def test_qos_violation_defers(self):
        controller, engine, _ = self._violated_controller()
        decision = controller.submit(_query("q1"), now_ms=0)
        assert decision is AdmissionDecision.DEFER
        assert controller.deferred_count == 1
        assert engine.session.pending_count == 0

    def test_retry_after_recovery(self):
        controller, engine, qos = self._violated_controller()
        controller.submit(_query("q1"), now_ms=0)
        # QoS recovers (new monitor state: reset the histogram).
        qos.latency.reset()
        admitted = controller.retry_deferred(now_ms=500)
        assert admitted == 1
        assert controller.deferred_count == 0
        engine.flush_session(500)
        assert engine.active_query_count == 1

    def test_retry_keeps_parked_while_violated(self):
        controller, _, _ = self._violated_controller()
        controller.submit(_query("q1"), now_ms=0)
        assert controller.retry_deferred(now_ms=500) == 0
        assert controller.deferred_count == 1

    def test_stopping_a_deferred_query_unparks_it(self):
        controller, engine, _ = self._violated_controller()
        controller.submit(_query("q1"), now_ms=0)
        controller.stop("q1", now_ms=100)
        assert controller.deferred_count == 0
        assert engine.session.pending_count == 0

    def test_deferred_overflow_rejects(self):
        thresholds = QoSThresholds(max_event_time_latency_ms=10)
        policy = AdmissionPolicy(max_deferred=1)
        qos = QoSMonitor(sample_every=1, thresholds=thresholds)
        engine = make_engine()
        controller = AdmissionController(engine, qos, policy)
        qos.now_ms = 100_000
        qos.on_deliver("someone", 0)
        assert controller.submit(_query("q1"), 0) is AdmissionDecision.DEFER
        assert controller.submit(_query("q2"), 0) is AdmissionDecision.REJECT

    def test_defer_disabled_admits_despite_violation(self):
        thresholds = QoSThresholds(max_event_time_latency_ms=10)
        qos = QoSMonitor(sample_every=1, thresholds=thresholds)
        engine = make_engine()
        controller = AdmissionController(
            engine, qos, AdmissionPolicy(defer_on_qos_violation=False)
        )
        qos.now_ms = 100_000
        qos.on_deliver("someone", 0)
        assert controller.submit(_query("q1"), 0) is AdmissionDecision.ADMIT
