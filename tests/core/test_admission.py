"""Tests for QoS-driven admission control."""

import pytest

from repro.core.admission import (
    AdmissionController,
    AdmissionDecision,
    AdmissionPolicy,
    PlacementPolicy,
    QueryPlacer,
)
from repro.core.qos import QoSMonitor, QoSThresholds
from repro.core.query import (
    AggregationQuery,
    JoinQuery,
    SelectionQuery,
    TruePredicate,
    WindowSpec,
)
from tests.conftest import field_tuple, make_engine


def _query(name: str) -> SelectionQuery:
    return SelectionQuery(stream="A", predicate=TruePredicate(), query_id=name)


def _controller(thresholds=None, policy=None):
    qos = QoSMonitor(sample_every=1, thresholds=thresholds or QoSThresholds())
    engine = make_engine()
    return AdmissionController(engine, qos, policy), engine, qos


class TestAdmit:
    def test_healthy_system_admits(self):
        controller, engine, _ = _controller()
        decision = controller.submit(_query("q1"), now_ms=0)
        assert decision is AdmissionDecision.ADMIT
        engine.flush_session(0)
        assert engine.active_query_count == 1
        assert controller.admitted_total == 1

    def test_deletions_always_pass(self):
        controller, engine, _ = _controller(
            policy=AdmissionPolicy(max_active_queries=1)
        )
        controller.submit(_query("q1"), now_ms=0)
        engine.flush_session(0)
        controller.stop("q1", now_ms=10)
        engine.flush_session(10)
        assert engine.active_query_count == 0


class TestReject:
    def test_population_cap(self):
        controller, engine, _ = _controller(
            policy=AdmissionPolicy(max_active_queries=2)
        )
        assert controller.submit(_query("q1"), 0) is AdmissionDecision.ADMIT
        assert controller.submit(_query("q2"), 0) is AdmissionDecision.ADMIT
        # Pending (not yet flushed) requests count against the cap too.
        assert controller.submit(_query("q3"), 0) is AdmissionDecision.REJECT
        assert controller.rejected_total == 1

    def test_cap_frees_up_after_deletion(self):
        controller, engine, _ = _controller(
            policy=AdmissionPolicy(max_active_queries=1)
        )
        controller.submit(_query("q1"), 0)
        engine.flush_session(0)
        controller.stop("q1", now_ms=10)
        engine.flush_session(10)
        assert controller.submit(_query("q2"), 20) is AdmissionDecision.ADMIT


class TestDefer:
    def _violated_controller(self):
        thresholds = QoSThresholds(max_event_time_latency_ms=10)
        controller, engine, qos = _controller(thresholds=thresholds)
        # Manufacture a latency violation: deliver a very old tuple.
        qos.now_ms = 100_000
        qos.on_deliver("someone", 0)
        assert qos.violations()
        return controller, engine, qos

    def test_qos_violation_defers(self):
        controller, engine, _ = self._violated_controller()
        decision = controller.submit(_query("q1"), now_ms=0)
        assert decision is AdmissionDecision.DEFER
        assert controller.deferred_count == 1
        assert engine.session.pending_count == 0

    def test_retry_after_recovery(self):
        controller, engine, qos = self._violated_controller()
        controller.submit(_query("q1"), now_ms=0)
        # QoS recovers (new monitor state: reset the histogram).
        qos.latency.reset()
        admitted = controller.retry_deferred(now_ms=500)
        assert admitted == 1
        assert controller.deferred_count == 0
        engine.flush_session(500)
        assert engine.active_query_count == 1

    def test_retry_keeps_parked_while_violated(self):
        controller, _, _ = self._violated_controller()
        controller.submit(_query("q1"), now_ms=0)
        assert controller.retry_deferred(now_ms=500) == 0
        assert controller.deferred_count == 1

    def test_stopping_a_deferred_query_unparks_it(self):
        controller, engine, _ = self._violated_controller()
        controller.submit(_query("q1"), now_ms=0)
        controller.stop("q1", now_ms=100)
        assert controller.deferred_count == 0
        assert engine.session.pending_count == 0

    def test_deferred_overflow_rejects(self):
        thresholds = QoSThresholds(max_event_time_latency_ms=10)
        policy = AdmissionPolicy(max_deferred=1)
        qos = QoSMonitor(sample_every=1, thresholds=thresholds)
        engine = make_engine()
        controller = AdmissionController(engine, qos, policy)
        qos.now_ms = 100_000
        qos.on_deliver("someone", 0)
        assert controller.submit(_query("q1"), 0) is AdmissionDecision.DEFER
        assert controller.submit(_query("q2"), 0) is AdmissionDecision.REJECT

    def test_defer_disabled_admits_despite_violation(self):
        thresholds = QoSThresholds(max_event_time_latency_ms=10)
        qos = QoSMonitor(sample_every=1, thresholds=thresholds)
        engine = make_engine()
        controller = AdmissionController(
            engine, qos, AdmissionPolicy(defer_on_qos_violation=False)
        )
        qos.now_ms = 100_000
        qos.on_deliver("someone", 0)
        assert controller.submit(_query("q1"), 0) is AdmissionDecision.ADMIT


def _agg(name: str, stream: str = "A", retention_ms: int = 2_000):
    return AggregationQuery(
        stream=stream,
        predicate=TruePredicate(),
        window_spec=WindowSpec.tumbling(retention_ms),
        query_id=name,
    )


class TestPlacement:
    def test_shared_final_stage_colocates(self):
        placer = QueryPlacer(PlacementPolicy(shard_groups=4))
        first = placer.place(_agg("q1", stream="A"))
        second = placer.place(_agg("q2", stream="A"))
        assert first.affinity_key == "agg:A" == second.affinity_key
        assert first.group == second.group
        other = placer.place(_agg("q3", stream="B"))
        assert other.group != first.group, "different plan, different group"

    def test_expensive_queries_spread_over_groups(self):
        placer = QueryPlacer(PlacementPolicy(shard_groups=2))
        join = JoinQuery(
            left_stream="A",
            right_stream="B",
            left_predicate=TruePredicate(),
            right_predicate=TruePredicate(),
            window_spec=WindowSpec.tumbling(1_000),
            query_id="j1",
        )
        heavy = _agg("big", retention_ms=120_000)
        first = placer.place(join)
        second = placer.place(heavy)
        assert first.expensive and second.expensive
        assert {first.group, second.group} == {0, 1}

    def test_selection_affinity_uses_output_stage(self):
        placer = QueryPlacer(PlacementPolicy(shard_groups=2))
        placed = placer.place(
            SelectionQuery(
                stream="A", predicate=TruePredicate(), query_id="s1"
            )
        )
        assert placed.affinity_key == "select:A"
        assert not placed.expensive

    def test_release_frees_group_load(self):
        placer = QueryPlacer(PlacementPolicy(shard_groups=2))
        placer.place(_agg("q1"))
        assert placer.group_loads == [1, 0]
        placer.release("q1")
        assert placer.group_loads == [0, 0]
        placer.release("q1")  # double release is a no-op
        assert placer.group_loads == [0, 0]

    def test_controller_places_on_admit_and_releases_on_stop(self):
        qos = QoSMonitor(sample_every=1, thresholds=QoSThresholds())
        engine = make_engine()
        placer = QueryPlacer(PlacementPolicy(shard_groups=2))
        controller = AdmissionController(engine, qos, placer=placer)
        assert controller.submit(_agg("q1"), 0) is AdmissionDecision.ADMIT
        engine.flush_session(0)
        assert "q1" in placer.placements()
        controller.stop("q1", now_ms=10)
        assert "q1" not in placer.placements()
