"""Tests for query/schedule JSON serialization."""

import json

import pytest
from hypothesis import given, strategies as st

from repro.core.query import (
    AggregationKind,
    AggregationQuery,
    AggregationSpec,
    CallablePredicate,
    Comparison,
    ComplexQuery,
    FieldPredicate,
    JoinQuery,
    SelectionQuery,
    TruePredicate,
    WindowSpec,
)
from repro.core.serde import (
    SerdeError,
    predicate_from_dict,
    predicate_to_dict,
    query_from_dict,
    query_to_dict,
    schedule_from_dict,
    schedule_to_dict,
    window_from_dict,
    window_to_dict,
)
from repro.core.sql import ConjunctionPredicate, parse_query
from repro.workloads.querygen import QueryGenerator
from repro.workloads.scenarios import sc2_schedule


class TestPredicates:
    def test_round_trips(self):
        predicates = [
            TruePredicate(),
            FieldPredicate(2, Comparison.GE, 42),
            ConjunctionPredicate(
                (FieldPredicate(0, Comparison.LT, 1),
                 FieldPredicate(1, Comparison.EQ, 2))
            ),
        ]
        for predicate in predicates:
            assert predicate_from_dict(predicate_to_dict(predicate)) == predicate

    def test_callable_rejected(self):
        with pytest.raises(SerdeError, match="black-box"):
            predicate_to_dict(CallablePredicate(lambda v: True))

    def test_unknown_type_rejected(self):
        with pytest.raises(SerdeError):
            predicate_from_dict({"type": "regex"})


class TestWindows:
    @pytest.mark.parametrize(
        "spec",
        [
            WindowSpec.tumbling(2_000),
            WindowSpec.sliding(3_000, 1_000),
            WindowSpec.session(750),
        ],
    )
    def test_round_trips(self, spec):
        assert window_from_dict(window_to_dict(spec)) == spec

    def test_unknown_kind_rejected(self):
        with pytest.raises(SerdeError):
            window_from_dict({"kind": "hopping"})


class TestQueries:
    def _samples(self):
        return [
            SelectionQuery(stream="A", predicate=TruePredicate(),
                           query_id="s1"),
            AggregationQuery(
                stream="B",
                predicate=FieldPredicate(1, Comparison.LE, 9),
                window_spec=WindowSpec.session(500),
                aggregation=AggregationSpec(AggregationKind.AVG, 2),
                query_id="a1",
            ),
            JoinQuery(
                left_stream="A", right_stream="B",
                left_predicate=FieldPredicate(0, Comparison.GT, 1),
                right_predicate=TruePredicate(),
                window_spec=WindowSpec.sliding(4_000, 2_000),
                query_id="j1",
            ),
            ComplexQuery(
                join_streams=("A", "B", "C"),
                predicates=(TruePredicate(),) * 3,
                join_window=WindowSpec.tumbling(1_000),
                aggregation_window=WindowSpec.tumbling(2_000),
                aggregation=AggregationSpec(AggregationKind.MAX, 4),
                query_id="c1",
            ),
        ]

    def test_round_trips(self):
        for query in self._samples():
            restored = query_from_dict(query_to_dict(query))
            assert restored == query
            assert restored.query_id == query.query_id

    def test_json_safe(self):
        for query in self._samples():
            text = json.dumps(query_to_dict(query))
            assert query_from_dict(json.loads(text)) == query

    def test_sql_parsed_query_round_trips(self):
        query = parse_query(
            "SELECT SUM(A.F0) FROM A RANGE 2 "
            "WHERE A.F1 > 3 AND A.F2 <= 9 GROUP BY KEY"
        )
        assert query_from_dict(query_to_dict(query)) == query

    def test_unknown_query_type_rejected(self):
        with pytest.raises(SerdeError):
            query_from_dict({"type": "cube"})

    def test_unsupported_object_rejected(self):
        with pytest.raises(SerdeError):
            query_to_dict(object())


class TestSchedules:
    def test_sc2_schedule_round_trips_through_json(self):
        schedule = sc2_schedule(
            QueryGenerator(streams=("A", "B"), seed=3), 3, 5, 3, kind="join"
        )
        document = json.loads(json.dumps(schedule_to_dict(schedule)))
        restored = schedule_from_dict(document)
        assert restored.name == schedule.name
        assert len(restored) == len(schedule)
        original = schedule.sorted()
        for left, right in zip(original, restored.sorted()):
            assert left.at_ms == right.at_ms
            assert left.kind == right.kind
            if left.kind == "create":
                assert right.query == left.query
            else:
                assert right.query_id == left.query_id

    def test_restored_schedule_is_runnable(self):
        from repro.harness.runner import RunnerConfig, run_scenario

        schedule = sc2_schedule(
            QueryGenerator(streams=("A", "B"), seed=3), 2, 2, 2, kind="agg"
        )
        restored = schedule_from_dict(
            json.loads(json.dumps(schedule_to_dict(schedule)))
        )
        metrics = run_scenario(
            RunnerConfig(input_rate_tps=100.0, duration_s=5.0),
            schedule=restored,
        )
        assert metrics.report.tuples_pushed > 0
        assert metrics.report.active_queries_final == 2

    def test_unknown_request_kind_rejected(self):
        with pytest.raises(SerdeError):
            schedule_from_dict(
                {"name": "x", "requests": [{"kind": "pause", "at_ms": 0}]}
            )


@st.composite
def _random_field_queries(draw):
    return JoinQuery(
        left_stream="A", right_stream="B",
        left_predicate=FieldPredicate(
            draw(st.integers(0, 4)),
            draw(st.sampled_from(list(Comparison))),
            draw(st.integers(-100, 100)),
        ),
        right_predicate=FieldPredicate(
            draw(st.integers(0, 4)),
            draw(st.sampled_from(list(Comparison))),
            draw(st.integers(-100, 100)),
        ),
        window_spec=WindowSpec.sliding(
            draw(st.integers(1, 10)) * 1_000,
            draw(st.integers(1, 10)) * 100,
        ),
    )


class TestProperties:
    @given(_random_field_queries())
    def test_arbitrary_join_queries_round_trip(self, query):
        assert query_from_dict(
            json.loads(json.dumps(query_to_dict(query)))
        ) == query


class TestFileHelpers:
    def test_save_load_round_trip(self, tmp_path):
        from repro.core.serde import load_schedule, save_schedule

        schedule = sc2_schedule(
            QueryGenerator(streams=("A", "B"), seed=8), 2, 3, 2, kind="join"
        )
        target = tmp_path / "schedule.json"
        save_schedule(schedule, target)
        restored = load_schedule(target)
        assert restored.name == schedule.name
        assert len(restored) == len(schedule)
        assert [r.kind for r in restored.sorted()] == [
            r.kind for r in schedule.sorted()
        ]
