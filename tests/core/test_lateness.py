"""Tests for out-of-order and late-record handling in shared operators."""

from repro.core.query import (
    AggregationQuery,
    JoinQuery,
    TruePredicate,
    WindowSpec,
)
from tests.conftest import field_tuple, go_live, make_engine


def _join(name="late-join", length=2_000):
    return JoinQuery(
        left_stream="A", right_stream="B",
        left_predicate=TruePredicate(), right_predicate=TruePredicate(),
        window_spec=WindowSpec.tumbling(length), query_id=name,
    )


def _agg(name="late-agg", length=2_000):
    return AggregationQuery(
        stream="A", predicate=TruePredicate(),
        window_spec=WindowSpec.tumbling(length), query_id=name,
    )


class TestOutOfOrderWithinBound:
    def test_join_accepts_reordered_records(self):
        engine = make_engine()
        go_live(engine, [_join()], now_ms=0)
        # Out of order but ahead of the watermark: all joined.
        for ts in (900, 100, 500):
            engine.push("A", ts, field_tuple(key=1, f0=ts))
        engine.push("B", 700, field_tuple(key=1, f1=7))
        engine.watermark(5_000)
        assert engine.result_count("late-join") == 3

    def test_agg_accepts_record_behind_watermark_within_retention(self):
        engine = make_engine()
        go_live(engine, [_agg(length=4_000)], now_ms=0)
        engine.push("A", 100, field_tuple(key=1, f0=1))
        engine.watermark(1_000)  # window [0,4000) still open
        engine.push("A", 500, field_tuple(key=1, f0=2))  # behind watermark
        engine.watermark(10_000)
        outputs = engine.results("late-agg")
        assert outputs[0].value.value == 3


class TestLateDrops:
    def test_join_drops_beyond_retention_and_counts(self):
        engine = make_engine()
        go_live(engine, [_join(length=1_000)], now_ms=0)
        engine.push("A", 100, field_tuple(key=1, f0=1))
        engine.push("B", 200, field_tuple(key=1, f1=2))
        engine.watermark(10_000)
        produced = engine.result_count("late-join")
        # Hours late: the window fired long ago.
        engine.push("A", 150, field_tuple(key=1, f0=9))
        engine.watermark(11_000)
        assert engine.result_count("late-join") == produced
        stats = engine.component_stats()
        assert stats["late_records_dropped"] == 1

    def test_agg_drops_beyond_retention_and_counts(self):
        engine = make_engine()
        go_live(engine, [_agg(length=1_000)], now_ms=0)
        engine.push("A", 100, field_tuple(key=1, f0=5))
        engine.watermark(10_000)
        engine.push("A", 200, field_tuple(key=1, f0=7))
        engine.watermark(11_000)
        outputs = engine.results("late-agg")
        assert len(outputs) == 1
        assert outputs[0].value.value == 5
        assert engine.component_stats()["late_records_dropped"] >= 1

    def test_late_drop_does_not_corrupt_open_windows(self):
        engine = make_engine()
        go_live(engine, [_agg(length=1_000)], now_ms=0)
        engine.watermark(10_000)
        engine.push("A", 50, field_tuple(key=1, f0=3))  # dropped
        engine.push("A", 10_500, field_tuple(key=1, f0=4))  # current window
        engine.watermark(20_000)
        values = [output.value.value for output in engine.results("late-agg")]
        assert values == [4]
