"""Tests for the shared windowed join (engine-driven + operator-level)."""

import pytest

from repro.core.query import (
    Comparison,
    FieldPredicate,
    JoinQuery,
    TruePredicate,
    WindowSpec,
)
from repro.core.storage import StoreKind
from tests.conftest import field_tuple, go_live, make_engine
from tests.core.oracle import (
    expected_join_multiset,
    join_outputs_multiset,
)


def _join(window, left=None, right=None, name=None) -> JoinQuery:
    kwargs = {}
    if name:
        kwargs["query_id"] = name
    return JoinQuery(
        left_stream="A",
        right_stream="B",
        left_predicate=left or TruePredicate(),
        right_predicate=right or TruePredicate(),
        window_spec=window,
        **kwargs,
    )


def _push_streams(engine, left, right):
    for ts, value in left:
        engine.push("A", ts, value)
    for ts, value in right:
        engine.push("B", ts, value)


class TestSingleQueryCorrectness:
    def test_tumbling_join_matches_oracle(self):
        engine = make_engine()
        query = _join(WindowSpec.tumbling(2_000))
        go_live(engine, [query], now_ms=0)
        left = [(ts, field_tuple(key=ts % 3, f0=ts)) for ts in range(0, 6_000, 250)]
        right = [(ts, field_tuple(key=ts % 3, f1=ts)) for ts in range(0, 6_000, 400)]
        _push_streams(engine, left, right)
        engine.watermark(10_000)
        assert join_outputs_multiset(
            engine.results(query.query_id)
        ) == expected_join_multiset(query, 0, left, right, 10_000)

    def test_sliding_join_duplicates_across_windows(self):
        engine = make_engine()
        query = _join(WindowSpec.sliding(2_000, 1_000))
        go_live(engine, [query], now_ms=0)
        left = [(1_500, field_tuple(key=1, f0=7))]
        right = [(1_600, field_tuple(key=1, f1=8))]
        _push_streams(engine, left, right)
        engine.watermark(10_000)
        outputs = engine.results(query.query_id)
        # The pair is inside windows [0,2000) and [1000,3000).
        assert len(outputs) == 2
        assert join_outputs_multiset(outputs) == expected_join_multiset(
            query, 0, left, right, 10_000
        )

    def test_predicates_filter_sides_independently(self):
        engine = make_engine()
        query = _join(
            WindowSpec.tumbling(1_000),
            left=FieldPredicate(0, Comparison.GT, 10),
            right=FieldPredicate(1, Comparison.LE, 5),
        )
        go_live(engine, [query], now_ms=0)
        left = [
            (100, field_tuple(key=1, f0=20)),   # passes
            (200, field_tuple(key=1, f0=5)),    # fails
        ]
        right = [
            (300, field_tuple(key=1, f1=5)),    # passes
            (400, field_tuple(key=1, f1=6)),    # fails
        ]
        _push_streams(engine, left, right)
        engine.watermark(5_000)
        assert join_outputs_multiset(
            engine.results(query.query_id)
        ) == expected_join_multiset(query, 0, left, right, 5_000)
        assert engine.result_count(query.query_id) == 1

    def test_key_equality_enforced(self):
        engine = make_engine()
        query = _join(WindowSpec.tumbling(1_000))
        go_live(engine, [query], now_ms=0)
        _push_streams(
            engine,
            [(100, field_tuple(key=1))],
            [(200, field_tuple(key=2))],
        )
        engine.watermark(5_000)
        assert engine.result_count(query.query_id) == 0

    def test_out_of_order_within_watermark(self):
        engine = make_engine()
        query = _join(WindowSpec.tumbling(2_000))
        go_live(engine, [query], now_ms=0)
        left = [(900, field_tuple(key=1, f0=1)), (100, field_tuple(key=1, f0=2))]
        right = [(1_500, field_tuple(key=1, f1=3))]
        _push_streams(engine, left, right)
        engine.watermark(5_000)
        assert join_outputs_multiset(
            engine.results(query.query_id)
        ) == expected_join_multiset(query, 0, left, right, 5_000)

    def test_parallel_instances_match_oracle(self):
        engine = make_engine(parallelism=3)
        query = _join(WindowSpec.tumbling(2_000))
        go_live(engine, [query], now_ms=0)
        left = [(ts, field_tuple(key=ts % 7, f0=ts)) for ts in range(0, 4_000, 130)]
        right = [(ts, field_tuple(key=ts % 7, f1=ts)) for ts in range(0, 4_000, 170)]
        _push_streams(engine, left, right)
        engine.watermark(8_000)
        assert join_outputs_multiset(
            engine.results(query.query_id)
        ) == expected_join_multiset(query, 0, left, right, 8_000)


class TestMultiQuerySharing:
    def test_two_queries_same_window_share_pair_computation(self):
        engine = make_engine()
        first = _join(WindowSpec.tumbling(2_000), name="j1")
        second = _join(WindowSpec.tumbling(2_000), name="j2")
        go_live(engine, [first, second], now_ms=0)
        left = [(ts, field_tuple(key=1, f0=ts)) for ts in range(0, 2_000, 100)]
        right = [(ts, field_tuple(key=1, f1=ts)) for ts in range(0, 2_000, 100)]
        _push_streams(engine, left, right)
        engine.watermark(4_000)
        # Both queries see every pair.
        assert engine.result_count("j1") == engine.result_count("j2") == 400
        join_op = engine.join_operators("join:A~B")[0]
        # Identical windows: the slice pairs were joined once, not twice.
        assert join_op.pairs_computed <= 2

    def test_queries_with_disjoint_predicates_dont_cross(self):
        engine = make_engine()
        low = _join(
            WindowSpec.tumbling(2_000),
            left=FieldPredicate(0, Comparison.LT, 50),
            right=FieldPredicate(0, Comparison.LT, 50),
            name="low",
        )
        high = _join(
            WindowSpec.tumbling(2_000),
            left=FieldPredicate(0, Comparison.GE, 50),
            right=FieldPredicate(0, Comparison.GE, 50),
            name="high",
        )
        go_live(engine, [low, high], now_ms=0)
        left = [(100, field_tuple(key=1, f0=10)), (200, field_tuple(key=1, f0=90))]
        right = [(300, field_tuple(key=1, f0=20)), (400, field_tuple(key=1, f0=80))]
        _push_streams(engine, left, right)
        engine.watermark(4_000)
        assert engine.result_count("low") == 1   # (10, 20)
        assert engine.result_count("high") == 1  # (90, 80)
        for query, expected_left in (("low", 10), ("high", 90)):
            output = engine.results(query)[0].value
            assert output.parts[0].fields[0] == expected_left

    def test_each_query_matches_its_oracle(self):
        engine = make_engine()
        queries = [
            _join(WindowSpec.tumbling(1_000), name="t1"),
            _join(WindowSpec.sliding(3_000, 1_000), name="s3"),
            _join(
                WindowSpec.tumbling(2_000),
                left=FieldPredicate(2, Comparison.GE, 50),
                name="t2",
            ),
        ]
        go_live(engine, queries, now_ms=0)
        left = [
            (ts, field_tuple(key=ts % 4, f0=ts % 100, f2=(ts // 7) % 100))
            for ts in range(0, 5_000, 90)
        ]
        right = [
            (ts, field_tuple(key=ts % 4, f1=ts % 100))
            for ts in range(0, 5_000, 110)
        ]
        _push_streams(engine, left, right)
        engine.watermark(9_000)
        for query in queries:
            assert join_outputs_multiset(
                engine.results(query.query_id)
            ) == expected_join_multiset(query, 0, left, right, 9_000), query.query_id


class TestAdHocChanges:
    def test_query_added_mid_stream_sees_only_later_windows(self):
        engine = make_engine()
        early = _join(WindowSpec.tumbling(2_000), name="early")
        go_live(engine, [early], now_ms=0)
        first_left = [(ts, field_tuple(key=1, f0=ts)) for ts in range(0, 2_000, 500)]
        first_right = [(ts, field_tuple(key=1, f1=ts)) for ts in range(0, 2_000, 500)]
        _push_streams(engine, first_left, first_right)
        engine.watermark(2_000)

        late = _join(WindowSpec.tumbling(2_000), name="late")
        engine.submit(late, now_ms=2_000)
        engine.flush_session(2_000)
        second_left = [
            (ts, field_tuple(key=1, f0=ts)) for ts in range(2_000, 4_000, 500)
        ]
        second_right = [
            (ts, field_tuple(key=1, f1=ts)) for ts in range(2_000, 4_000, 500)
        ]
        _push_streams(engine, second_left, second_right)
        engine.watermark(6_000)

        left = first_left + second_left
        right = first_right + second_right
        assert join_outputs_multiset(
            engine.results("early")
        ) == expected_join_multiset(early, 0, left, right, 6_000)
        assert join_outputs_multiset(
            engine.results("late")
        ) == expected_join_multiset(late, 2_000, left, right, 6_000)

    def test_deleted_query_stops_producing(self):
        engine = make_engine()
        query = _join(WindowSpec.tumbling(1_000), name="gone")
        go_live(engine, [query], now_ms=0)
        _push_streams(
            engine,
            [(100, field_tuple(key=1, f0=1))],
            [(200, field_tuple(key=1, f1=2))],
        )
        engine.watermark(1_000)
        engine.stop("gone", now_ms=1_000)
        engine.flush_session(1_000)
        count_at_deletion = engine.result_count("gone")
        _push_streams(
            engine,
            [(1_500, field_tuple(key=1, f0=3))],
            [(1_600, field_tuple(key=1, f1=4))],
        )
        engine.watermark(5_000)
        assert engine.result_count("gone") == count_at_deletion

    def test_slot_reuse_does_not_leak_old_tuples(self):
        """The §2.1.2 consistency argument: after a slot is reused, tuples
        tagged for the dead query must not reach the new one."""
        engine = make_engine()
        old = _join(
            WindowSpec.tumbling(4_000),
            left=FieldPredicate(0, Comparison.LT, 50),
            right=FieldPredicate(0, Comparison.LT, 50),
            name="old",
        )
        go_live(engine, [old], now_ms=0)
        # These tuples pass only the OLD query's predicates.
        _push_streams(
            engine,
            [(500, field_tuple(key=1, f0=10))],
            [(600, field_tuple(key=1, f0=20))],
        )
        # Delete old; create new in the same changelog — same slot.
        engine.stop("old", now_ms=1_000)
        new = _join(
            WindowSpec.tumbling(2_000),
            left=TruePredicate(),
            right=TruePredicate(),
            name="new",
        )
        engine.submit(new, now_ms=1_000)
        engine.flush_session(1_000)
        join_op = engine.join_operators("join:A~B")[0]
        assert join_op.active_query_count == 1
        # New tuples join for "new"; the old epoch's tuples must not.
        _push_streams(
            engine,
            [(1_500, field_tuple(key=1, f0=99))],
            [(1_600, field_tuple(key=1, f0=98))],
        )
        engine.watermark(8_000)
        outputs = engine.results("new")
        assert len(outputs) == 1
        parts = outputs[0].value.parts
        assert parts[0].fields[0] == 99
        assert parts[1].fields[0] == 98


class TestAdaptiveStorage:
    def test_switches_to_list_beyond_threshold(self):
        engine = make_engine(storage_query_threshold=3)
        queries = [
            _join(WindowSpec.tumbling(1_000), name=f"q{i}") for i in range(5)
        ]
        go_live(engine, queries, now_ms=0)
        join_op = engine.join_operators("join:A~B")[0]
        assert join_op.store_kind is StoreKind.LIST

    def test_switches_back_with_hysteresis(self):
        engine = make_engine(storage_query_threshold=4)
        queries = [
            _join(WindowSpec.tumbling(1_000), name=f"q{i}") for i in range(6)
        ]
        go_live(engine, queries, now_ms=0)
        join_op = engine.join_operators("join:A~B")[0]
        assert join_op.store_kind is StoreKind.LIST
        # Delete down to half the threshold: grouped again.
        for query in queries[:4]:
            engine.stop(query.query_id, now_ms=1_000)
        engine.flush_session(1_000)
        assert join_op.store_kind is StoreKind.GROUPED

    def test_results_identical_under_both_layouts(self):
        def run(threshold):
            engine = make_engine(storage_query_threshold=threshold)
            query = _join(WindowSpec.tumbling(2_000), name=f"q-{threshold}")
            go_live(engine, [query], now_ms=0)
            left = [(ts, field_tuple(key=ts % 3, f0=ts)) for ts in range(0, 4_000, 111)]
            right = [(ts, field_tuple(key=ts % 3, f1=ts)) for ts in range(0, 4_000, 77)]
            _push_streams(engine, left, right)
            engine.watermark(8_000)
            return join_outputs_multiset(engine.results(query.query_id))

        assert run(threshold=0) == run(threshold=100)


class TestRetention:
    def test_slices_expire_after_max_window(self):
        engine = make_engine()
        query = _join(WindowSpec.tumbling(1_000))
        go_live(engine, [query], now_ms=0)
        for ts in range(0, 10_000, 200):
            engine.push("A", ts, field_tuple(key=1, f0=ts))
            engine.push("B", ts, field_tuple(key=1, f1=ts))
            engine.watermark(ts)
        join_op = engine.join_operators("join:A~B")[0]
        left_slices, right_slices = join_op.live_slices
        assert left_slices <= 4
        assert right_slices <= 4
        assert join_op.cached_pairs <= 16
