"""Tests for the AStream engine facade."""

import pytest

from repro.core.engine import AStreamEngine, EngineConfig
from repro.core.query import (
    ComplexQuery,
    JoinQuery,
    SelectionQuery,
    TruePredicate,
    WindowSpec,
)
from repro.minispe.cluster import ClusterSpec, SimulatedCluster
from tests.conftest import field_tuple, go_live, make_engine


class TestConfig:
    def test_defaults(self):
        config = EngineConfig()
        assert config.streams == ("A", "B")
        assert config.effective_join_arity == 1

    def test_arity_clamped_to_streams(self):
        config = EngineConfig(streams=("A", "B", "C"), max_join_arity=5)
        assert config.effective_join_arity == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            EngineConfig(streams=())
        with pytest.raises(ValueError):
            EngineConfig(max_join_arity=0)


class TestTopology:
    def test_stage_vertices_exist(self):
        engine = make_engine(streams=("A", "B", "C"), max_join_arity=2)
        names = set(engine.graph.vertices)
        for expected in (
            "source:A", "select:A", "agg:A", "router:select:A",
            "join:A~B", "agg:A~B", "join:A~B~C", "agg:A~B~C",
            "router:join:A~B~C",
        ):
            assert expected in names

    def test_slots_allocated_once(self):
        cluster = SimulatedCluster(ClusterSpec(nodes=4))
        engine = make_engine(cluster=cluster)
        assert cluster.used_slots == engine.graph.total_instances()
        engine.shutdown()
        assert cluster.used_slots == 0

    def test_unsupported_stage_rejected(self):
        engine = make_engine(streams=("A", "B"))
        bad = SelectionQuery(stream="Z", predicate=TruePredicate())
        with pytest.raises(ValueError, match="select:Z"):
            engine.submit(bad, now_ms=0)

    def test_deep_join_rejected_when_not_configured(self):
        engine = make_engine(streams=("A", "B"), max_join_arity=1)
        deep = ComplexQuery(
            join_streams=("A", "B", "C"),
            predicates=(TruePredicate(),) * 3,
            join_window=WindowSpec.tumbling(1_000),
            aggregation_window=WindowSpec.tumbling(1_000),
        )
        with pytest.raises(ValueError):
            engine.submit(deep, now_ms=0)


class TestQueryLifecycle:
    def test_query_not_live_until_changelog(self):
        engine = make_engine()
        query = SelectionQuery(stream="A", predicate=TruePredicate())
        engine.submit(query, now_ms=0)
        assert engine.active_query_count == 0
        engine.push("A", 100, field_tuple(key=1))
        assert engine.result_count(query.query_id) == 0
        # The changelog timeout fires on tick.
        engine.tick(now_ms=1_000)
        assert engine.active_query_count == 1
        engine.push("A", 1_100, field_tuple(key=1))
        assert engine.result_count(query.query_id) == 1

    def test_deployment_events_recorded(self):
        engine = make_engine()
        query = SelectionQuery(stream="A", predicate=TruePredicate())
        engine.submit(query, now_ms=200)
        engine.tick(now_ms=1_500)
        events = engine.deployment_events
        assert len(events) == 1
        assert events[0].kind == "create"
        assert events[0].requested_at_ms == 200
        assert events[0].changelog_at_ms == 1_500
        assert events[0].deployment_latency_ms > 1_300  # includes cold start

    def test_first_changelog_pays_cold_start(self):
        engine = make_engine()
        first = SelectionQuery(stream="A", predicate=TruePredicate())
        engine.submit(first, now_ms=0)
        engine.flush_session(0)
        second = SelectionQuery(stream="A", predicate=TruePredicate())
        engine.submit(second, now_ms=10)
        engine.flush_session(10)
        latencies = [e.deployment_latency_ms for e in engine.deployment_events]
        assert latencies[0] > 5_000
        assert latencies[1] < 1_000

    def test_stop_records_delete_event(self):
        engine = make_engine()
        query = SelectionQuery(stream="A", predicate=TruePredicate())
        go_live(engine, [query], now_ms=0)
        engine.stop(query.query_id, now_ms=100)
        engine.flush_session(100)
        assert engine.deployment_events[-1].kind == "delete"
        assert engine.active_query_count == 0

    def test_watermark_monotone(self):
        engine = make_engine()
        engine.watermark(1_000)
        engine.watermark(500)  # silently ignored
        engine.watermark(1_000)  # idempotent
        assert engine._last_watermark_ms == 1_000


class TestSelectionQueries:
    def test_selection_results_flow_to_channel(self):
        engine = make_engine()
        query = SelectionQuery(stream="A", predicate=TruePredicate())
        go_live(engine, [query], now_ms=0)
        for ts in range(100, 600, 100):
            engine.push("A", ts, field_tuple(key=ts))
        assert engine.result_count(query.query_id) == 5

    def test_results_carry_timestamps(self):
        engine = make_engine()
        query = SelectionQuery(stream="A", predicate=TruePredicate())
        go_live(engine, [query], now_ms=0)
        engine.push("A", 123, field_tuple(key=1))
        assert engine.results(query.query_id)[0].timestamp == 123


class TestComplexQueries:
    def test_three_way_join_with_aggregation(self):
        engine = make_engine(streams=("A", "B", "C"), max_join_arity=2)
        query = ComplexQuery(
            join_streams=("A", "B", "C"),
            predicates=(TruePredicate(),) * 3,
            join_window=WindowSpec.tumbling(2_000),
            aggregation_window=WindowSpec.tumbling(2_000),
            query_id="cx",
        )
        go_live(engine, [query], now_ms=0)
        # One matching triple on key 1 (f0 of the A tuple aggregates).
        engine.push("A", 100, field_tuple(key=1, f0=5))
        engine.push("B", 200, field_tuple(key=1))
        engine.push("C", 300, field_tuple(key=1))
        # Key 2 misses stream C: no triple.
        engine.push("A", 150, field_tuple(key=2, f0=9))
        engine.push("B", 250, field_tuple(key=2))
        engine.watermark(8_000)
        outputs = engine.results("cx")
        assert len(outputs) == 1
        assert outputs[0].value.key == 1
        assert outputs[0].value.value == 5

    def test_cascade_cross_product_counts(self):
        engine = make_engine(streams=("A", "B", "C"), max_join_arity=2)
        query = ComplexQuery(
            join_streams=("A", "B", "C"),
            predicates=(TruePredicate(),) * 3,
            join_window=WindowSpec.tumbling(2_000),
            aggregation_window=WindowSpec.tumbling(2_000),
            query_id="cx",
        )
        go_live(engine, [query], now_ms=0)
        # 2 x 3 x 1 = 6 triples for key 1; COUNT-like via SUM of f0=1.
        for ts in (100, 200):
            engine.push("A", ts, field_tuple(key=1, f0=1))
        for ts in (110, 210, 310):
            engine.push("B", ts, field_tuple(key=1))
        engine.push("C", 400, field_tuple(key=1))
        engine.watermark(8_000)
        outputs = engine.results("cx")
        assert len(outputs) == 1
        assert outputs[0].value.value == 6


class TestComponentStats:
    def test_stats_accumulate(self):
        engine = make_engine()
        query = JoinQuery(
            left_stream="A", right_stream="B",
            left_predicate=TruePredicate(), right_predicate=TruePredicate(),
            window_spec=WindowSpec.tumbling(1_000),
        )
        go_live(engine, [query], now_ms=0)
        engine.push("A", 100, field_tuple(key=1))
        engine.push("B", 200, field_tuple(key=1))
        engine.watermark(4_000)
        stats = engine.component_stats()
        assert stats["predicate_evaluations"] == 2
        assert stats["router_copies"] == 1
        assert stats["join_pairs_computed"] >= 1
        assert stats["results_emitted"] == 1


class TestDescribe:
    def test_describe_lists_topology_and_queries(self):
        engine = make_engine()
        query = SelectionQuery(
            stream="A", predicate=TruePredicate(), query_id="desc-q"
        )
        go_live(engine, [query], now_ms=500)
        text = engine.describe()
        assert "source:A" in text
        assert "join:A~B" in text
        assert "select:A[hash" in text or "select:A[" in text
        assert "desc-q" in text
        assert "1 active" in text
        assert "created t=500ms" in text

    def test_describe_empty_population(self):
        engine = make_engine()
        text = engine.describe()
        assert "0 active" in text
