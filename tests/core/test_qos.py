"""Tests for the QoS monitor."""

import pytest

from repro.core.qos import QoSMonitor, QoSThresholds


class TestSampling:
    def test_samples_every_nth_delivery(self):
        monitor = QoSMonitor(sample_every=3)
        monitor.now_ms = 1_000
        for _ in range(9):
            monitor.on_deliver("q", 400)
        assert monitor.latency.count == 3
        assert monitor.mean_latency_ms() == 600

    def test_per_query_counters(self):
        monitor = QoSMonitor(sample_every=1)
        monitor.on_deliver("a", 0)
        monitor.on_deliver("a", 0)
        monitor.on_deliver("b", 0)
        assert monitor.per_query_delivered == {"a": 2, "b": 1}
        assert monitor.slowest_query() == "b"
        assert monitor.overall_delivered() == 3

    def test_custom_now_fn(self):
        clock = {"now": 500}
        monitor = QoSMonitor(now_fn=lambda: clock["now"], sample_every=1)
        monitor.on_deliver("q", 100)
        assert monitor.latency.mean() == 400

    def test_validation(self):
        with pytest.raises(ValueError):
            QoSMonitor(sample_every=0)

    def test_slowest_query_empty(self):
        assert QoSMonitor().slowest_query() is None


class TestViolations:
    def test_no_violations_by_default(self):
        monitor = QoSMonitor(sample_every=1)
        monitor.on_deliver("q", 0)
        assert monitor.violations() == []

    def test_latency_violation(self):
        monitor = QoSMonitor(
            sample_every=1,
            thresholds=QoSThresholds(max_event_time_latency_ms=100),
        )
        monitor.now_ms = 1_000
        monitor.on_deliver("q", 0)
        assert any("latency" in problem for problem in monitor.violations())

    def test_deployment_violation(self):
        monitor = QoSMonitor(
            thresholds=QoSThresholds(max_deployment_latency_ms=1_000),
        )
        problems = monitor.violations(deployment_latencies_ms=[500, 5_000])
        assert any("deployments exceed" in problem for problem in problems)

    def test_throughput_violation(self):
        monitor = QoSMonitor(
            sample_every=1,
            thresholds=QoSThresholds(min_query_throughput=5),
        )
        monitor.on_deliver("starved", 0)
        assert any("minimum result rate" in p for p in monitor.violations())
