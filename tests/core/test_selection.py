"""Tests for the shared selection operator."""

from typing import List

from repro.core.changelog import Changelog, QueryActivation, QueryDeactivation
from repro.core.query import (
    Comparison,
    FieldPredicate,
    SelectionQuery,
    TruePredicate,
)
from repro.core.selection import EPOCH_TAG, QS_TAG, SharedSelectionOperator
from repro.minispe.record import ChangelogMarker, Record
from tests.conftest import field_tuple


def _selection_query(name: str, stream="A", predicate=None) -> SelectionQuery:
    return SelectionQuery(
        stream=stream, predicate=predicate or TruePredicate(), query_id=name
    )


def _marker(sequence, ts, created=(), deleted=(), width=0) -> ChangelogMarker:
    changelog = Changelog(
        sequence=sequence,
        timestamp_ms=ts,
        created=tuple(
            QueryActivation(query, slot, ts) for query, slot in created
        ),
        deleted=tuple(QueryDeactivation(qid, slot) for qid, slot in deleted),
        width_after=width,
    )
    return ChangelogMarker(timestamp=ts, changelog=changelog)


def _wired(stream="A") -> (SharedSelectionOperator, List):
    operator = SharedSelectionOperator(stream)
    out: List = []
    operator.set_collector(out.append)
    return operator, out


class TestTagging:
    def test_no_queries_drops_everything(self):
        operator, out = _wired()
        operator.process(Record(timestamp=10, value=field_tuple(1), key=1))
        assert out == []
        assert operator.records_dropped == 1

    def test_tags_matching_queries(self):
        operator, out = _wired()
        gt = _selection_query("gt", predicate=FieldPredicate(0, Comparison.GT, 5))
        le = _selection_query("le", predicate=FieldPredicate(0, Comparison.LE, 5))
        operator.on_marker(_marker(1, 100, created=[(gt, 0), (le, 1)], width=2))
        operator.process(Record(timestamp=100, value=field_tuple(1, f0=9), key=1))
        operator.process(Record(timestamp=101, value=field_tuple(1, f0=3), key=1))
        records = [element for element in out if isinstance(element, Record)]
        assert records[0].tags[QS_TAG] == 0b01  # gt only
        assert records[1].tags[QS_TAG] == 0b10  # le only
        assert records[0].tags[EPOCH_TAG] == 1

    def test_queries_for_other_streams_ignored(self):
        operator, out = _wired(stream="A")
        other = _selection_query("other", stream="B")
        operator.on_marker(_marker(1, 0, created=[(other, 0)], width=1))
        assert operator.active_query_count == 0

    def test_marker_forwarded(self):
        operator, out = _wired()
        operator.on_marker(_marker(1, 0, width=0))
        assert len(out) == 1

    def test_deletion_stops_tagging(self):
        operator, out = _wired()
        query = _selection_query("q")
        operator.on_marker(_marker(1, 0, created=[(query, 0)], width=1))
        operator.on_marker(_marker(2, 100, deleted=[("q", 0)], width=1))
        operator.process(Record(timestamp=150, value=field_tuple(1), key=1))
        assert [e for e in out if isinstance(e, Record)] == []

    def test_slot_reuse_changes_predicate(self):
        operator, out = _wired()
        old = _selection_query("old", predicate=FieldPredicate(0, Comparison.GT, 50))
        operator.on_marker(_marker(1, 0, created=[(old, 0)], width=1))
        new = _selection_query("new", predicate=FieldPredicate(0, Comparison.LE, 50))
        operator.on_marker(
            _marker(2, 100, created=[(new, 0)], deleted=[("old", 0)], width=1)
        )
        operator.process(Record(timestamp=150, value=field_tuple(1, f0=10), key=1))
        records = [e for e in out if isinstance(e, Record)]
        assert records[0].tags[QS_TAG] == 0b1  # new predicate matched


class TestEventTimeEpochs:
    def test_late_record_tagged_under_its_epoch(self):
        """A record older than the newest changelog uses the query view
        that was in force at its own event time."""
        operator, out = _wired()
        query = _selection_query("q")
        operator.on_marker(_marker(1, 1_000, created=[(query, 0)], width=1))
        operator.on_marker(_marker(2, 2_000, deleted=[("q", 0)], width=1))
        # Late record from the [1000, 2000) epoch: q was active then.
        operator.process(Record(timestamp=1_500, value=field_tuple(1), key=1))
        records = [e for e in out if isinstance(e, Record)]
        assert records[0].tags[QS_TAG] == 0b1
        assert records[0].tags[EPOCH_TAG] == 1

    def test_record_before_first_changelog_dropped(self):
        operator, out = _wired()
        query = _selection_query("q")
        operator.on_marker(_marker(1, 1_000, created=[(query, 0)], width=1))
        operator.process(Record(timestamp=500, value=field_tuple(1), key=1))
        assert [e for e in out if isinstance(e, Record)] == []

    def test_prune_views(self):
        operator, _ = _wired()
        query = _selection_query("q")
        operator.on_marker(_marker(1, 1_000, created=[(query, 0)], width=1))
        operator.on_marker(_marker(2, 2_000, deleted=[("q", 0)], width=1))
        dropped = operator.prune_views_before(2_500)
        assert dropped == 2  # epoch 0 and epoch 1 views gone
        # The view in force at 2500 must survive.
        assert operator._view_for(2_500).sequence == 2


class TestSnapshot:
    def test_round_trip(self):
        operator, _ = _wired()
        query = _selection_query("q")
        operator.on_marker(_marker(1, 100, created=[(query, 0)], width=1))
        snapshot = operator.snapshot()
        restored, out = _wired()
        restored.restore(snapshot)
        restored.process(Record(timestamp=150, value=field_tuple(1), key=1))
        records = [e for e in out if isinstance(e, Record)]
        assert records[0].tags[QS_TAG] == 0b1


class TestPredicateDeduplication:
    """Selection-level sharing: identical predicates evaluated once."""

    def test_shared_predicate_single_evaluation(self):
        operator, out = _wired()
        shared = FieldPredicate(0, Comparison.GT, 5)
        q1 = _selection_query("q1", predicate=shared)
        q2 = _selection_query("q2", predicate=FieldPredicate(0, Comparison.GT, 5))
        q3 = _selection_query("q3", predicate=FieldPredicate(0, Comparison.LE, 5))
        operator.on_marker(
            _marker(1, 0, created=[(q1, 0), (q2, 1), (q3, 2)], width=3)
        )
        operator.process(Record(timestamp=10, value=field_tuple(1, f0=9), key=1))
        # Two distinct predicates -> two evaluations for three queries.
        assert operator.predicate_evaluations == 2
        records = [e for e in out if isinstance(e, Record)]
        assert records[0].tags[QS_TAG] == 0b011  # q1 and q2 both match

    def test_dedup_disabled_evaluates_per_query(self):
        operator = SharedSelectionOperator("A", dedup_predicates=False)
        collected = []
        operator.set_collector(collected.append)
        predicate = FieldPredicate(0, Comparison.GT, 5)
        q1 = _selection_query("q1", predicate=predicate)
        q2 = _selection_query("q2", predicate=predicate)
        operator.on_marker(_marker(1, 0, created=[(q1, 0), (q2, 1)], width=2))
        operator.process(Record(timestamp=10, value=field_tuple(1, f0=9), key=1))
        assert operator.predicate_evaluations == 2

    def test_unhashable_udf_predicates_not_merged(self):
        from repro.core.query import CallablePredicate

        operator, out = _wired()
        first = CallablePredicate(lambda v: v.fields[0] > 5)
        second = CallablePredicate(lambda v: v.fields[0] > 5)
        q1 = _selection_query("q1", predicate=first)
        q2 = _selection_query("q2", predicate=second)
        operator.on_marker(_marker(1, 0, created=[(q1, 0), (q2, 1)], width=2))
        operator.process(Record(timestamp=10, value=field_tuple(1, f0=9), key=1))
        records = [e for e in out if isinstance(e, Record)]
        assert records[0].tags[QS_TAG] == 0b11

    def test_dedup_results_identical_to_undeduped(self):
        def run(dedup):
            operator = SharedSelectionOperator("A", dedup_predicates=dedup)
            collected = []
            operator.set_collector(collected.append)
            queries = [
                _selection_query(
                    f"q{i}", predicate=FieldPredicate(i % 2, Comparison.GE, 50)
                )
                for i in range(6)
            ]
            operator.on_marker(
                _marker(
                    1, 0,
                    created=[(q, i) for i, q in enumerate(queries)],
                    width=6,
                )
            )
            for ts in range(10, 500, 37):
                operator.process(
                    Record(
                        timestamp=ts,
                        value=field_tuple(1, f0=ts % 100, f1=(ts * 3) % 100),
                        key=1,
                    )
                )
            return [
                (e.timestamp, e.tags[QS_TAG])
                for e in collected
                if isinstance(e, Record)
            ]

        assert run(True) == run(False)
