"""Tests and property tests for dynamic window slicing."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.query import WindowSpec
from repro.core.slicing import (
    EpochTimeline,
    Slice,
    SliceIndex,
    SliceManager,
)


class TestEpochTimeline:
    def test_initial_epoch(self):
        timeline = EpochTimeline()
        assert timeline.epoch_for(0) == (0, 0, None)
        assert timeline.current_sequence == 0

    def test_epoch_lookup(self):
        timeline = EpochTimeline()
        timeline.append(1, 1_000)
        timeline.append(2, 3_000)
        assert timeline.epoch_for(500) == (0, 0, 1_000)
        assert timeline.epoch_for(1_000) == (1, 1_000, 3_000)
        assert timeline.epoch_for(9_999) == (2, 3_000, None)

    def test_out_of_order_rejected(self):
        timeline = EpochTimeline()
        with pytest.raises(ValueError):
            timeline.append(2, 0)
        timeline.append(1, 1_000)
        with pytest.raises(ValueError):
            timeline.append(2, 500)


class TestSlice:
    def test_validation(self):
        with pytest.raises(ValueError):
            Slice(start=5, end=5, epoch=0)

    def test_covers_and_id(self):
        slice_ = Slice(start=10, end=20, epoch=3)
        assert slice_.covers(10)
        assert not slice_.covers(20)
        assert slice_.id == (3, 10)


class TestSliceIndex:
    def test_get_or_create_idempotent(self):
        index = SliceIndex()
        first = index.get_or_create(0, 10, 0)
        second = index.get_or_create(0, 10, 0)
        assert first is second
        assert index.created_total == 1

    def test_overlapping(self):
        index = SliceIndex()
        for start in (0, 10, 20, 30):
            index.get_or_create(start, start + 10, 0)
        overlapping = index.overlapping(5, 25)
        assert [s.start for s in overlapping] == [0, 10, 20]

    def test_expire_before(self):
        index = SliceIndex()
        for start in (0, 10, 20):
            index.get_or_create(start, start + 10, 0)
        expired = index.expire_before(20)
        assert [s.start for s in expired] == [0, 10]
        assert len(index) == 1
        assert index.expired_total == 2

    def test_expire_before_regressed_watermark_is_noop(self):
        index = SliceIndex()
        for start in (0, 10, 20):
            index.get_or_create(start, start + 10, 0)
        assert [s.start for s in index.expire_before(20)] == [0, 10]
        # A lagging shard-local watermark must not expire anything more
        # (and must not scan): the expiry horizon is monotonic.
        assert index.expire_before(5) == []
        assert len(index) == 1
        assert [s.start for s in index.expire_before(30)] == [20]

    def test_iteration_in_time_order(self):
        index = SliceIndex()
        index.get_or_create(20, 30, 0)
        index.get_or_create(0, 10, 0)
        assert [s.start for s in index] == [0, 20]


class TestSliceManager:
    def test_session_windows_rejected(self):
        manager = SliceManager()
        with pytest.raises(ValueError):
            manager.register_query(0, WindowSpec.session(1_000), 0)

    def test_slice_bounds_from_single_query(self):
        manager = SliceManager()
        manager.register_query(0, WindowSpec.tumbling(2_000), 1_000)
        manager.on_epoch(1, 1_000)
        start, end, epoch = manager.slice_bounds(1_500)
        assert (start, end, epoch) == (1_000, 3_000, 1)
        start, end, _ = manager.slice_bounds(3_100)
        assert (start, end) == (3_000, 5_000)

    def test_overlapping_queries_create_finer_slices(self):
        """Figure 4e: window edges of all active queries cut slices."""
        manager = SliceManager()
        manager.register_query(0, WindowSpec.tumbling(3_000), 0)
        manager.register_query(1, WindowSpec.tumbling(2_000), 0)
        manager.on_epoch(1, 0)
        # Edges: {0, 3000, 6000...} and {0, 2000, 4000...}.
        assert manager.slice_bounds(500)[:2] == (0, 2_000)
        assert manager.slice_bounds(2_500)[:2] == (2_000, 3_000)
        assert manager.slice_bounds(3_500)[:2] == (3_000, 4_000)

    def test_changelog_is_a_slice_edge(self):
        manager = SliceManager()
        manager.register_query(0, WindowSpec.tumbling(10_000), 0)
        manager.on_epoch(1, 0)
        manager.on_epoch(2, 4_000)
        assert manager.slice_bounds(3_999)[:2] == (0, 4_000)
        assert manager.slice_bounds(4_000)[0] == 4_000

    def test_late_record_uses_its_epochs_view(self):
        """A query registered at epoch 2 must not re-slice epoch-1 data."""
        manager = SliceManager()
        manager.register_query(0, WindowSpec.tumbling(4_000), 0)
        manager.on_epoch(1, 0)
        manager.register_query(1, WindowSpec.tumbling(1_000), 4_000)
        manager.on_epoch(2, 4_000)
        # Late record at 2500 (epoch 1): only slot 0's edges apply.
        assert manager.slice_bounds(2_500)[:2] == (0, 4_000)
        # Record in epoch 2 sees both queries' edges.
        assert manager.slice_bounds(4_500)[:2] == (4_000, 5_000)

    def test_unregistered_query_stops_cutting_new_epochs(self):
        manager = SliceManager()
        manager.register_query(0, WindowSpec.tumbling(1_000), 0)
        manager.on_epoch(1, 0)
        manager.unregister_query(0)
        manager.on_epoch(2, 5_000)
        start, end, epoch = manager.slice_bounds(6_500)
        assert epoch == 2
        assert end - start >= 1_000  # no 1s edges anymore

    def test_max_retention(self):
        manager = SliceManager()
        assert manager.max_retention_ms == 0
        manager.register_query(0, WindowSpec.sliding(5_000, 1_000), 0)
        manager.register_query(1, WindowSpec.tumbling(2_000), 0)
        assert manager.max_retention_ms == 5_000


class TestDueWindows:
    def test_windows_anchored_at_creation(self):
        manager = SliceManager()
        manager.register_query(0, WindowSpec.tumbling(2_000), 1_000)
        manager.on_epoch(1, 1_000)
        assert manager.due_windows(2_999) == [(0, 1_000, 3_000)]
        assert manager.due_windows(2_999) == []  # fired once
        assert manager.due_windows(7_000) == [
            (0, 3_000, 5_000), (0, 5_000, 7_000),
        ]

    def test_sliding_windows_fire_per_slide(self):
        manager = SliceManager()
        manager.register_query(0, WindowSpec.sliding(2_000, 1_000), 0)
        manager.on_epoch(1, 0)
        due = manager.due_windows(3_999)
        assert due == [(0, 0, 2_000), (0, 1_000, 3_000), (0, 2_000, 4_000)]

    def test_deleted_queries_stop_firing(self):
        manager = SliceManager()
        manager.register_query(0, WindowSpec.tumbling(1_000), 0)
        manager.on_epoch(1, 0)
        manager.unregister_query(0)
        assert manager.due_windows(10_000) == []


@st.composite
def _query_populations(draw):
    count = draw(st.integers(1, 5))
    queries = []
    for slot in range(count):
        length = draw(st.integers(1, 5)) * 1_000
        slide = draw(st.integers(1, length // 1_000)) * 1_000
        created = draw(st.integers(0, 4)) * 500
        queries.append((slot, WindowSpec.sliding(length, slide), created))
    return queries


class TestSlicingProperties:
    @settings(max_examples=60)
    @given(_query_populations(), st.integers(0, 20_000))
    def test_slice_contains_timestamp_and_no_edge_inside(self, queries, ts):
        """The slice covering ts contains ts, and no query window edge
        falls strictly inside the slice."""
        manager = SliceManager()
        for slot, spec, created in queries:
            manager.register_query(slot, spec, created)
        manager.on_epoch(1, 0)
        start, end, _ = manager.slice_bounds(ts)
        assert start <= ts < end
        for slot, spec, created in queries:
            for offset in (0, spec.length_ms):
                anchor = created + offset
                edge = anchor
                while edge < end:
                    if edge > start:
                        assert edge >= end or edge <= start, (
                            f"edge {edge} inside slice [{start}, {end})"
                        )
                    edge += spec.slide_ms

    @settings(max_examples=60)
    @given(_query_populations())
    def test_slices_tile_the_timeline(self, queries):
        """Walking slice bounds covers the timeline without gaps/overlap."""
        manager = SliceManager()
        for slot, spec, created in queries:
            manager.register_query(slot, spec, created)
        manager.on_epoch(1, 0)
        cursor = 0
        for _ in range(50):
            start, end, _ = manager.slice_bounds(cursor)
            assert start <= cursor < end
            cursor = end
            if cursor > 30_000:
                break

    @settings(max_examples=60)
    @given(_query_populations())
    def test_windows_are_unions_of_whole_slices(self, queries):
        """Every query window's edges are slice boundaries."""
        manager = SliceManager()
        for slot, spec, created in queries:
            manager.register_query(slot, spec, created)
        manager.on_epoch(1, 0)
        for slot, spec, created in queries:
            for fire_index in range(3):
                w_start, w_end = spec.windows_for(created, fire_index)
                # The slice starting at w_start must begin exactly there.
                assert manager.slice_bounds(w_start)[0] == w_start
                # The slice containing w_end - 1 must close exactly at w_end.
                assert manager.slice_bounds(w_end - 1)[1] == w_end


class TestPruning:
    def test_timeline_prune_keeps_covering_epoch(self):
        timeline = EpochTimeline()
        timeline.append(1, 1_000)
        timeline.append(2, 2_000)
        timeline.append(3, 3_000)
        dropped = timeline.prune_before(2_500)
        assert dropped == 2  # epochs 0 and 1 gone
        # Lookups at and after the horizon still resolve.
        assert timeline.epoch_for(2_500)[0] == 2
        assert timeline.epoch_for(9_999)[0] == 3

    def test_timeline_prune_regressed_watermark_is_noop(self):
        # Shard-local watermarks can lag each other; a prune call with
        # an older timestamp than one already applied must not assume
        # it is the global minimum and must leave the timeline alone.
        timeline = EpochTimeline()
        timeline.append(1, 1_000)
        timeline.append(2, 2_000)
        timeline.append(3, 3_000)
        assert timeline.prune_before(2_500) == 2
        assert timeline.prune_before(1_500) == 0
        assert timeline.epoch_for(2_500)[0] == 2
        # Advancing past the old horizon prunes again.
        assert timeline.prune_before(3_500) == 1

    def test_timeline_prune_noop_before_first(self):
        timeline = EpochTimeline()
        timeline.append(1, 1_000)
        assert timeline.prune_before(500) == 0
        assert len(timeline) == 2

    def test_manager_prune_drops_views_in_lockstep(self):
        manager = SliceManager()
        manager.register_query(0, WindowSpec.tumbling(1_000), 0)
        manager.on_epoch(1, 0)
        manager.unregister_query(0)
        manager.on_epoch(2, 5_000)
        manager.register_query(1, WindowSpec.tumbling(2_000), 9_000)
        manager.on_epoch(3, 9_000)
        dropped = manager.prune_before(9_500)
        assert dropped == 3
        # Bounds after pruning still come from the surviving view.
        start, end, epoch = manager.slice_bounds(10_000)
        assert epoch == 3
        assert end - start <= 2_000

    def test_prune_then_bounds_at_horizon(self):
        manager = SliceManager()
        manager.register_query(0, WindowSpec.tumbling(1_000), 0)
        manager.on_epoch(1, 0)
        manager.on_epoch(2, 4_000)
        manager.prune_before(4_000)
        # The epoch covering the horizon survives and still slices.
        assert manager.slice_bounds(4_500)[2] == 2
