"""SQL → normalized-plan equivalence (ISSUE 8 satellite).

The serve layer accepts the same query as a serde document or as SQL
text (``create_query`` routes through ``query_from_dict`` /
``parse_query``).  The sharing optimizer must not care which spelling
arrived: canonical form is representation-independent, so both land in
the same sharing group with the same covering plan.
"""

from repro.core.planner import normalize
from repro.core.query import Comparison, FieldPredicate, SelectionQuery
from repro.core.selection import QS_TAG
from repro.core.serde import query_from_dict, query_to_dict
from repro.core.sql import ConjunctionPredicate, parse_query
from repro.minispe.record import Record
from tests.conftest import field_tuple, go_live, make_engine

SQL = "SELECT * FROM A WHERE A.F0 >= 25 AND A.F0 <= 40"


def _doc_query(query_id: str) -> SelectionQuery:
    """The same region as ``SQL``, spelled as a serde doc — with the
    conjuncts permuted, so value-identity dedup alone cannot merge it
    with the SQL parse."""
    document = query_to_dict(
        SelectionQuery(
            stream="A",
            predicate=ConjunctionPredicate(
                (
                    FieldPredicate(0, Comparison.LE, 40),
                    FieldPredicate(0, Comparison.GE, 25),
                )
            ),
            query_id=query_id,
        )
    )
    return query_from_dict(document)


def test_sql_and_doc_forms_normalize_identically():
    sql_query = parse_query(SQL)
    doc_query = _doc_query("doc-1")
    sql_norm = normalize(sql_query.predicate_for("A"))
    doc_norm = normalize(doc_query.predicate_for("A"))
    # Different predicate objects (permuted conjuncts)...
    assert sql_query.predicate_for("A") != doc_query.predicate_for("A")
    # ...same canonical region.
    assert sql_norm.canonical_key == doc_norm.canonical_key


def test_both_representations_land_in_one_sharing_group():
    engine = make_engine(streams=("A",))
    go_live(engine, [parse_query(SQL), _doc_query("doc-2")])
    operator = engine.selection_operators("A")[0]
    stats = operator.sharing_group_stats()
    assert stats["groups"] == 1
    assert stats["grouped_slots"] == 2
    assert stats["direct_predicates"] == 0
    plan = operator._views[-1].plan
    assert plan.groups[0].slots_mask == 0b11
    engine.shutdown()


def test_shared_group_tags_both_queries_identically():
    engine = make_engine(streams=("A",))
    go_live(engine, [parse_query(SQL), _doc_query("doc-3")])
    operator = engine.selection_operators("A")[0]
    tagged = []
    operator.set_collector(tagged.append)
    operator.process(Record(timestamp=5, value=field_tuple(1, f0=30), key=1))
    operator.process(Record(timestamp=6, value=field_tuple(1, f0=80), key=1))
    records = [element for element in tagged if isinstance(element, Record)]
    assert len(records) == 1  # f0=80 matches neither spelling
    assert records[0].tags[QS_TAG] == 0b11  # f0=30 matches both
    engine.shutdown()
