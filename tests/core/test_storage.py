"""Tests for the per-slice tuple stores and the adaptive conversion."""

from hypothesis import given, strategies as st

from repro.core.storage import (
    GroupedStore,
    ListStore,
    StoreKind,
    convert_store,
    make_store,
)


class TestGroupedStore:
    def test_add_and_lookup(self):
        store = GroupedStore()
        store.add("k", "v1", 0b01)
        store.add("k", "v2", 0b10)
        store.add("j", "v3", 0b01)
        assert store.tuple_count == 3
        assert store.group_count == 2
        assert sorted(store.items_for_key("k")) == [("v1", 0b01), ("v2", 0b10)]

    def test_groups_iteration(self):
        store = GroupedStore()
        store.add("k", "v1", 0b01)
        store.add("k", "v2", 0b01)
        groups = dict(store.groups())
        assert groups[0b01]["k"] == ["v1", "v2"]

    def test_keys_deduplicated(self):
        store = GroupedStore()
        store.add("k", "v1", 0b01)
        store.add("k", "v2", 0b10)
        assert list(store.keys()) == ["k"]

    def test_mean_group_size(self):
        store = GroupedStore()
        assert store.mean_group_size() == 0.0
        store.add("k", "v1", 0b01)
        store.add("k", "v2", 0b01)
        store.add("k", "v3", 0b10)
        assert store.mean_group_size() == 1.5


class TestListStore:
    def test_add_and_lookup(self):
        store = ListStore()
        store.add("k", "v1", 0b01)
        store.add("k", "v2", 0b11)
        assert store.tuple_count == 2
        assert store.items_for_key("k") == [("v1", 0b01), ("v2", 0b11)]
        assert store.items_for_key("missing") == []

    def test_group_count_equals_tuples(self):
        """Lists report one group per tuple so the adaptive heuristic
        never flips back spuriously."""
        store = ListStore()
        store.add("k", "v1", 0b01)
        store.add("k", "v2", 0b01)
        assert store.group_count == 2
        assert store.mean_group_size() == 1.0


class TestConversion:
    def test_make_store(self):
        assert make_store(StoreKind.GROUPED).kind is StoreKind.GROUPED
        assert make_store(StoreKind.LIST).kind is StoreKind.LIST

    def test_convert_is_noop_for_same_kind(self):
        store = GroupedStore()
        assert convert_store(store, StoreKind.GROUPED) is store

    def test_grouped_to_list_preserves_content(self):
        grouped = GroupedStore()
        grouped.add("k", "v1", 0b01)
        grouped.add("j", "v2", 0b10)
        flat = convert_store(grouped, StoreKind.LIST)
        assert flat.kind is StoreKind.LIST
        assert flat.tuple_count == 2
        assert flat.items_for_key("k") == [("v1", 0b01)]

    @given(
        st.lists(
            st.tuples(
                st.integers(0, 5),            # key
                st.integers(0, 100),          # value
                st.integers(1, 2**6 - 1),     # query-set
            ),
            max_size=40,
        )
    )
    def test_conversion_round_trip_preserves_multiset(self, tuples):
        grouped = GroupedStore()
        for key, value, query_set in tuples:
            grouped.add(key, value, query_set)
        flat = convert_store(grouped, StoreKind.LIST)
        back = convert_store(flat, StoreKind.GROUPED)
        for store in (flat, back):
            assert store.tuple_count == len(tuples)
            for key in {key for key, _, _ in tuples}:
                expected = sorted(
                    (value, query_set)
                    for tuple_key, value, query_set in tuples
                    if tuple_key == key
                )
                assert sorted(store.items_for_key(key)) == expected
