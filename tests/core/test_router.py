"""Tests for the router and query channels."""

from typing import List

from repro.core.changelog import Changelog, QueryActivation, QueryDeactivation
from repro.core.query import (
    AggregationQuery,
    JoinQuery,
    SelectionQuery,
    TruePredicate,
    WindowSpec,
)
from repro.core.router import QueryChannels, RouterOperator
from repro.core.selection import QS_TAG
from repro.minispe.record import ChangelogMarker, Record, Watermark


def _selection(name: str) -> SelectionQuery:
    return SelectionQuery(stream="A", predicate=TruePredicate(), query_id=name)


def _join(name: str) -> JoinQuery:
    return JoinQuery(
        left_stream="A", right_stream="B",
        left_predicate=TruePredicate(), right_predicate=TruePredicate(),
        window_spec=WindowSpec.tumbling(1_000), query_id=name,
    )


def _marker(sequence, created=(), deleted=(), width=0) -> ChangelogMarker:
    changelog = Changelog(
        sequence=sequence,
        timestamp_ms=sequence,
        created=tuple(QueryActivation(q, slot, 0) for q, slot in created),
        deleted=tuple(QueryDeactivation(qid, slot) for qid, slot in deleted),
        width_after=width,
    )
    return ChangelogMarker(timestamp=sequence, changelog=changelog)


def _router(upstream="select:A"):
    channels = QueryChannels()
    router = RouterOperator(upstream, channels)
    router.set_collector(lambda element: None)
    return router, channels


class TestRouting:
    def test_routes_output_stage_queries_only(self):
        """A selection-stage router must not route join queries whose
        output stage is the join operator."""
        router, channels = _router("select:A")
        selection = _selection("sel")
        join = _join("join")
        router.on_marker(_marker(1, created=[(selection, 0), (join, 1)], width=2))
        router.process(
            Record(timestamp=5, value="v", key=1, tags={QS_TAG: 0b11})
        )
        assert channels.count("sel") == 1
        assert channels.count("join") == 0
        assert router.copies == 1

    def test_copy_per_interested_query(self):
        router, channels = _router()
        queries = [(_selection(f"q{i}"), i) for i in range(3)]
        router.on_marker(_marker(1, created=queries, width=3))
        router.process(
            Record(timestamp=5, value="v", key=1, tags={QS_TAG: 0b101})
        )
        assert channels.count("q0") == 1
        assert channels.count("q1") == 0
        assert channels.count("q2") == 1
        assert router.copies == 2

    def test_untagged_records_dropped(self):
        router, channels = _router()
        router.on_marker(_marker(1, created=[(_selection("q"), 0)], width=1))
        router.process(Record(timestamp=5, value="v", key=1))
        assert channels.total_delivered() == 0

    def test_deleted_query_unrouted(self):
        router, channels = _router()
        router.on_marker(_marker(1, created=[(_selection("q"), 0)], width=1))
        router.on_marker(_marker(2, deleted=[("q", 0)], width=1))
        router.process(
            Record(timestamp=5, value="v", key=1, tags={QS_TAG: 0b1})
        )
        assert channels.count("q") == 0

    def test_results_retained_after_deletion(self):
        router, channels = _router()
        router.on_marker(_marker(1, created=[(_selection("q"), 0)], width=1))
        router.process(Record(timestamp=5, value="v", key=1, tags={QS_TAG: 1}))
        router.on_marker(_marker(2, deleted=[("q", 0)], width=1))
        assert channels.count("q") == 1
        assert channels.results("q")[0].value == "v"

    def test_watermarks_terminate_here(self):
        router, _ = _router()
        captured: List = []
        router.set_collector(captured.append)
        router.on_watermark(Watermark(timestamp=9))
        assert captured == []

    def test_snapshot_round_trip(self):
        router, channels = _router()
        router.on_marker(_marker(1, created=[(_selection("q"), 0)], width=1))
        snapshot = router.snapshot()
        fresh = RouterOperator("select:A", channels)
        fresh.set_collector(lambda element: None)
        fresh.restore(snapshot)
        fresh.process(Record(timestamp=5, value="v", key=1, tags={QS_TAG: 1}))
        assert channels.count("q") == 1


class TestQueryChannels:
    def test_counts_without_retention(self):
        channels = QueryChannels(retain_results=False)
        channels.open_channel("q")
        channels.deliver("q", 1, "v")
        assert channels.count("q") == 1
        assert channels.results("q") == []

    def test_on_deliver_hook(self):
        seen = []
        channels = QueryChannels(on_deliver=lambda qid, ts: seen.append((qid, ts)))
        channels.deliver("q", 42, "v")
        assert seen == [("q", 42)]

    def test_total_and_ids(self):
        channels = QueryChannels()
        channels.deliver("a", 1, "v")
        channels.deliver("a", 2, "w")
        channels.deliver("b", 3, "x")
        assert channels.total_delivered() == 3
        assert sorted(channels.query_ids()) == ["a", "b"]
