"""Tests for query specifications: predicates, windows, plans."""

import pytest

from repro.core.query import (
    AggregationKind,
    AggregationQuery,
    AggregationSpec,
    CallablePredicate,
    Comparison,
    ComplexQuery,
    FieldPredicate,
    JoinQuery,
    SelectionQuery,
    TruePredicate,
    WindowKind,
    WindowSpec,
)
from tests.conftest import field_tuple


class TestComparison:
    def test_all_operators(self):
        assert Comparison.LT.apply(1, 2)
        assert Comparison.GT.apply(2, 1)
        assert Comparison.EQ.apply(2, 2)
        assert Comparison.LE.apply(2, 2)
        assert Comparison.GE.apply(2, 2)
        assert not Comparison.LT.apply(2, 2)


class TestPredicates:
    def test_field_predicate(self):
        predicate = FieldPredicate(2, Comparison.GT, 10)
        assert predicate.evaluate(field_tuple(0, f2=11))
        assert not predicate.evaluate(field_tuple(0, f2=10))

    def test_field_predicate_validation(self):
        with pytest.raises(ValueError):
            FieldPredicate(-1, Comparison.GT, 0)

    def test_true_predicate(self):
        assert TruePredicate().evaluate(object())

    def test_callable_predicate(self):
        predicate = CallablePredicate(lambda v: v.key == 3, "key==3")
        assert predicate.evaluate(field_tuple(3))
        assert str(predicate) == "key==3"

    def test_str(self):
        assert str(FieldPredicate(1, Comparison.LE, 5)) == "fields[1] <= 5"


class TestWindowSpec:
    def test_tumbling(self):
        spec = WindowSpec.tumbling(2_000)
        assert spec.kind is WindowKind.TUMBLING
        assert spec.slide_ms == spec.length_ms == 2_000

    def test_sliding_collapses_to_tumbling(self):
        assert WindowSpec.sliding(1_000, 1_000).kind is WindowKind.TUMBLING

    def test_sliding(self):
        spec = WindowSpec.sliding(3_000, 1_000)
        assert spec.kind is WindowKind.SLIDING

    def test_session(self):
        spec = WindowSpec.session(500)
        assert spec.is_session
        assert spec.retention_ms() == 500

    def test_validation(self):
        with pytest.raises(ValueError):
            WindowSpec.tumbling(0)
        with pytest.raises(ValueError):
            WindowSpec.sliding(1_000, 2_000)
        with pytest.raises(ValueError):
            WindowSpec.session(0)

    def test_windows_for_anchored_at_creation(self):
        spec = WindowSpec.sliding(3_000, 1_000)
        assert spec.windows_for(500, 0) == (500, 3_500)
        assert spec.windows_for(500, 2) == (2_500, 5_500)

    def test_windows_for_session_rejected(self):
        with pytest.raises(ValueError):
            WindowSpec.session(100).windows_for(0, 0)

    def test_make_assigner_kinds(self):
        from repro.minispe.windows import (
            SessionWindows,
            SlidingWindows,
            TumblingWindows,
        )

        assert isinstance(WindowSpec.tumbling(1_000).make_assigner(), TumblingWindows)
        assert isinstance(
            WindowSpec.sliding(2_000, 500).make_assigner(), SlidingWindows
        )
        assert isinstance(WindowSpec.session(100).make_assigner(), SessionWindows)


class TestAggregationSpec:
    def test_sum(self):
        spec = AggregationSpec(AggregationKind.SUM, field_index=1)
        acc = spec.add(spec.initial(), field_tuple(0, f1=4))
        acc = spec.add(acc, field_tuple(0, f1=6))
        assert spec.finish(acc) == 10

    def test_count(self):
        spec = AggregationSpec(AggregationKind.COUNT)
        acc = spec.add(spec.add(spec.initial(), None), None)
        assert spec.finish(acc) == 2

    def test_min_max(self):
        low = AggregationSpec(AggregationKind.MIN, field_index=0)
        high = AggregationSpec(AggregationKind.MAX, field_index=0)
        values = [field_tuple(0, f0=v) for v in (5, 2, 9)]
        acc_low, acc_high = low.initial(), high.initial()
        for value in values:
            acc_low = low.add(acc_low, value)
            acc_high = high.add(acc_high, value)
        assert low.finish(acc_low) == 2
        assert high.finish(acc_high) == 9

    def test_avg(self):
        spec = AggregationSpec(AggregationKind.AVG, field_index=0)
        acc = spec.initial()
        for v in (2, 4):
            acc = spec.add(acc, field_tuple(0, f0=v))
        assert spec.finish(acc) == 3.0
        assert spec.finish(spec.initial()) == 0.0

    def test_merge(self):
        spec = AggregationSpec(AggregationKind.MIN, field_index=0)
        assert spec.merge(None, 5) == 5
        assert spec.merge(3, None) == 3
        assert spec.merge(3, 5) == 3


class TestQueryPlans:
    def test_selection_stages(self):
        query = SelectionQuery(stream="A", predicate=TruePredicate())
        stages = query.stages()
        assert [stage.operator for stage in stages] == ["select:A"]
        assert stages[0].is_output

    def test_aggregation_stages(self):
        query = AggregationQuery(
            stream="B", predicate=TruePredicate(),
            window_spec=WindowSpec.tumbling(1_000),
        )
        assert [s.operator for s in query.stages()] == ["select:B", "agg:B"]
        assert query.stages()[-1].is_output

    def test_join_stages(self):
        query = JoinQuery(
            left_stream="A", right_stream="B",
            left_predicate=TruePredicate(), right_predicate=TruePredicate(),
            window_spec=WindowSpec.tumbling(1_000),
        )
        assert [s.operator for s in query.stages()] == [
            "select:A", "select:B", "join:A~B",
        ]

    def test_join_validation(self):
        with pytest.raises(ValueError, match="self-joins"):
            JoinQuery(
                left_stream="A", right_stream="A",
                left_predicate=TruePredicate(),
                right_predicate=TruePredicate(),
                window_spec=WindowSpec.tumbling(1_000),
            )
        with pytest.raises(ValueError, match="time windows"):
            JoinQuery(
                left_stream="A", right_stream="B",
                left_predicate=TruePredicate(),
                right_predicate=TruePredicate(),
                window_spec=WindowSpec.session(1_000),
            )

    def test_complex_stages_cascade(self):
        query = ComplexQuery(
            join_streams=("A", "B", "C"),
            predicates=(TruePredicate(),) * 3,
            join_window=WindowSpec.tumbling(1_000),
            aggregation_window=WindowSpec.tumbling(2_000),
        )
        assert [s.operator for s in query.stages()] == [
            "select:A", "select:B", "select:C",
            "join:A~B", "join:A~B~C", "agg:A~B~C",
        ]
        assert query.join_arity == 2
        assert query.stages()[-1].is_output

    def test_complex_validation(self):
        with pytest.raises(ValueError, match="at least two"):
            ComplexQuery(
                join_streams=("A",),
                predicates=(TruePredicate(),),
                join_window=WindowSpec.tumbling(1_000),
                aggregation_window=WindowSpec.tumbling(1_000),
            )
        with pytest.raises(ValueError, match="one predicate per stream"):
            ComplexQuery(
                join_streams=("A", "B"),
                predicates=(TruePredicate(),),
                join_window=WindowSpec.tumbling(1_000),
                aggregation_window=WindowSpec.tumbling(1_000),
            )

    def test_predicate_for(self):
        left, right = FieldPredicate(0, Comparison.GT, 1), TruePredicate()
        query = JoinQuery(
            left_stream="A", right_stream="B",
            left_predicate=left, right_predicate=right,
            window_spec=WindowSpec.tumbling(1_000),
        )
        assert query.predicate_for("A") is left
        assert query.predicate_for("B") is right
        with pytest.raises(KeyError):
            query.predicate_for("C")

    def test_query_ids_unique(self):
        first = SelectionQuery(stream="A", predicate=TruePredicate())
        second = SelectionQuery(stream="A", predicate=TruePredicate())
        assert first.query_id != second.query_id
