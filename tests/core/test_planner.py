"""Unit tests for the semantic-overlap multi-query planner (ISSUE 8)."""

from repro.core.planner import (
    Interval,
    NormalizedPredicate,
    SharingGroup,
    compile_selection_plan,
    covering,
    normalize,
    overlaps,
    sharing_affinity_key,
    subsumes,
)
from repro.core.query import (
    AggregationQuery,
    CallablePredicate,
    Comparison,
    FieldPredicate,
    SelectionQuery,
    TruePredicate,
    WindowSpec,
)
from repro.core.selection import SharedSelectionOperator
from repro.core.sql import ConjunctionPredicate, parse_query
from tests.conftest import field_tuple

GE = Comparison.GE
GT = Comparison.GT
LE = Comparison.LE
LT = Comparison.LT
EQ = Comparison.EQ


class TestIntervalAlgebra:
    def test_bound_kinds_in_key_space(self):
        closed = Interval(5, True, 10, True)
        assert closed.contains_value(5) and closed.contains_value(10)
        open_ = Interval(5, False, 10, False)
        assert not open_.contains_value(5) and not open_.contains_value(10)
        assert open_.contains_value(6)

    def test_intersect_prefers_tighter_bounds(self):
        left = Interval(0, True, 10, True)
        right = Interval(0, False, 10, False)
        meet = left.intersect(right)
        assert not meet.contains_value(0) and not meet.contains_value(10)

    def test_touching_intervals_do_not_overlap(self):
        # (5, inf) and (-inf, 5] touch at 5 without sharing a value.
        gt = Interval(low=5, low_inclusive=False)
        le = Interval(high=5, high_inclusive=True)
        assert not gt.overlaps(le)
        # [5, inf) and (-inf, 5] do share the value 5.
        ge = Interval(low=5, low_inclusive=True)
        assert ge.overlaps(le)

    def test_empty_after_contradictory_intersection(self):
        meet = Interval(low=5, low_inclusive=False).intersect(
            Interval(high=3, high_inclusive=True)
        )
        assert meet.is_empty

    def test_hull_widens_both_bounds(self):
        hull = Interval(0, True, 4, True).hull(Interval(2, False, 9, False))
        assert hull.contains_value(0) and hull.contains_value(8)
        assert not hull.contains_value(9)


class TestNormalize:
    def test_field_predicate_forms(self):
        for op, inside, outside in (
            (LT, 4, 5),
            (LE, 5, 6),
            (GT, 6, 5),
            (GE, 5, 4),
            (EQ, 5, 6),
        ):
            norm = normalize(FieldPredicate(0, op, 5))
            assert norm.evaluate(field_tuple(1, f0=inside)), op
            assert not norm.evaluate(field_tuple(1, f0=outside)), op

    def test_true_predicate_is_unconstrained(self):
        norm = normalize(TruePredicate())
        assert norm.satisfiable and norm.constraints == ()
        assert norm.anchor_field is None

    def test_udf_is_not_normalizable(self):
        assert normalize(CallablePredicate(lambda v: True)) is None

    def test_conjunction_folds_per_field(self):
        norm = normalize(
            ConjunctionPredicate(
                (
                    FieldPredicate(0, GE, 25),
                    FieldPredicate(0, GE, 50),  # tighter: folded in
                    FieldPredicate(1, LT, 10),
                )
            )
        )
        assert len(norm.constraints) == 2
        assert norm.evaluate(field_tuple(1, f0=50, f1=5))
        assert not norm.evaluate(field_tuple(1, f0=40, f1=5))

    def test_contradiction_folds_to_unsatisfiable(self):
        norm = normalize(
            ConjunctionPredicate(
                (FieldPredicate(0, GT, 5), FieldPredicate(0, LT, 3))
            )
        )
        assert not norm.satisfiable
        assert not norm.evaluate(field_tuple(1, f0=4))

    def test_canonical_key_is_representation_independent(self):
        permuted = normalize(
            ConjunctionPredicate(
                (FieldPredicate(1, LT, 10), FieldPredicate(0, GE, 50))
            )
        )
        ordered = normalize(
            ConjunctionPredicate(
                (FieldPredicate(0, GE, 50), FieldPredicate(1, LT, 10))
            )
        )
        assert permuted.canonical_key == ordered.canonical_key
        # GE 50 alone vs the same region spelled redundantly.
        redundant = normalize(
            ConjunctionPredicate(
                (FieldPredicate(0, GE, 50), FieldPredicate(0, GE, 25))
            )
        )
        assert redundant.canonical_key == normalize(
            FieldPredicate(0, GE, 50)
        ).canonical_key


class TestSubsumptionAndOverlap:
    def test_issue_example_ge50_subsumed_by_ge25(self):
        wider = normalize(FieldPredicate(0, GE, 25))
        narrower = normalize(FieldPredicate(0, GE, 50))
        assert subsumes(wider, narrower)
        assert not subsumes(narrower, wider)

    def test_multi_field_subsumption(self):
        wider = normalize(FieldPredicate(0, GE, 25))
        narrower = normalize(
            ConjunctionPredicate(
                (FieldPredicate(0, GE, 50), FieldPredicate(1, LT, 10))
            )
        )
        assert subsumes(wider, narrower)
        assert not subsumes(narrower, wider)

    def test_everything_subsumes_unsatisfiable(self):
        unsat = normalize(
            ConjunctionPredicate(
                (FieldPredicate(0, GT, 5), FieldPredicate(0, LT, 3))
            )
        )
        assert subsumes(normalize(FieldPredicate(0, LT, 0)), unsat)
        assert not subsumes(unsat, normalize(TruePredicate()))

    def test_overlap_of_shifted_ranges(self):
        a = normalize(
            ConjunctionPredicate(
                (FieldPredicate(0, GE, 10), FieldPredicate(0, LE, 25))
            )
        )
        b = normalize(
            ConjunctionPredicate(
                (FieldPredicate(0, GE, 20), FieldPredicate(0, LE, 35))
            )
        )
        c = normalize(FieldPredicate(0, GE, 30))
        assert overlaps(a, b)
        assert not overlaps(a, c)
        assert overlaps(b, c)

    def test_covering_subsumes_every_member(self):
        members = [
            normalize(FieldPredicate(0, GE, 25)),
            normalize(
                ConjunctionPredicate(
                    (FieldPredicate(0, GE, 50), FieldPredicate(1, LT, 10))
                )
            ),
        ]
        cover = covering(members)
        for member in members:
            assert subsumes(cover, member)
        # Field 1 is unconstrained in the first member, so the cover
        # must not constrain it.
        assert [f for f, _ in cover.constraints] == [0]


def _pairs(*predicates):
    return [(predicate, 1 << slot) for slot, predicate in enumerate(predicates)]


class TestCompiledPlan:
    def test_disjoint_predicates_stay_direct(self):
        plan = compile_selection_plan(
            _pairs(FieldPredicate(0, GT, 5), FieldPredicate(0, LE, 5))
        )
        assert len(plan.direct) == 2 and not plan.groups

    def test_overlapping_predicates_form_group(self):
        plan = compile_selection_plan(
            _pairs(FieldPredicate(0, GE, 25), FieldPredicate(0, GE, 50))
        )
        assert not plan.direct
        assert len(plan.groups) == 1
        group = plan.groups[0]
        assert group.member_count == 2
        assert group.slots_mask == 0b11

    def test_group_evaluation_matches_members(self):
        a = FieldPredicate(0, GE, 25)
        b = FieldPredicate(0, GE, 50)
        plan = compile_selection_plan(_pairs(a, b))
        group = plan.groups[0]
        for value in (0, 24, 25, 30, 49, 50, 75, 100):
            record = field_tuple(1, f0=value)
            expected = (1 if a.evaluate(record) else 0) | (
                2 if b.evaluate(record) else 0
            )
            assert group.evaluate(record) == expected, value

    def test_cover_check_rejects_outside_hull(self):
        plan = compile_selection_plan(
            _pairs(
                ConjunctionPredicate(
                    (FieldPredicate(0, GE, 20), FieldPredicate(0, LE, 40))
                ),
                ConjunctionPredicate(
                    (FieldPredicate(0, GE, 30), FieldPredicate(0, LE, 50))
                ),
            )
        )
        group = plan.groups[0]
        assert group.evaluate(field_tuple(1, f0=60)) == 0
        assert group.cover_skips == 1
        assert group.evaluate(field_tuple(1, f0=35)) == 0b11
        assert group.evaluate(field_tuple(1, f0=45)) == 0b10

    def test_residual_refines_multi_field_member(self):
        single = ConjunctionPredicate(
            (FieldPredicate(0, GE, 20), FieldPredicate(0, LE, 40))
        )
        multi = ConjunctionPredicate(
            (
                FieldPredicate(0, GE, 30),
                FieldPredicate(0, LE, 50),
                FieldPredicate(1, LT, 10),
            )
        )
        plan = compile_selection_plan(_pairs(single, multi))
        group = plan.groups[0]
        assert group.residual_count == 1
        assert group.evaluate(field_tuple(1, f0=35, f1=5)) == 0b11
        assert group.evaluate(field_tuple(1, f0=35, f1=50)) == 0b01
        assert group.evaluate(field_tuple(1, f0=45, f1=5)) == 0b10

    def test_unsatisfiable_predicates_fold_away(self):
        plan = compile_selection_plan(
            _pairs(
                ConjunctionPredicate(
                    (FieldPredicate(0, GT, 5), FieldPredicate(0, LT, 3))
                ),
                FieldPredicate(0, GE, 25),
            )
        )
        assert not plan.groups and len(plan.direct) == 1
        assert plan.folded_slots == 0b01

    def test_udf_predicates_stay_direct(self):
        udf = CallablePredicate(lambda v: v.fields[0] > 5)
        plan = compile_selection_plan(
            _pairs(udf, FieldPredicate(0, GE, 25), FieldPredicate(0, GE, 50))
        )
        assert [p for p, _ in plan.direct] == [udf]
        assert len(plan.groups) == 1

    def test_share_overlapping_off_is_identity(self):
        pairs = _pairs(FieldPredicate(0, GE, 25), FieldPredicate(0, GE, 50))
        plan = compile_selection_plan(pairs, share_overlapping=False)
        assert plan.direct == pairs and not plan.groups

    def test_stabbing_index_segments_resolve_all_members(self):
        # A chain of overlapping [low, low+15] intervals, every probe
        # value checked against brute force.
        predicates = [
            ConjunctionPredicate(
                (
                    FieldPredicate(0, GE, low),
                    FieldPredicate(0, LE, low + 15),
                )
            )
            for low in (0, 10, 20, 30, 40, 50)
        ]
        plan = compile_selection_plan(_pairs(*predicates))
        assert len(plan.groups) == 1
        group = plan.groups[0]
        for value in range(-5, 75):
            expected = 0
            for slot, predicate in enumerate(predicates):
                if predicate.evaluate(field_tuple(1, f0=value)):
                    expected |= 1 << slot
            assert group.evaluate(field_tuple(1, f0=value)) == expected, value

    def test_columnar_binding_matches_row_evaluation(self):
        predicates = [
            FieldPredicate(0, GE, 25),
            ConjunctionPredicate(
                (
                    FieldPredicate(0, GE, 30),
                    FieldPredicate(0, LE, 60),
                    FieldPredicate(2, GT, 40),
                )
            ),
        ]
        plan = compile_selection_plan(_pairs(*predicates))
        group = plan.groups[0]
        values = [0, 20, 25, 30, 45, 61, 99]
        others = [10, 50, 41, 40, 99, 50, 0]
        columns = [values, [0] * len(values), others, [0] * len(values), [0] * len(values)]
        probe = group.bind_columns(columns)
        for row in range(len(values)):
            record = field_tuple(1, f0=values[row], f2=others[row])
            assert probe(row) == group.evaluate(record), row


class TestSharingAffinity:
    def test_unconstrained_queries_keep_stage_key(self):
        query = AggregationQuery(
            stream="A",
            predicate=TruePredicate(),
            window_spec=WindowSpec.tumbling(1_000),
            query_id="q",
        )
        assert sharing_affinity_key(query) == "agg:A"

    def test_constrained_queries_add_anchor_field(self):
        query = SelectionQuery(
            stream="A", predicate=FieldPredicate(2, GE, 10), query_id="q"
        )
        assert sharing_affinity_key(query) == "select:A|f2"

    def test_udf_keeps_stage_key(self):
        query = SelectionQuery(
            stream="A",
            predicate=CallablePredicate(lambda v: True),
            query_id="q",
        )
        assert sharing_affinity_key(query) == "select:A"

    def test_sql_and_dict_queries_share_affinity(self):
        sql = parse_query(
            "SELECT * FROM A WHERE A.F0 >= 25 AND A.F0 <= 40"
        )
        direct = SelectionQuery(
            stream="A",
            predicate=ConjunctionPredicate(
                (FieldPredicate(0, GE, 25), FieldPredicate(0, LE, 40))
            ),
            query_id="q",
        )
        assert sharing_affinity_key(sql) == sharing_affinity_key(direct)


class TestOperatorSharingStats:
    def test_sharing_group_stats_shape(self):
        operator = SharedSelectionOperator("A")
        stats = operator.sharing_group_stats()
        assert stats["groups"] == 0 and stats["grouped_slots"] == 0
