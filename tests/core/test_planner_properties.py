"""Hypothesis property suite for the normalization/subsumption algebra.

The ISSUE 8 contracts, stated as universally quantified properties and
hammered with random predicates and tuples:

* ``normalize(p)`` is semantics-preserving: the normal form accepts
  exactly the tuples the source predicate accepts;
* ``subsumes(p, q)`` is sound: whenever it holds, ``q(t) ⇒ p(t)``;
* ``overlaps`` is sound in the negative: predicates declared disjoint
  never both accept a tuple;
* the compiled sharing plan (covering groups ∨ residuals ∨ direct
  entries) is extensionally equal to evaluating every per-query
  predicate independently — the optimizer is a pure rewrite.
"""

from hypothesis import given, settings, strategies as st

from repro.core.planner import (
    compile_selection_plan,
    covering,
    normalize,
    overlaps,
    subsumes,
)
from repro.core.query import Comparison, FieldPredicate, TruePredicate
from repro.core.sql import ConjunctionPredicate
from tests.conftest import make_tuple

# Constants and field values share one small domain so boundary hits
# (v == constant, equal constants across predicates) are common.
_constants = st.one_of(
    st.integers(min_value=0, max_value=20),
    st.integers(min_value=0, max_value=40).map(lambda n: n / 2),
)
_field_predicates = st.builds(
    FieldPredicate,
    field_index=st.integers(min_value=0, max_value=4),
    op=st.sampled_from(list(Comparison)),
    constant=_constants,
)
_conjunctions = st.lists(_field_predicates, min_size=1, max_size=4).map(
    lambda conjuncts: ConjunctionPredicate(tuple(conjuncts))
)
_predicates = st.one_of(
    st.just(TruePredicate()), _field_predicates, _conjunctions
)
_tuples = st.lists(
    st.one_of(
        st.integers(min_value=-2, max_value=22),
        st.integers(min_value=-4, max_value=44).map(lambda n: n / 2),
    ),
    min_size=5,
    max_size=5,
).map(lambda fields: make_tuple(key=1, fields=fields))


@settings(max_examples=300, deadline=None)
@given(predicate=_predicates, record=_tuples)
def test_normalize_preserves_semantics(predicate, record):
    normalized = normalize(predicate)
    assert normalized is not None
    assert normalized.evaluate(record) == predicate.evaluate(record)


@settings(max_examples=300, deadline=None)
@given(p=_predicates, q=_predicates, record=_tuples)
def test_subsumption_implies_implication(p, q, record):
    norm_p, norm_q = normalize(p), normalize(q)
    if subsumes(norm_p, norm_q) and q.evaluate(record):
        assert p.evaluate(record)


@settings(max_examples=300, deadline=None)
@given(p=_predicates, q=_predicates, record=_tuples)
def test_disjoint_predicates_never_both_match(p, q, record):
    if not overlaps(normalize(p), normalize(q)):
        assert not (p.evaluate(record) and q.evaluate(record))


@settings(max_examples=200, deadline=None)
@given(members=st.lists(_predicates, min_size=1, max_size=5), record=_tuples)
def test_covering_subsumes_and_admits_every_member(members, record):
    normalized = [normalize(member) for member in members]
    cover = covering(normalized)
    for norm in normalized:
        assert subsumes(cover, norm)
    # Pointwise: a tuple matching any member matches the cover.
    if any(member.evaluate(record) for member in members):
        assert cover.evaluate(record)


@settings(max_examples=300, deadline=None)
@given(
    predicates=st.lists(_predicates, min_size=1, max_size=8),
    record=_tuples,
)
def test_compiled_plan_is_exact_rewrite(predicates, record):
    """cover ∨ residuals ∨ direct ≡ the original per-query predicates."""
    pairs = [
        (predicate, 1 << slot) for slot, predicate in enumerate(predicates)
    ]
    plan = compile_selection_plan(pairs)
    expected = 0
    for predicate, mask in pairs:
        if predicate.evaluate(record):
            expected |= mask
    actual = 0
    for predicate, mask in plan.direct:
        if predicate.evaluate(record):
            actual |= mask
    for group in plan.groups:
        actual |= group.evaluate(record)
    assert actual == expected
    # Folded slots are exactly the unsatisfiable ones: never matched.
    assert plan.folded_slots & expected == 0

    # The columnar binding of every group agrees with row evaluation.
    columns = [[record.fields[f]] for f in range(5)]
    for group in plan.groups:
        assert group.bind_columns(columns)(0) == group.evaluate(record)
