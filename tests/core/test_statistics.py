"""Tests for runtime sharing statistics (§7 future work)."""

import pytest

from repro.core.query import (
    Comparison,
    FieldPredicate,
    SelectionQuery,
    WindowSpec,
)
from repro.core.statistics import SharingStatistics
from tests.conftest import field_tuple, go_live, make_engine


class TestSharingStatistics:
    def test_validation(self):
        with pytest.raises(ValueError):
            SharingStatistics(sample_every=0)
        with pytest.raises(ValueError):
            SharingStatistics(max_pairs=0)

    def test_identical_sets_jaccard_one(self):
        stats = SharingStatistics(sample_every=1)
        for _ in range(10):
            stats.observe(0b11)
        assert stats.jaccard(0, 1) == 1.0

    def test_disjoint_sets_jaccard_zero(self):
        stats = SharingStatistics(sample_every=1)
        for _ in range(5):
            stats.observe(0b01)
            stats.observe(0b10)
        assert stats.jaccard(0, 1) == 0.0

    def test_partial_overlap(self):
        stats = SharingStatistics(sample_every=1)
        for _ in range(2):
            stats.observe(0b11)  # both
        for _ in range(2):
            stats.observe(0b01)  # only slot 0
        # |A∩B|=2, |A|=4, |B|=2 -> union 4 -> 0.5
        assert stats.jaccard(0, 1) == pytest.approx(0.5)

    def test_self_similarity(self):
        assert SharingStatistics().jaccard(3, 3) == 1.0

    def test_sampling(self):
        stats = SharingStatistics(sample_every=4)
        for _ in range(8):
            stats.observe(0b1)
        assert stats.sampled_tuples == 2
        assert stats.match_rate(0) == 1.0

    def test_forget_slot(self):
        stats = SharingStatistics(sample_every=1)
        stats.observe(0b11)
        stats.forget_slot(1)
        assert stats.jaccard(0, 1) == 0.0
        assert stats.match_rate(1) == 0.0

    def test_pair_cap(self):
        stats = SharingStatistics(sample_every=1, max_pairs=1)
        stats.observe(0b011)  # tracks pair (0, 1)
        stats.observe(0b110)  # pair (1, 2) dropped: table full
        assert stats.jaccard(0, 1) > 0
        assert stats.jaccard(1, 2) == 0.0

    def test_top_pairs_sorted(self):
        stats = SharingStatistics(sample_every=1)
        for _ in range(4):
            stats.observe(0b011)
        stats.observe(0b101)
        stats.observe(0b001)
        top = stats.top_pairs()
        assert (top[0].slot_a, top[0].slot_b) == (0, 1)
        assert top[0].jaccard > top[-1].jaccard


class TestEngineSharingReport:
    def test_report_identifies_identical_queries(self):
        engine = make_engine(collect_sharing_stats=True)
        same_a = SelectionQuery(
            stream="A",
            predicate=FieldPredicate(0, Comparison.GE, 50),
            query_id="twin-1",
        )
        same_b = SelectionQuery(
            stream="A",
            predicate=FieldPredicate(0, Comparison.GE, 50),
            query_id="twin-2",
        )
        other = SelectionQuery(
            stream="A",
            predicate=FieldPredicate(0, Comparison.LT, 50),
            query_id="loner",
        )
        go_live(engine, [same_a, same_b, other], now_ms=0)
        for ts in range(0, 2_000, 10):
            engine.push("A", ts, field_tuple(key=1, f0=ts % 100))
        report = engine.sharing_report(limit=3)
        assert report
        stream, id_a, id_b, jaccard = report[0]
        assert stream == "A"
        assert {id_a, id_b} == {"twin-1", "twin-2"}
        assert jaccard == 1.0

    def test_report_requires_config(self):
        engine = make_engine()
        with pytest.raises(RuntimeError, match="collect_sharing_stats"):
            engine.sharing_report()

    def test_deleted_queries_leave_the_report(self):
        engine = make_engine(collect_sharing_stats=True)
        twins = [
            SelectionQuery(
                stream="A",
                predicate=FieldPredicate(0, Comparison.GE, 0),
                query_id=f"rm-{i}",
            )
            for i in range(2)
        ]
        go_live(engine, twins, now_ms=0)
        for ts in range(0, 1_000, 10):
            engine.push("A", ts, field_tuple(key=1, f0=1))
        engine.stop("rm-1", now_ms=1_000)
        engine.flush_session(1_000)
        assert engine.sharing_report() == []
