"""Tests for the SQL front-end over the paper's query templates."""

import pytest

from repro.core.query import (
    AggregationKind,
    AggregationQuery,
    Comparison,
    ComplexQuery,
    JoinQuery,
    SelectionQuery,
    TruePredicate,
    WindowKind,
)
from repro.core.sql import ConjunctionPredicate, SqlError, parse_query
from tests.conftest import field_tuple


class TestSelectionQueries:
    def test_plain_selection(self):
        query = parse_query("SELECT * FROM A WHERE A.F0 > 10")
        assert isinstance(query, SelectionQuery)
        assert query.stream == "A"
        assert query.predicate.field_index == 0
        assert query.predicate.op is Comparison.GT

    def test_selection_without_where(self):
        query = parse_query("SELECT * FROM A")
        assert isinstance(query.predicate, TruePredicate)

    def test_conjunction(self):
        query = parse_query("SELECT * FROM A WHERE A.F0 > 10 AND A.F1 <= 5")
        assert isinstance(query.predicate, ConjunctionPredicate)
        assert query.predicate.evaluate(field_tuple(1, f0=11, f1=5))
        assert not query.predicate.evaluate(field_tuple(1, f0=11, f1=6))


class TestAggregationQueries:
    def test_figure8_template(self):
        query = parse_query(
            "SELECT SUM(A.FIELD1) FROM A RANGE 3 SLICE 1 "
            "WHERE A.FIELD3 >= 7 GROUP BY A.KEY"
        )
        assert isinstance(query, AggregationQuery)
        assert query.aggregation.kind is AggregationKind.SUM
        assert query.aggregation.field_index == 0  # FIELD1 is 1-based
        assert query.window_spec.kind is WindowKind.SLIDING
        assert query.window_spec.length_ms == 3_000
        assert query.window_spec.slide_ms == 1_000
        assert query.predicate.field_index == 2  # FIELD3

    def test_zero_based_field_shorthand(self):
        query = parse_query(
            "SELECT MAX(A.F4) FROM A RANGE 2 GROUP BY KEY"
        )
        assert query.aggregation.kind is AggregationKind.MAX
        assert query.aggregation.field_index == 4

    def test_count_star(self):
        query = parse_query("SELECT COUNT(*) FROM A RANGE 1 GROUP BY KEY")
        assert query.aggregation.kind is AggregationKind.COUNT

    def test_session_window(self):
        query = parse_query("SELECT SUM(A.F0) FROM A SESSION 2 GROUP BY KEY")
        assert query.window_spec.is_session
        assert query.window_spec.gap_ms == 2_000

    def test_millisecond_durations(self):
        query = parse_query(
            "SELECT SUM(A.F0) FROM A RANGE 1500ms SLICE 500ms GROUP BY KEY"
        )
        assert query.window_spec.length_ms == 1_500
        assert query.window_spec.slide_ms == 500

    def test_range_equals_slide_is_tumbling(self):
        query = parse_query("SELECT SUM(A.F0) FROM A RANGE 2 GROUP BY KEY")
        assert query.window_spec.kind is WindowKind.TUMBLING


class TestJoinQueries:
    def test_figure7_template(self):
        query = parse_query(
            "SELECT * FROM A, B RANGE 3 SLICE 1 "
            "WHERE A.KEY = B.KEY AND A.F1 > 10 AND B.F2 <= 5"
        )
        assert isinstance(query, JoinQuery)
        assert query.left_stream == "A"
        assert query.right_stream == "B"
        assert query.left_predicate.field_index == 1
        assert query.right_predicate.field_index == 2
        assert query.window_spec.length_ms == 3_000

    def test_join_without_predicates(self):
        query = parse_query("SELECT * FROM A, B RANGE 1 WHERE A.KEY = B.KEY")
        assert isinstance(query.left_predicate, TruePredicate)
        assert isinstance(query.right_predicate, TruePredicate)

    def test_key_join_order_insensitive(self):
        query = parse_query(
            "SELECT * FROM A, B RANGE 1 WHERE B.KEY = A.KEY AND A.F0 > 1"
        )
        assert isinstance(query, JoinQuery)


class TestComplexQueries:
    def test_three_way_with_aggregate(self):
        query = parse_query(
            "SELECT SUM(A.F0) FROM A, B, C RANGE 2 SLICE 1 "
            "AGGREGATE RANGE 4 "
            "WHERE A.KEY = B.KEY AND A.F0 > 1 AND C.F2 < 9 GROUP BY KEY"
        )
        assert isinstance(query, ComplexQuery)
        assert query.join_streams == ("A", "B", "C")
        assert query.join_window.length_ms == 2_000
        assert query.aggregation_window.length_ms == 4_000
        assert str(query.predicates[2]) == "fields[2] < 9"

    def test_aggregate_window_defaults_to_join_window(self):
        query = parse_query(
            "SELECT SUM(A.F0) FROM A, B RANGE 2 "
            "WHERE A.KEY = B.KEY GROUP BY KEY"
        )
        assert query.aggregation_window == query.join_window


class TestParsedQueriesRun:
    def test_parsed_join_executes(self):
        from tests.conftest import go_live, make_engine

        engine = make_engine()
        query = parse_query(
            "SELECT * FROM A, B RANGE 2 WHERE A.KEY = B.KEY AND A.F0 >= 0"
        )
        go_live(engine, [query], now_ms=0)
        engine.push("A", 100, field_tuple(key=1, f0=3))
        engine.push("B", 200, field_tuple(key=1))
        engine.watermark(5_000)
        assert engine.result_count(query.query_id) == 1

    def test_parsed_aggregation_executes(self):
        from tests.conftest import go_live, make_engine

        engine = make_engine()
        query = parse_query(
            "SELECT SUM(A.FIELD1) FROM A RANGE 1 GROUP BY A.KEY"
        )
        go_live(engine, [query], now_ms=0)
        engine.push("A", 100, field_tuple(key=1, f0=4))
        engine.push("A", 200, field_tuple(key=1, f0=5))
        engine.watermark(4_000)
        assert engine.results(query.query_id)[0].value.value == 9


class TestErrors:
    @pytest.mark.parametrize(
        "statement,message",
        [
            ("", "empty"),
            ("SELECT", "unexpected end"),
            ("UPDATE A SET x", "expected SELECT"),
            ("SELECT * FROM A RANGE 2", "pure selection"),
            ("SELECT SUM(A.F0) FROM A GROUP BY KEY", "RANGE or SESSION"),
            ("SELECT SUM(A.F0) FROM A RANGE 1", "GROUP BY"),
            ("SELECT * FROM A, B RANGE 1", "A.KEY = B.KEY"),
            ("SELECT * FROM A, B WHERE A.KEY = B.KEY", "RANGE"),
            ("SELECT * FROM A, B, C RANGE 1 WHERE A.KEY = B.KEY", "exactly two"),
            ("SELECT * FROM A, A RANGE 1 WHERE A.KEY = A.KEY", "duplicate"),
            ("SELECT SUM(A.F9) FROM A RANGE 1 GROUP BY KEY", "out of range"),
            ("SELECT AVG(*) FROM A RANGE 1 GROUP BY KEY", "not supported"),
            (
                "SELECT SUM(B.F0) FROM A, B RANGE 1 WHERE A.KEY = B.KEY "
                "GROUP BY KEY",
                "leading stream",
            ),
            ("SELECT * FROM A WHERE A.F0 > 1 OR A.F1 < 2", "trailing input"),
            ("SELECT * FROM A, B SESSION 2 WHERE A.KEY = B.KEY", "one-stream"),
            ("SELECT * FROM A WHERE Z.F0 > 1", "not in FROM"),
            ("SELECT * FROM A WHERE A.F0 > abc", "numeric constant"),
        ],
    )
    def test_rejections(self, statement, message):
        with pytest.raises(SqlError, match=message):
            parse_query(statement)

    def test_tokenizer_error(self):
        with pytest.raises(SqlError, match="tokenize"):
            parse_query("SELECT * FROM A WHERE A.F0 > #")


class TestConjunctionPredicate:
    def test_hashable_for_dedup(self):
        first = parse_query(
            "SELECT * FROM A WHERE A.F0 > 10 AND A.F1 <= 5"
        ).predicate
        second = parse_query(
            "SELECT * FROM A WHERE A.F0 > 10 AND A.F1 <= 5"
        ).predicate
        assert first == second
        assert hash(first) == hash(second)
