"""Tests for changelogs and the Equation 1 dynamic program."""

import pytest
from hypothesis import given, strategies as st

from repro.core.changelog import (
    Changelog,
    ChangelogTable,
    QueryActivation,
    QueryDeactivation,
)
from repro.core.query import SelectionQuery, TruePredicate


def _query(name: str) -> SelectionQuery:
    return SelectionQuery(stream="A", predicate=TruePredicate(), query_id=name)


def _changelog(sequence, created=(), deleted=(), width=0, ts=0) -> Changelog:
    return Changelog(
        sequence=sequence,
        timestamp_ms=ts,
        created=tuple(
            QueryActivation(_query(f"q{sequence}-{slot}"), slot, ts)
            for slot in created
        ),
        deleted=tuple(
            QueryDeactivation(f"d{sequence}-{slot}", slot) for slot in deleted
        ),
        width_after=width,
    )


class TestChangelog:
    def test_changelog_set_figure_3c(self):
        """Q2 deleted, Q3 created in its slot: changelog-set is 10."""
        changelog = _changelog(1, created=[1], deleted=[1], width=2)
        assert changelog.to_paper_string() == "10"

    def test_changed_slots_deduplicated(self):
        changelog = _changelog(1, created=[1], deleted=[1], width=2)
        assert changelog.changed_slots == (1,)
        assert changelog.change_count == 2

    def test_changelog_set_is_cached(self):
        """The mask is computed once per frozen instance (marker hot path)."""
        changelog = _changelog(1, created=[1], deleted=[1], width=2)
        first = changelog.changelog_set
        assert changelog.__dict__["changelog_set"] == first
        assert changelog.changelog_set is first

    def test_cached_changelog_survives_pickling(self):
        """Shard workers receive changelogs by pickle; masks must match."""
        import pickle

        changelog = _changelog(3, created=[0, 2], deleted=[1], width=4)
        _ = changelog.changelog_set  # populate the cache pre-pickle
        clone = pickle.loads(pickle.dumps(changelog))
        assert clone.changelog_set == changelog.changelog_set
        assert clone.changed_slots == changelog.changed_slots

    def test_sequence_validation(self):
        with pytest.raises(ValueError):
            _changelog(0)

    def test_unchanged_positions_set(self):
        changelog = _changelog(1, created=[2], width=4)
        assert changelog.changelog_set == 0b1011


class TestChangelogTableFigure4:
    """Reproduces Figure 4b/4c exactly."""

    def _figure4_table(self) -> ChangelogTable:
        table = ChangelogTable()
        # T1: Q1+, Q2+ -> width 2 but paper shows 3-wide sets from T1 on
        # (Q3 arrives at T2); we follow the actual widths.
        table.append(_changelog(1, created=[0, 1], width=2, ts=1))
        # T2: Q3+ (slot 2).
        table.append(_changelog(2, created=[2], width=3, ts=2))
        # T3: Q4+ (slot 3), Q2- (slot 1).
        table.append(_changelog(3, created=[3], deleted=[1], width=4, ts=3))
        # T4: Q4-, Q5+ reuses slot 3.
        table.append(_changelog(4, created=[3], deleted=[3], width=4, ts=4))
        # T5: Q3- (slot 2), Q6+ takes slot 2, Q7+ new slot 4.
        table.append(_changelog(5, created=[2, 4], deleted=[2], width=5, ts=5))
        return table

    def test_adjacent_changelog_sets_match_figure_4b(self):
        table = self._figure4_table()
        # Paper strings are slot-0-leftmost.
        assert table.changelog_starting(2).to_paper_string() == "110"
        assert table.changelog_starting(3).to_paper_string() == "1010"
        assert table.changelog_starting(4).to_paper_string() == "1110"
        assert table.changelog_starting(5).to_paper_string() == "11010"

    def test_non_adjacent_sets_match_figure_4c(self):
        table = self._figure4_table()

        def paper(i, j, width):
            mask = table.cl_set(i, j)
            return "".join("1" if (mask >> s) & 1 else "0" for s in range(width))

        # CL[3][1]: changes at T2 (slot 2 created) and T3 (slots 1, 3).
        assert paper(3, 1, 4) == "1000"
        # CL[4][3]: only T4's change (slot 3).
        assert paper(4, 3, 4) == "1110"
        # CL[4][2]: T3 and T4 changes: slots 1, 3.
        assert paper(4, 2, 4) == "1010"
        # CL[5][4]: T5 changes slots 2 and 4.
        assert paper(5, 4, 5) == "11010"

    def test_same_epoch_is_all_ones(self):
        table = self._figure4_table()
        assert table.cl_set(3, 3) == (1 << 4) - 1

    def test_symmetry(self):
        table = self._figure4_table()
        assert table.cl_set(4, 1) == table.cl_set(1, 4)

    def test_matches_brute_force(self):
        table = self._figure4_table()
        for i in range(6):
            for j in range(i + 1):
                assert table.cl_set(i, j) == table.cl_set_brute_force(i, j), (i, j)

    def test_shares_queries(self):
        table = self._figure4_table()
        assert table.shares_queries(5, 1)  # slot 0 (Q1) lives throughout

    def test_out_of_order_append_rejected(self):
        table = ChangelogTable()
        with pytest.raises(ValueError):
            table.append(_changelog(2, width=1))

    def test_range_validation(self):
        table = self._figure4_table()
        with pytest.raises(IndexError):
            table.cl_set(99, 0)
        with pytest.raises(IndexError):
            table.cl_set(0, -1)

    def test_prune_memo(self):
        table = self._figure4_table()
        table.cl_set(5, 1)
        dropped = table.prune_memo_before(3)
        assert dropped > 0
        # Post-prune queries still correct (recomputed).
        assert table.cl_set(5, 1) == table.cl_set_brute_force(5, 1)


@st.composite
def _changelog_sequences(draw):
    """Random consistent changelog sequences (slot reuse included)."""
    steps = draw(st.integers(min_value=1, max_value=12))
    width = 0
    free: list = []
    changelogs = []
    for sequence in range(1, steps + 1):
        created = []
        deleted = []
        # Delete up to 2 occupied slots.
        occupied = [s for s in range(width) if s not in free and s not in deleted]
        for slot in draw(
            st.lists(st.sampled_from(occupied or [0]), max_size=2, unique=True)
        ) if occupied else []:
            deleted.append(slot)
            free.append(slot)
        # Create up to 2 queries, reusing freed slots first.
        for _ in range(draw(st.integers(0, 2))):
            if free:
                slot = min(free)
                free.remove(slot)
            else:
                slot = width
                width += 1
            created.append(slot)
        changelogs.append(
            _changelog(sequence, created=created, deleted=deleted,
                       width=width, ts=sequence)
        )
    return changelogs


class TestDynamicProgramProperties:
    @given(_changelog_sequences())
    def test_dp_equals_brute_force_everywhere(self, changelogs):
        table = ChangelogTable()
        for changelog in changelogs:
            table.append(changelog)
        epochs = table.current_epoch
        for i in range(epochs + 1):
            for j in range(i + 1):
                assert table.cl_set(i, j) == table.cl_set_brute_force(i, j)

    @given(_changelog_sequences())
    def test_cl_set_is_monotone_in_range(self, changelogs):
        """Widening the epoch range can only clear bits, never set them."""
        table = ChangelogTable()
        for changelog in changelogs:
            table.append(changelog)
        epochs = table.current_epoch
        for i in range(epochs + 1):
            for j in range(i, -1, -1):
                wide = table.cl_set(i, j)
                if j < i:
                    narrower = table.cl_set(i, j + 1)
                    assert wide & ~narrower == 0
