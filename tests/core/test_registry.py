"""Tests for query-slot allocation — the Figure 3 data-model behaviours."""

import pytest

from repro.core.query import SelectionQuery, TruePredicate
from repro.core.registry import QueryRegistry, SlotPolicy


def _query(name: str) -> SelectionQuery:
    return SelectionQuery(stream="A", predicate=TruePredicate(), query_id=name)


class TestReusePolicy:
    def test_sequential_allocation(self):
        registry = QueryRegistry()
        q1 = registry.register(_query("q1"), 0, 1)
        q2 = registry.register(_query("q2"), 0, 1)
        assert (q1.slot, q2.slot) == (0, 1)
        assert registry.width == 2

    def test_figure_3c_slot_reuse(self):
        """Q2 deleted; Q3 takes its position; width stays compact."""
        registry = QueryRegistry()
        registry.register(_query("Q1"), 0, 1)
        q2 = registry.register(_query("Q2"), 0, 1)
        registry.unregister("Q2")
        q3 = registry.register(_query("Q3"), 10, 2)
        assert q3.slot == q2.slot
        assert registry.width == 2

    def test_lowest_free_slot_first(self):
        registry = QueryRegistry()
        for name in ("a", "b", "c"):
            registry.register(_query(name), 0, 1)
        registry.unregister("c")
        registry.unregister("a")
        fresh = registry.register(_query("d"), 0, 2)
        assert fresh.slot == 0
        fresh2 = registry.register(_query("e"), 0, 2)
        assert fresh2.slot == 2

    def test_figure_4a_t5(self):
        """Two creations and one deletion: the deleted slot goes to the
        first new query, the second gets a fresh position."""
        registry = QueryRegistry()
        for name in ("Q1", "Q3", "Q4", "Q5"):
            registry.register(_query(name), 0, 1)
        registry.unregister("Q3")
        q6 = registry.register(_query("Q6"), 0, 2)
        q7 = registry.register(_query("Q7"), 0, 2)
        assert q6.slot == 1  # Q3's old slot
        assert q7.slot == 4  # brand new position
        assert registry.width == 5


class TestAppendOnlyPolicy:
    def test_figure_3b_no_reuse(self):
        """The naive approach: deleted positions stay permanently zero."""
        registry = QueryRegistry(SlotPolicy.APPEND_ONLY)
        registry.register(_query("Q1"), 0, 1)
        registry.register(_query("Q2"), 0, 1)
        registry.unregister("Q2")
        q3 = registry.register(_query("Q3"), 0, 2)
        assert q3.slot == 2  # fresh index, bitsets grow sparse
        assert registry.width == 3

    def test_width_grows_without_bound_under_churn(self):
        registry = QueryRegistry(SlotPolicy.APPEND_ONLY)
        for index in range(10):
            registry.register(_query(f"q{index}"), 0, 1)
            registry.unregister(f"q{index}")
        assert registry.width == 10
        assert registry.active_count == 0


class TestLookupsAndErrors:
    def test_duplicate_rejected(self):
        registry = QueryRegistry()
        registry.register(_query("q"), 0, 1)
        with pytest.raises(ValueError):
            registry.register(_query("q"), 0, 1)

    def test_unregister_unknown_rejected(self):
        with pytest.raises(KeyError):
            QueryRegistry().unregister("ghost")

    def test_lookups(self):
        registry = QueryRegistry()
        entry = registry.register(_query("q"), 5, 1)
        assert registry.by_slot(entry.slot).query.query_id == "q"
        assert registry.by_id("q").created_at_ms == 5
        assert registry.by_slot(99) is None
        assert "q" in registry

    def test_active_ordered_by_slot(self):
        registry = QueryRegistry()
        for name in ("a", "b", "c"):
            registry.register(_query(name), 0, 1)
        registry.unregister("b")
        assert [entry.query.query_id for entry in registry.active()] == ["a", "c"]

    def test_active_mask(self):
        registry = QueryRegistry()
        for name in ("a", "b", "c"):
            registry.register(_query(name), 0, 1)
        registry.unregister("b")
        assert registry.active_mask() == 0b101


def test_repr_smoke():
    registry = QueryRegistry()
    registry.register(_query("r1"), 0, 1)
    text = repr(registry)
    assert "reuse" in text
    assert "active=1" in text
