"""End-to-end reproduction of the paper's Figure 4 walkthrough.

Queries arrive and depart over six time slots (Figure 4a); their
changelog-sets (Figure 4b) come out of the shared session; the shared
join slices the streams dynamically (Figure 4e) and reuses slice joins
across the overlapping query windows (Figure 4f).  Every surviving
query's output is checked against the brute-force oracle.
"""

from repro.core.query import JoinQuery, TruePredicate, WindowSpec
from tests.conftest import field_tuple, make_engine
from tests.core.oracle import expected_join_multiset, join_outputs_multiset


def _join(name: str, window: WindowSpec) -> JoinQuery:
    return JoinQuery(
        left_stream="A", right_stream="B",
        left_predicate=TruePredicate(), right_predicate=TruePredicate(),
        window_spec=window, query_id=name,
    )


SLOT_MS = 2_000  # one paper "time slot"


def test_figure4_timeline():
    engine = make_engine()
    data = {"A": [], "B": []}

    def feed(from_ms, to_ms):
        for ts in range(from_ms, to_ms, 250):
            left = field_tuple(key=(ts // 250) % 2, f0=ts % 97)
            right = field_tuple(key=(ts // 250) % 2, f1=ts % 89)
            data["A"].append((ts, left))
            data["B"].append((ts, right))
            engine.push("A", ts, left)
            engine.push("B", ts, right)
        engine.watermark(to_ms)

    queries = {}
    created_at = {}

    def create(name, window, now):
        query = _join(name, window)
        queries[name] = query
        created_at[name] = now
        engine.submit(query, now)
        engine.flush_session(now)

    def delete(name, now):
        engine.stop(name, now)
        engine.flush_session(now)

    # T0: Q1+ (long window).
    create("Q1", WindowSpec.sliding(3 * SLOT_MS, SLOT_MS), 0)
    feed(0, SLOT_MS)
    # T1: Q2+, Q3+.
    create("Q2", WindowSpec.tumbling(SLOT_MS), SLOT_MS)
    create("Q3", WindowSpec.sliding(2 * SLOT_MS, SLOT_MS), SLOT_MS)
    feed(SLOT_MS, 2 * SLOT_MS)
    # T2: Q4+, Q2-.
    create("Q4", WindowSpec.tumbling(2 * SLOT_MS), 2 * SLOT_MS)
    delete("Q2", 2 * SLOT_MS)
    feed(2 * SLOT_MS, 3 * SLOT_MS)
    # T3: Q4-, Q5+.
    delete("Q4", 3 * SLOT_MS)
    create("Q5", WindowSpec.tumbling(SLOT_MS), 3 * SLOT_MS)
    feed(3 * SLOT_MS, 4 * SLOT_MS)
    # T4: Q6+, Q7+, Q3-.
    delete("Q3", 4 * SLOT_MS)
    create("Q6", WindowSpec.tumbling(SLOT_MS), 4 * SLOT_MS)
    create("Q7", WindowSpec.tumbling(2 * SLOT_MS), 4 * SLOT_MS)
    feed(4 * SLOT_MS, 6 * SLOT_MS)
    engine.watermark(8 * SLOT_MS)

    # -- changelog structure (Figure 4b's slot-reuse mechanism) ------------
    # The paper's figure pins specific positions; the testable substance
    # is the mechanism: freed positions are reused (lowest-free-first in
    # this implementation), so seven queries fit in far fewer than seven
    # bit positions.
    changelogs = engine.session.flushed_changelogs
    slots = {}
    for changelog in changelogs:
        for activation in changelog.created:
            slots[activation.query.query_id] = activation.slot
    assert slots["Q1"] == 0
    assert slots["Q2"] == 1
    assert slots["Q3"] == 2
    assert slots["Q4"] == 3  # fresh: Q2's deletion lands after Q4's creation
    assert slots["Q5"] == 1  # reuse of Q2's freed position (lowest first)
    assert slots["Q6"] == 2  # reuse of Q3's position
    assert slots["Q7"] == 3  # reuse of Q4's position
    assert engine.session.registry.width == 4  # compact, not 7
    # Slot 1 was owned by three different queries over the run: the
    # changelog-set DP is what keeps their tuples apart.
    reused = [name for name, slot in slots.items() if slot == 1]
    assert reused == ["Q2", "Q5"]

    # -- per-query results vs oracle --------------------------------------
    # The watermark reached 6*SLOT while every surviving query was live;
    # deleted queries fired only what completed before their deletion.
    live_until = {
        "Q1": 8 * SLOT_MS, "Q2": 2 * SLOT_MS, "Q3": 4 * SLOT_MS,
        "Q4": 3 * SLOT_MS, "Q5": 8 * SLOT_MS, "Q6": 8 * SLOT_MS,
        "Q7": 8 * SLOT_MS,
    }
    for name, query in queries.items():
        # Windows fire while the query is live: the effective watermark
        # for the oracle is the watermark at deletion, or the final one.
        expected = expected_join_multiset(
            query, created_at[name], data["A"], data["B"], live_until[name]
        )
        actual = join_outputs_multiset(engine.results(name))
        assert actual == expected, f"{name}: {len(actual)} vs {len(expected)}"

    # -- sharing actually happened (Figure 4f) -----------------------------
    join_op = engine.join_operators("join:A~B")[0]
    assert join_op.pairs_reused > 0, "overlapping windows must reuse pair joins"
    # Expired slices were cleaned up (red boxes in Figure 4f).
    assert join_op._left.expired_total > 0
