"""Property tests for the state-migration seam (ISSUE 6 satellite).

Hypothesis drives the two invariants every resize relies on:

* the checkpoint pack/unpack seam is a lossless roundtrip for any
  per-shard payload list;
* keyed split/merge is lossless and ownership-correct for any keyed
  map and any N→M reshard — every key lands on exactly the shard
  ``stable_hash(key) % M`` says, and nothing is duplicated or dropped.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.migration import (
    merge_keyed_maps,
    repartition_shard_states,
    split_keyed_map,
)
from repro.minispe.checkpoint import (
    pack_shard_states,
    repartition_packed,
    unpack_shard_states,
)
from repro.minispe.runtime import stable_hash

KEYS = st.one_of(
    st.integers(min_value=-(2**31), max_value=2**31),
    st.text(max_size=12),
    st.tuples(st.integers(min_value=0, max_value=99), st.text(max_size=4)),
)
KEYED_MAPS = st.dictionaries(KEYS, st.integers(), max_size=64)
SHARD_COUNTS = st.integers(min_value=1, max_value=8)


class TestPackUnpackRoundtrip:
    @given(
        states=st.lists(
            st.dictionaries(st.text(max_size=6), st.integers(), max_size=4),
            min_size=1,
            max_size=8,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_roundtrip_is_lossless(self, states):
        assert unpack_shard_states(pack_shard_states(states)) == states

    @given(payload=st.one_of(st.none(), st.text(), st.integers()))
    @settings(max_examples=50, deadline=None)
    def test_non_packed_payloads_unpack_to_none(self, payload):
        assert unpack_shard_states(payload) is None

    def test_repartition_packed_rejects_unpacked(self):
        with pytest.raises(ValueError):
            repartition_packed({"operators": {}}, 2, lambda s, n: s)

    @given(
        states=st.lists(st.integers(), min_size=1, max_size=6),
        new_count=SHARD_COUNTS,
    )
    @settings(max_examples=50, deadline=None)
    def test_repartition_packed_applies_through_the_seam(
        self, states, new_count
    ):
        def spread(shards, count):
            # A toy repartitioner: total is conserved across the seam.
            total = sum(shards)
            return [total if i == 0 else 0 for i in range(count)]

        repacked = repartition_packed(
            pack_shard_states(states), new_count, spread
        )
        out = unpack_shard_states(repacked)
        assert len(out) == new_count
        assert sum(out) == sum(states)


class TestKeyedSplitMerge:
    @given(mapping=KEYED_MAPS, new_count=SHARD_COUNTS)
    @settings(max_examples=200, deadline=None)
    def test_split_then_merge_is_identity(self, mapping, new_count):
        parts = split_keyed_map(mapping, new_count)
        assert len(parts) == new_count
        assert merge_keyed_maps(parts) == mapping

    @given(mapping=KEYED_MAPS, new_count=SHARD_COUNTS)
    @settings(max_examples=200, deadline=None)
    def test_every_key_lands_on_its_hash_owner(self, mapping, new_count):
        parts = split_keyed_map(mapping, new_count)
        for shard, part in enumerate(parts):
            for key in part:
                assert stable_hash(key) % new_count == shard

    @given(
        mapping=KEYED_MAPS,
        old_count=SHARD_COUNTS,
        new_count=SHARD_COUNTS,
    )
    @settings(max_examples=200, deadline=None)
    def test_n_to_m_reshard_is_lossless(self, mapping, old_count, new_count):
        # Shard by N, then reshard the N partitions into M — exactly
        # what a live resize does to keyed operator state.
        old_parts = split_keyed_map(mapping, old_count)
        new_parts = [dict() for _ in range(new_count)]
        for part in old_parts:
            for shard, piece in enumerate(split_keyed_map(part, new_count)):
                for key, value in piece.items():
                    assert key not in new_parts[shard], "duplicated key"
                    new_parts[shard][key] = value
        assert merge_keyed_maps(new_parts) == mapping
        for shard, part in enumerate(new_parts):
            for key in part:
                assert stable_hash(key) % new_count == shard

    @given(mapping=KEYED_MAPS.filter(lambda m: m))
    @settings(max_examples=50, deadline=None)
    def test_merge_rejects_overlapping_partitions(self, mapping):
        with pytest.raises(ValueError):
            merge_keyed_maps([mapping, mapping])

    def test_split_validates_count(self):
        with pytest.raises(ValueError):
            split_keyed_map({"a": 1}, 0)


class TestRepartitionShardStates:
    @given(
        keys=st.lists(KEYS, unique=True, min_size=1, max_size=40),
        old_count=st.integers(min_value=1, max_value=4),
        new_count=st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=50, deadline=None)
    def test_replicated_control_and_disjoint_channels(
        self, keys, old_count, new_count
    ):
        # Minimal engine-shaped per-shard states: one control vertex
        # (replicated) plus per-shard channel snapshots.  Keyed vertices
        # get their end-to-end coverage from the integration resize
        # tests; here the property is the replicate/zero-fill contract.
        states = []
        for shard in range(old_count):
            owned = [k for k in keys if stable_hash(k) % old_count == shard]
            states.append(
                {
                    "runtime": {
                        "select:q": {0: {"subscribed": len(keys)}},
                        "source:A": {0: {"cursor": 7}},
                    },
                    "channels": {
                        "counts": {"q": len(owned)},
                        "results": {},
                    },
                }
            )
        out = repartition_shard_states(states, new_count)
        assert len(out) == new_count
        for state in out:
            # Control state replicates from donor shard 0, verbatim.
            assert state["runtime"]["select:q"] == {
                0: {"subscribed": len(keys)}
            }
            assert state["runtime"]["source:A"] == {0: {"cursor": 7}}
        # Merged channel counts land once, on new shard 0 only.
        assert out[0]["channels"]["counts"] == {"q": len(keys)}
        for state in out[1:]:
            assert state["channels"] == {"counts": {}, "results": {}}
