"""Tests for the shared session's batching and changelog generation."""

import pytest

from repro.core.query import SelectionQuery, TruePredicate
from repro.core.session import QueryRequest, RequestKind, SharedSession


def _query(name: str) -> SelectionQuery:
    return SelectionQuery(stream="A", predicate=TruePredicate(), query_id=name)


class TestRequestValidation:
    def test_create_needs_query(self):
        with pytest.raises(ValueError):
            QueryRequest(RequestKind.CREATE, 0)

    def test_delete_needs_id(self):
        with pytest.raises(ValueError):
            QueryRequest(RequestKind.DELETE, 0)

    def test_target_id(self):
        create = QueryRequest(RequestKind.CREATE, 0, query=_query("q"))
        delete = QueryRequest(RequestKind.DELETE, 0, query_id="q")
        assert create.target_id == "q"
        assert delete.target_id == "q"


class TestBatching:
    def test_no_requests_no_changelog(self):
        session = SharedSession()
        assert session.flush(0) is None
        assert session.maybe_flush(10_000) is None

    def test_timeout_triggers_flush(self):
        session = SharedSession(batch_size=100, timeout_ms=1_000)
        session.submit(_query("q"), now_ms=0)
        assert not session.should_flush(999)
        assert session.should_flush(1_000)
        changelog = session.maybe_flush(1_000)
        assert changelog is not None
        assert changelog.sequence == 1
        assert len(changelog.created) == 1

    def test_batch_size_triggers_flush(self):
        session = SharedSession(batch_size=3, timeout_ms=60_000)
        for index in range(3):
            session.submit(_query(f"q{index}"), now_ms=0)
        assert session.should_flush(0)

    def test_flush_caps_at_batch_size(self):
        session = SharedSession(batch_size=2, timeout_ms=1_000)
        for index in range(5):
            session.submit(_query(f"q{index}"), now_ms=0)
        changelog = session.flush(0)
        assert len(changelog.created) == 2
        assert session.pending_count == 3

    def test_drain(self):
        session = SharedSession(batch_size=2, timeout_ms=1_000)
        for index in range(5):
            session.submit(_query(f"q{index}"), now_ms=0)
        changelogs = session.drain(0)
        assert [len(c.created) for c in changelogs] == [2, 2, 1]
        assert session.pending_count == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            SharedSession(batch_size=0)
        with pytest.raises(ValueError):
            SharedSession(timeout_ms=0)


class TestChangelogContents:
    def test_mixed_batch_reuses_slot_in_order(self):
        """A deletion earlier in the batch frees its slot for a later
        creation (the Figure 4a T5 behaviour)."""
        session = SharedSession(batch_size=100, timeout_ms=1_000)
        session.submit(_query("q1"), now_ms=0)
        session.submit(_query("q2"), now_ms=0)
        session.flush(0)
        session.stop("q1", now_ms=5)
        session.submit(_query("q3"), now_ms=6)
        changelog = session.flush(1_100)
        assert changelog.sequence == 2
        assert changelog.deleted[0].slot == 0
        assert changelog.created[0].slot == 0
        assert changelog.width_after == 2

    def test_requests_tagged_with_sequence(self):
        session = SharedSession()
        request = session.submit(_query("q"), now_ms=0)
        session.flush(0)
        assert request.changelog_sequence == 1

    def test_changelog_timestamp_is_flush_time(self):
        session = SharedSession()
        session.submit(_query("q"), now_ms=100)
        changelog = session.flush(2_345)
        assert changelog.timestamp_ms == 2_345

    def test_created_at_is_flush_time(self):
        """Query windows anchor at the changelog (event) time, not at
        request submission."""
        session = SharedSession()
        session.submit(_query("q"), now_ms=100)
        changelog = session.flush(1_500)
        assert changelog.created[0].created_at_ms == 1_500

    def test_sequences_increase(self):
        session = SharedSession()
        session.submit(_query("a"), now_ms=0)
        first = session.flush(0)
        session.submit(_query("b"), now_ms=10)
        second = session.flush(10)
        assert (first.sequence, second.sequence) == (1, 2)

    def test_timeout_restarts_for_leftover_requests(self):
        session = SharedSession(batch_size=2, timeout_ms=1_000)
        for name in ("a", "b", "c"):
            session.submit(_query(name), now_ms=0)
        session.flush(500)  # flushes "a" and "b" (batch size 2)
        assert session.pending_count == 1
        # The leftover batch times from the flush, not from t=0.
        assert not session.should_flush(1_400)
        assert session.should_flush(1_500)
