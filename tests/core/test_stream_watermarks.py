"""Tests for per-stream (skewed) watermarks."""

import pytest

from repro.core.query import (
    AggregationQuery,
    JoinQuery,
    TruePredicate,
    WindowSpec,
)
from tests.conftest import field_tuple, go_live, make_engine


def _join(name="skew-join"):
    return JoinQuery(
        left_stream="A", right_stream="B",
        left_predicate=TruePredicate(), right_predicate=TruePredicate(),
        window_spec=WindowSpec.tumbling(1_000), query_id=name,
    )


class TestSkewedStreams:
    def test_lagging_stream_holds_back_join_windows(self):
        engine = make_engine()
        go_live(engine, [_join()], now_ms=0)
        engine.push("A", 100, field_tuple(key=1, f0=1))
        engine.push("B", 200, field_tuple(key=1, f1=2))
        # A's watermark races ahead; B lags: nothing may fire yet.
        engine.watermark(5_000, stream="A")
        assert engine.result_count("skew-join") == 0
        # B catches up: the joint event-time clock advances, windows fire.
        engine.watermark(5_000, stream="B")
        assert engine.result_count("skew-join") == 1

    def test_unary_operator_follows_its_own_stream(self):
        engine = make_engine()
        agg = AggregationQuery(
            stream="A", predicate=TruePredicate(),
            window_spec=WindowSpec.tumbling(1_000), query_id="skew-agg",
        )
        go_live(engine, [agg], now_ms=0)
        engine.push("A", 100, field_tuple(key=1, f0=3))
        # Only stream B advances: A's aggregation must not fire.
        engine.watermark(5_000, stream="B")
        assert engine.result_count("skew-agg") == 0
        engine.watermark(5_000, stream="A")
        assert engine.result_count("skew-agg") == 1

    def test_unknown_stream_rejected(self):
        engine = make_engine()
        with pytest.raises(KeyError):
            engine.watermark(1_000, stream="Z")

    def test_per_stream_watermark_monotone(self):
        """Lateness is judged against the *aligned* (minimum) watermark:
        while B lags, data older than A's own watermark is still on time
        for the join."""
        engine = make_engine()
        go_live(engine, [_join("skew-mono")], now_ms=0)
        engine.watermark(2_000, stream="A")
        engine.watermark(1_000, stream="A")  # regression ignored
        engine.push("A", 100, field_tuple(key=1))
        engine.push("B", 100, field_tuple(key=1))
        engine.watermark(2_000, stream="B")
        assert engine.result_count("skew-mono") == 1

    def test_global_watermark_still_works_after_per_stream(self):
        engine = make_engine()
        go_live(engine, [_join("skew-mix")], now_ms=0)
        engine.push("A", 100, field_tuple(key=1))
        engine.push("B", 100, field_tuple(key=1))
        engine.watermark(500, stream="A")
        engine.watermark(5_000)  # global catch-up
        assert engine.result_count("skew-mix") == 1

    def test_skewed_watermarks_survive_recovery(self):
        engine = make_engine(log_inputs=True)
        go_live(engine, [_join("skew-ft")], now_ms=0)
        engine.push("A", 100, field_tuple(key=1))
        engine.watermark(5_000, stream="A")
        engine.checkpoint()
        engine.push("B", 200, field_tuple(key=1))
        engine.recover()
        assert engine.result_count("skew-ft") == 0
        engine.watermark(5_000, stream="B")
        assert engine.result_count("skew-ft") == 1
