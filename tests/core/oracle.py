"""Brute-force reference semantics ("oracle") for shared operators.

The shared join/aggregation operators are checked against these direct
implementations of the ad-hoc query semantics:

* a query created at time ``c`` owns windows ``[c + k*slide,
  c + k*slide + length)``;
* a window fires once the watermark reaches ``end - 1`` while the query
  is still active;
* a join window emits every cross pair of predicate-passing, key-equal
  tuples whose timestamps fall inside the window (once per window — a
  pair inside two overlapping sliding windows is emitted twice);
* an aggregation window folds predicate-passing tuples per key.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Iterable, List, Tuple

from repro.core.query import AggregationQuery, JoinQuery

TimedTuple = Tuple[int, Any]


def fired_windows(
    spec, created_at_ms: int, watermark_ms: int, limit: int = 1_000
) -> List[Tuple[int, int]]:
    """All creation-anchored windows complete at ``watermark_ms``."""
    windows = []
    for index in range(limit):
        start = created_at_ms + index * spec.slide_ms
        end = start + spec.length_ms
        if end - 1 > watermark_ms:
            break
        windows.append((start, end))
    return windows


def expected_join_multiset(
    query: JoinQuery,
    created_at_ms: int,
    left: Iterable[TimedTuple],
    right: Iterable[TimedTuple],
    watermark_ms: int,
) -> Counter:
    """Multiset of (key, left fields, right fields) the query must emit."""
    results: Counter = Counter()
    left_passing = [
        (ts, value)
        for ts, value in left
        if ts >= created_at_ms and query.left_predicate.evaluate(value)
    ]
    right_passing = [
        (ts, value)
        for ts, value in right
        if ts >= created_at_ms and query.right_predicate.evaluate(value)
    ]
    for start, end in fired_windows(query.window_spec, created_at_ms, watermark_ms):
        for l_ts, l_value in left_passing:
            if not start <= l_ts < end:
                continue
            for r_ts, r_value in right_passing:
                if not start <= r_ts < end:
                    continue
                if l_value.key != r_value.key:
                    continue
                results[(l_value.key, l_value.fields, r_value.fields)] += 1
    return results


def expected_agg_multiset(
    query: AggregationQuery,
    created_at_ms: int,
    tuples: Iterable[TimedTuple],
    watermark_ms: int,
) -> Counter:
    """Multiset of (key, window start, window end, value) to emit."""
    results: Counter = Counter()
    passing = [
        (ts, value)
        for ts, value in tuples
        if ts >= created_at_ms and query.predicate.evaluate(value)
    ]
    spec = query.aggregation
    for start, end in fired_windows(query.window_spec, created_at_ms, watermark_ms):
        per_key = {}
        for ts, value in passing:
            if not start <= ts < end:
                continue
            acc = per_key.get(value.key)
            if acc is None:
                acc = spec.initial()
            per_key[value.key] = spec.add(acc, value)
        for key, acc in per_key.items():
            results[(key, start, end, spec.finish(acc))] += 1
    return results


def join_outputs_multiset(outputs) -> Counter:
    """Normalise engine join outputs for comparison with the oracle."""
    results: Counter = Counter()
    for output in outputs:
        joined = output.value
        left, right = joined.parts
        results[(joined.key, left.fields, right.fields)] += 1
    return results


def agg_outputs_multiset(outputs) -> Counter:
    """Normalise engine aggregation outputs for oracle comparison."""
    results: Counter = Counter()
    for output in outputs:
        result = output.value
        results[
            (result.key, result.window.start, result.window.end, result.value)
        ] += 1
    return results


def expected_complex_multiset(
    query,
    created_at_ms: int,
    streams: dict,
    watermark_ms: int,
) -> Counter:
    """Oracle for §4.7 complex queries (n-ary join + aggregation).

    ``streams`` maps stream name -> [(ts, tuple)].  Semantics mirror the
    engine's cascade: each join window (creation-anchored) produces
    joined tuples timestamped at the newest component; the aggregation
    then windows those joined tuples (also creation-anchored) and folds
    the *leading* component's field per key.
    """
    # Stage 1: per-stream predicate filtering.
    passing = {}
    for name, predicate in zip(query.join_streams, query.predicates):
        passing[name] = [
            (ts, value)
            for ts, value in streams[name]
            if ts >= created_at_ms and predicate.evaluate(value)
        ]
    # Stage 2: cascade of windowed equi-joins.  Joined intermediates are
    # (timestamp, parts) with timestamp = max of the components'.
    joined = [(ts, (value,)) for ts, value in passing[query.join_streams[0]]]
    for stream in query.join_streams[1:]:
        next_joined = []
        for start, end in fired_windows(
            query.join_window, created_at_ms, watermark_ms
        ):
            for l_ts, l_parts in joined:
                if not start <= l_ts < end:
                    continue
                for r_ts, r_value in passing[stream]:
                    if not start <= r_ts < end:
                        continue
                    if l_parts[0].key != r_value.key:
                        continue
                    next_joined.append(
                        (max(l_ts, r_ts), l_parts + (r_value,))
                    )
        joined = next_joined
    # Stage 3: windowed aggregation over the leading component.
    spec = query.aggregation
    results: Counter = Counter()
    for start, end in fired_windows(
        query.aggregation_window, created_at_ms, watermark_ms
    ):
        per_key = {}
        for ts, parts in joined:
            if not start <= ts < end:
                continue
            key = parts[0].key
            acc = per_key.get(key)
            if acc is None:
                acc = spec.initial()
            per_key[key] = spec.add(acc, parts[0])
        for key, acc in per_key.items():
            results[(key, start, end, spec.finish(acc))] += 1
    return results
