"""Tests for the engine-level checkpoint/recover API (§3.3 integrated)."""

import pytest

from repro.core.query import (
    AggregationQuery,
    JoinQuery,
    SelectionQuery,
    TruePredicate,
    WindowSpec,
)
from tests.conftest import field_tuple, make_engine


def _ft_engine(**overrides):
    return make_engine(log_inputs=True, **overrides)


def _join(name):
    return JoinQuery(
        left_stream="A", right_stream="B",
        left_predicate=TruePredicate(), right_predicate=TruePredicate(),
        window_spec=WindowSpec.tumbling(2_000), query_id=name,
    )


def _feed(engine, from_ms, to_ms, step=100):
    for ts in range(from_ms, to_ms, step):
        engine.push("A", ts, field_tuple(key=ts % 3, f0=ts % 7))
        engine.push("B", ts, field_tuple(key=ts % 3, f1=ts % 5))


class TestGuards:
    def test_checkpoint_requires_logging(self):
        engine = make_engine()
        with pytest.raises(RuntimeError, match="log_inputs"):
            engine.checkpoint()

    def test_recover_requires_logging(self):
        engine = make_engine()
        with pytest.raises(RuntimeError, match="log_inputs"):
            engine.recover()


class TestCheckpointRecover:
    def _outputs(self, engine, query_id):
        return [
            (output.timestamp, repr(output.value))
            for output in engine.results(query_id)
        ]

    def test_recovery_equals_uninterrupted_run(self):
        def scenario(engine, crash_after_checkpoint: bool):
            engine.submit(_join("ft-j"), now_ms=0)
            engine.flush_session(0)
            _feed(engine, 0, 2_000)
            engine.watermark(2_000)
            if crash_after_checkpoint:
                engine.checkpoint()
            _feed(engine, 2_000, 4_000)
            if crash_after_checkpoint:
                engine.recover()
            _feed(engine, 4_000, 6_000)
            engine.watermark(10_000)
            return self._outputs(engine, "ft-j")

        reference = scenario(_ft_engine(), crash_after_checkpoint=False)
        recovered = scenario(_ft_engine(), crash_after_checkpoint=True)
        assert recovered == reference
        assert reference  # non-trivial run

    def test_recovery_without_checkpoint_replays_from_scratch(self):
        engine = _ft_engine()
        query = SelectionQuery(
            stream="A", predicate=TruePredicate(), query_id="ft-sel"
        )
        engine.submit(query, now_ms=0)
        engine.flush_session(0)
        engine.push("A", 100, field_tuple(key=1))
        engine.push("A", 200, field_tuple(key=1))
        before = engine.result_count("ft-sel")
        engine.recover()
        assert engine.result_count("ft-sel") == before == 2

    def test_adhoc_changes_survive_recovery(self):
        """Queries created after the checkpoint re-attach via replayed
        markers; queries deleted after it stay deleted."""
        engine = _ft_engine()
        engine.submit(_join("ft-old"), now_ms=0)
        engine.flush_session(0)
        _feed(engine, 0, 1_000)
        engine.watermark(1_000)
        engine.checkpoint()
        # Post-checkpoint: delete old, create new.
        engine.stop("ft-old", now_ms=1_000)
        agg = AggregationQuery(
            stream="A", predicate=TruePredicate(),
            window_spec=WindowSpec.tumbling(1_000), query_id="ft-new",
        )
        engine.submit(agg, now_ms=1_000)
        engine.flush_session(1_000)
        _feed(engine, 1_000, 3_000)
        engine.watermark(5_000)
        expected_new = engine.result_count("ft-new")
        expected_old = engine.result_count("ft-old")

        engine.recover()
        assert engine.result_count("ft-new") == expected_new > 0
        assert engine.result_count("ft-old") == expected_old
        assert engine.active_query_count == 1
        # The engine remains fully operational after recovery (fresh
        # event times ahead of the restored watermark).
        _feed(engine, 5_000, 6_000)
        engine.watermark(8_000)
        assert engine.result_count("ft-new") > expected_new

    def test_multiple_checkpoints_use_latest(self):
        engine = _ft_engine()
        query = SelectionQuery(
            stream="A", predicate=TruePredicate(), query_id="ft-multi"
        )
        engine.submit(query, now_ms=0)
        engine.flush_session(0)
        engine.push("A", 100, field_tuple(key=1))
        engine.checkpoint()
        engine.push("A", 200, field_tuple(key=1))
        engine.checkpoint()
        engine.push("A", 300, field_tuple(key=1))
        engine.recover()
        assert engine.completed_checkpoints == 2
        assert engine.result_count("ft-multi") == 3

    def test_component_stats_track_recovered_topology(self):
        engine = _ft_engine()
        query = SelectionQuery(
            stream="A", predicate=TruePredicate(), query_id="ft-stats"
        )
        engine.submit(query, now_ms=0)
        engine.flush_session(0)
        engine.push("A", 100, field_tuple(key=1))
        engine.checkpoint()
        engine.recover()
        engine.push("A", 200, field_tuple(key=1))
        stats = engine.component_stats()
        # Lifetime work counters travel through the checkpoint seam
        # (cost attribution and sharing_summary() must not forget work
        # across recovery/migration): the pre-checkpoint evaluation is
        # restored, the post-recovery push adds one more.
        assert stats["predicate_evaluations"] == 2
