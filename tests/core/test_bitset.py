"""Tests and property tests for query-set bitsets."""

import pytest
from hypothesis import given, strategies as st

from repro.core.bitset import QuerySet, extend_mask

slot_sets = st.sets(st.integers(min_value=0, max_value=63), max_size=16)


class TestConstruction:
    def test_empty(self):
        assert QuerySet().is_empty()
        assert QuerySet().count() == 0

    def test_of(self):
        qs = QuerySet.of(0, 2)
        assert qs.contains(0)
        assert not qs.contains(1)
        assert qs.contains(2)

    def test_negative_bits_rejected(self):
        with pytest.raises(ValueError):
            QuerySet(-1)

    def test_negative_slot_rejected(self):
        with pytest.raises(ValueError):
            QuerySet.of(-1)

    def test_all_of(self):
        assert QuerySet.all_of(3).slots() == [0, 1, 2]
        assert QuerySet.all_of(0).is_empty()

    def test_paper_string_round_trip(self):
        # Figure 3a: "0010" means only the query at position 3.
        qs = QuerySet.from_paper_string("0010")
        assert qs.slots() == [2]
        assert qs.to_paper_string(4) == "0010"

    def test_paper_string_invalid(self):
        with pytest.raises(ValueError):
            QuerySet.from_paper_string("01x")


class TestAlgebra:
    def test_intersect_is_shared_queries(self):
        # Figure 3a: t2 (10) and t3 (01) share nothing; t4 (11) shares
        # Q1 with t2 and Q2 with t3.
        t2 = QuerySet.from_paper_string("10")
        t3 = QuerySet.from_paper_string("01")
        t4 = QuerySet.from_paper_string("11")
        assert (t2 & t3).is_empty()
        assert (t4 & t2).slots() == [0]
        assert (t4 & t3).slots() == [1]

    def test_union_minus(self):
        a = QuerySet.of(0, 1)
        b = QuerySet.of(1, 2)
        assert (a | b).slots() == [0, 1, 2]
        assert (a - b).slots() == [0]

    def test_with_without_slot(self):
        qs = QuerySet().with_slot(3)
        assert qs.contains(3)
        assert not qs.without_slot(3).contains(3)

    def test_shares_any(self):
        assert QuerySet.of(1).shares_any(QuerySet.of(1, 2))
        assert not QuerySet.of(1).shares_any(QuerySet.of(2))

    def test_equality_with_int(self):
        assert QuerySet.of(0, 2) == 0b101
        assert QuerySet.of(0) == QuerySet.of(0)
        assert hash(QuerySet.of(1)) == hash(QuerySet.of(1))

    def test_bool(self):
        assert not QuerySet()
        assert QuerySet.of(0)


class TestIteration:
    def test_slots_sorted(self):
        assert QuerySet.of(5, 1, 3).slots() == [1, 3, 5]

    def test_count_matches_popcount(self):
        assert QuerySet.of(0, 7, 63).count() == 3


class TestProperties:
    @given(slot_sets, slot_sets)
    def test_intersection_matches_set_semantics(self, left, right):
        qs_left = QuerySet.from_slots(left)
        qs_right = QuerySet.from_slots(right)
        assert set((qs_left & qs_right).slots()) == left & right

    @given(slot_sets, slot_sets)
    def test_union_matches_set_semantics(self, left, right):
        assert set(
            (QuerySet.from_slots(left) | QuerySet.from_slots(right)).slots()
        ) == left | right

    @given(slot_sets)
    def test_round_trip_through_slots(self, slots):
        assert set(QuerySet.from_slots(slots).slots()) == slots

    @given(slot_sets)
    def test_paper_string_round_trip(self, slots):
        qs = QuerySet.from_slots(slots)
        width = (max(slots) + 1) if slots else 0
        assert QuerySet.from_paper_string(qs.to_paper_string(width)) == qs


class TestExtendMask:
    def test_pads_with_unchanged(self):
        # A 2-wide mask 0b01 extended to width 4: new slots count as
        # unchanged (set bits).
        assert extend_mask(0b01, 2, 4) == 0b1101

    def test_same_width_identity(self):
        assert extend_mask(0b101, 3, 3) == 0b101

    def test_shrink_rejected(self):
        with pytest.raises(ValueError):
            extend_mask(0b1, 2, 1)

    @given(st.integers(0, 2**8 - 1), st.integers(8, 16))
    def test_extension_preserves_low_bits(self, mask, target):
        extended = extend_mask(mask, 8, target)
        assert extended & 0xFF == mask
        assert extended >> 8 == (1 << (target - 8)) - 1
