"""Soak test: state stays bounded under sustained ad-hoc churn.

A long (virtual) SC2-style run with continuous query creation/deletion
must not leak: slices, the pair cache, changelog-set memo entries, epoch
timelines, and selection views all have retention-bounded sizes, and
throughput must not degrade over the run.
"""

from repro.core.engine import AStreamEngine, EngineConfig
from repro.core.query import JoinQuery, TruePredicate, WindowSpec
from repro.minispe.cluster import ClusterSpec, SimulatedCluster
from repro.workloads.datagen import DataGenerator
from repro.workloads.querygen import QueryGenerator


def test_churn_soak_state_bounded():
    engine = AStreamEngine(
        EngineConfig(streams=("A", "B"), parallelism=1),
        cluster=SimulatedCluster(ClusterSpec(nodes=4)),
    )
    querygen = QueryGenerator(streams=("A", "B"), seed=13, window_max_seconds=2)
    gen_a, gen_b = DataGenerator(seed=1), DataGenerator(seed=2)

    live: list = []
    seconds = 120  # virtual; ~1 churn event per second
    for second in range(seconds):
        now = second * 1_000
        # Churn: every second, retire the oldest query and add a new one.
        if live:
            engine.stop(live.pop(0), now_ms=now)
        query = querygen.join_query()
        live.append(query.query_id)
        engine.submit(query, now_ms=now)
        engine.flush_session(now)
        for ts in range(now, now + 1_000, 100):
            engine.push("A", ts, gen_a.next_tuple())
            engine.push("B", ts, gen_b.next_tuple())
        engine.watermark(now + 1_000)

    join_op = engine.join_operators("join:A~B")[0]
    select_op = engine.selection_operators("A")[0]

    # Slice retention: bounded by max window length (2 s) over 1 s slices,
    # per side, regardless of the 120 changelogs that happened.
    left_slices, right_slices = join_op.live_slices
    assert left_slices <= 8
    assert right_slices <= 8
    assert join_op.cached_pairs <= 64

    # Epoch metadata pruned down to the retention horizon.
    assert len(join_op._slicer.timeline) <= 8
    assert len(join_op._changelogs._memo) <= 64

    # Selection views pruned to the 60 s allowance.
    assert len(select_op._views) <= 70

    # The expired machinery actually ran (not vacuously bounded).
    assert join_op._left.expired_total > 90
    assert engine.session.registry.width <= 4  # slot reuse held

    # Every query produced results and recent queries still do.
    assert engine.channels.total_delivered() > 0
    recent = live[-1]
    engine.watermark(seconds * 1_000 + 5_000)
    assert engine.result_count(recent) > 0


def test_long_run_memo_pruning_preserves_correctness():
    """Results after heavy pruning still match a fresh-engine run."""

    def run():
        engine = AStreamEngine(
            EngineConfig(streams=("A", "B"), parallelism=1),
            cluster=SimulatedCluster(ClusterSpec(nodes=4)),
        )
        gen_a, gen_b = DataGenerator(seed=5), DataGenerator(seed=6)
        outputs = {}
        for second in range(40):
            now = second * 1_000
            query = JoinQuery(
                left_stream="A", right_stream="B",
                left_predicate=TruePredicate(),
                right_predicate=TruePredicate(),
                window_spec=WindowSpec.tumbling(1_000),
                query_id=f"soak-{second}",
            )
            engine.submit(query, now_ms=now)
            if second >= 2:
                engine.stop(f"soak-{second - 2}", now_ms=now)
            engine.flush_session(now)
            for ts in range(now, now + 1_000, 200):
                engine.push("A", ts, gen_a.next_tuple())
                engine.push("B", ts, gen_b.next_tuple())
            engine.watermark(now + 1_000)
        engine.watermark(60_000)
        for second in range(40):
            name = f"soak-{second}"
            outputs[name] = engine.result_count(name)
        return outputs

    first = run()
    second = run()
    assert first == second
    assert sum(first.values()) > 0
