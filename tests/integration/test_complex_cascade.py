"""Complex-query cascade correctness against a brute-force oracle.

Also pins the watermark-holdback behaviour: join results are stamped
with their newest component's event time, so every operator downstream
of a join sees a watermark held back by the join's window length —
without it, aggregation windows could fire before the join emits
results belonging to them.
"""

from repro.core.engine import AStreamEngine, EngineConfig
from repro.core.query import (
    AggregationSpec,
    ComplexQuery,
    Comparison,
    FieldPredicate,
    TruePredicate,
    WindowSpec,
)
from repro.minispe.cluster import ClusterSpec, SimulatedCluster
from tests.conftest import field_tuple
from tests.core.oracle import agg_outputs_multiset, expected_complex_multiset


def _engine(streams=("A", "B", "C"), arity=2):
    return AStreamEngine(
        EngineConfig(streams=streams, max_join_arity=arity, parallelism=2),
        cluster=SimulatedCluster(ClusterSpec(nodes=4)),
    )


def _feed(engine, streams, to_ms, step=150):
    data = {name: [] for name in streams}
    for index, ts in enumerate(range(0, to_ms, step)):
        for offset, name in enumerate(streams):
            value = field_tuple(
                key=(index + offset) % 3,
                f0=(ts + offset) % 11,
                f1=(ts * 3 + offset) % 13,
            )
            data[name].append((ts, value))
            engine.push(name, ts, value)
    return data


class TestCascadeVsOracle:
    def test_three_way_matches_oracle(self):
        engine = _engine()
        query = ComplexQuery(
            join_streams=("A", "B", "C"),
            predicates=(
                FieldPredicate(0, Comparison.GE, 2),
                TruePredicate(),
                FieldPredicate(1, Comparison.LT, 11),
            ),
            join_window=WindowSpec.tumbling(2_000),
            aggregation_window=WindowSpec.tumbling(2_000),
            aggregation=AggregationSpec(field_index=0),
            query_id="cx-oracle",
        )
        engine.submit(query, now_ms=0)
        engine.flush_session(0)
        data = _feed(engine, ("A", "B", "C"), 6_000)
        engine.watermark(30_000)
        assert agg_outputs_multiset(
            engine.results("cx-oracle")
        ) == expected_complex_multiset(query, 0, data, 30_000)

    def test_agg_window_longer_than_join_window(self):
        engine = _engine()
        query = ComplexQuery(
            join_streams=("A", "B"),
            predicates=(TruePredicate(), TruePredicate()),
            join_window=WindowSpec.tumbling(1_000),
            aggregation_window=WindowSpec.tumbling(3_000),
            aggregation=AggregationSpec(field_index=0),
            query_id="cx-long-agg",
        )
        engine.submit(query, now_ms=0)
        engine.flush_session(0)
        data = _feed(engine, ("A", "B"), 6_000)
        engine.watermark(30_000)
        assert agg_outputs_multiset(
            engine.results("cx-long-agg")
        ) == expected_complex_multiset(
            query, 0, {k: data[k] for k in ("A", "B")}, 30_000
        )

    def test_agg_window_shorter_than_join_window_holdback(self):
        """The hazard case: without watermark holdback, short agg windows
        would fire before the long join window emits into them."""
        engine = _engine()
        query = ComplexQuery(
            join_streams=("A", "B"),
            predicates=(TruePredicate(), TruePredicate()),
            join_window=WindowSpec.tumbling(4_000),
            aggregation_window=WindowSpec.tumbling(1_000),
            aggregation=AggregationSpec(field_index=0),
            query_id="cx-holdback",
        )
        engine.submit(query, now_ms=0)
        engine.flush_session(0)
        data = _feed(engine, ("A", "B"), 8_000, step=400)
        # Fine-grained watermarks: this is what would trigger premature
        # aggregation-window fires without holdback.
        for wm in range(500, 8_001, 500):
            engine.watermark(wm)
        engine.watermark(30_000)
        assert agg_outputs_multiset(
            engine.results("cx-holdback")
        ) == expected_complex_multiset(
            query, 0, {k: data[k] for k in ("A", "B")}, 30_000
        )
        # Nothing was silently dropped as late downstream of the join.
        stats = engine.component_stats()
        assert stats["late_records_dropped"] == 0

    def test_two_and_three_way_share_the_first_join_stage(self):
        engine = _engine()
        two_way = ComplexQuery(
            join_streams=("A", "B"),
            predicates=(TruePredicate(), TruePredicate()),
            join_window=WindowSpec.tumbling(2_000),
            aggregation_window=WindowSpec.tumbling(2_000),
            aggregation=AggregationSpec(field_index=0),
            query_id="cx-2",
        )
        three_way = ComplexQuery(
            join_streams=("A", "B", "C"),
            predicates=(TruePredicate(),) * 3,
            join_window=WindowSpec.tumbling(2_000),
            aggregation_window=WindowSpec.tumbling(2_000),
            aggregation=AggregationSpec(field_index=0),
            query_id="cx-3",
        )
        engine.submit(two_way, now_ms=0)
        engine.submit(three_way, now_ms=0)
        engine.flush_session(0)
        data = _feed(engine, ("A", "B", "C"), 4_000)
        engine.watermark(30_000)
        for query in (two_way, three_way):
            streams = {name: data[name] for name in query.join_streams}
            assert agg_outputs_multiset(
                engine.results(query.query_id)
            ) == expected_complex_multiset(query, 0, streams, 30_000), (
                query.query_id
            )
        # The A~B stage served both queries: its tuples were stored once.
        first_join = engine.join_operators("join:A~B")
        stored = sum(op.tuples_stored for op in first_join)
        # Each A/B tuple is stored once per side, not once per query.
        expected_stored = len(data["A"]) + len(data["B"])
        assert stored == expected_stored
