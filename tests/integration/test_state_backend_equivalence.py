"""The state backend must be invisible in the output (ISSUE 10).

``EngineConfig.state_backend`` swaps the physical home of keyed window
state — in-memory dicts vs the spill-to-disk LSM store — without
touching the computation, so SC-style scenario runs must stay
byte-identical across ``{memory, lsm}`` on both the inline and the
process engine, through a SIGKILLed worker recovered from an
(incremental) checkpoint + input-log replay, and through a live resize
whose migration re-splits spilled state by key hash.  Shared
arrangements (a results-affecting feature: warm attach backfills
pre-creation windows) must themselves be backend- and
worker-count-deterministic.
"""

import pytest

from repro.core.engine import AStreamEngine, EngineConfig
from repro.core.parallel_engine import ProcessAStreamEngine
from repro.core.query import AggregationQuery, TruePredicate, WindowSpec
from repro.workloads.datagen import DataGenerator
from repro.workloads.querygen import QueryGenerator
from repro.workloads.scenarios import sc1_schedule, sc2_schedule

STREAMS = ("A", "B")
STEPS = 20
STEP_MS = 250
RECORDS_PER_STEP = 20
BACKENDS = ("memory", "lsm")

# Built once: query ids carry a process-global counter, so comparison
# runs must share one schedule or identical queries get different ids.
SC1_SCHEDULE = sc1_schedule(
    QueryGenerator(streams=STREAMS, seed=101), 1, 4, kind="agg"
)
SC2_SCHEDULE = sc2_schedule(
    QueryGenerator(streams=STREAMS, seed=102), 2, 3, 2, kind="agg"
)

# Shared for the same reason; TruePredicate + 1s tumbling windows make
# the late twin's pre-creation windows backfillable from the history the
# base query arranged.
WARM_ATTACH_QUERIES = (
    AggregationQuery(
        stream="A",
        predicate=TruePredicate(),
        window_spec=WindowSpec.tumbling(1_000),
    ),
    AggregationQuery(
        stream="A",
        predicate=TruePredicate(),
        window_spec=WindowSpec.tumbling(1_000),
    ),
)


def _canonical(engine):
    return {
        query_id: [
            (output.timestamp, repr(output.value))
            for output in engine.canonical_results(query_id)
        ]
        for query_id in sorted(engine.result_counts())
    }


def _run(
    schedule,
    state_backend="memory",
    workers=None,
    arrangements=False,
    kill_at_step=None,
    resize_at_step=None,
    resize_to=4,
):
    """Drive one scenario; ``workers=None`` runs the inline engine.

    The driver is bypassed so kills and resizes land at exact points in
    the element sequence; every run sees the identical interleaving of
    submissions, records, watermarks, and checkpoint barriers.  The lsm
    runs use a tiny memtable so slices genuinely spill to segments.
    """
    config = EngineConfig(
        streams=STREAMS,
        parallelism=1,
        log_inputs=True,
        state_backend=state_backend,
        state_memtable_entries=32,
        shared_arrangements=arrangements,
    )
    if workers is None:
        engine = AStreamEngine(config)
    else:
        engine = ProcessAStreamEngine(config, workers=workers)
    data = DataGenerator(seed=5)
    events = sorted(schedule.requests, key=lambda event: event.at_ms)
    index = 0
    recovery = None
    for step in range(STEPS):
        now = step * STEP_MS
        # Watermark first: at submit time the operator then knows event
        # time has reached `now`, making pre-creation windows ending at
        # or before `now` eligible for warm-attach backfill.
        engine.watermark(now)
        while index < len(events) and events[index].at_ms <= now:
            event = events[index]
            index += 1
            if event.kind == "create":
                engine.submit(event.query, now_ms=now)
            else:
                engine.stop(event.query_id, now_ms=now)
        engine.tick(now)
        if workers is not None and step == resize_at_step:
            engine.begin_resize(resize_to)
            assert engine.migration_active
        for stream in STREAMS:
            for offset in range(RECORDS_PER_STEP):
                engine.push(stream, now + offset * 12, data.next_tuple())
        if workers is not None and engine.migration_active:
            engine.migration_step()
        if step % 6 == 3:
            engine.checkpoint()
        if kill_at_step is not None and step == kill_at_step:
            if workers is None:
                recovery = engine.recover()
            else:
                engine.kill_worker(0)
                assert engine.alive_workers == workers - 1
                recovery = engine.recover()
                assert engine.alive_workers == workers
    engine.watermark(STEPS * STEP_MS + 10_000)
    if hasattr(engine, "drain"):
        engine.drain()
    outputs = _canonical(engine)
    summary = engine.state_summary()
    engine.shutdown()
    return outputs, summary, recovery


class TestBackendEquivalence:
    @pytest.mark.parametrize(
        "schedule", [SC1_SCHEDULE, SC2_SCHEDULE], ids=["sc1", "sc2"]
    )
    def test_lsm_equals_memory_inline_and_process(self, schedule):
        oracle, _, _ = _run(schedule, state_backend="memory")
        assert oracle and any(oracle.values())
        lsm, summary, _ = _run(schedule, state_backend="lsm")
        assert lsm == oracle
        assert summary["state_backend"] == "lsm"
        assert summary["spilled_bytes"] > 0, "lsm run never spilled"
        for backend in BACKENDS:
            outputs, _, _ = _run(schedule, state_backend=backend, workers=2)
            assert outputs == oracle, f"process/{backend} diverged"

    def test_lsm_runs_are_deterministic(self):
        first = _run(SC1_SCHEDULE, state_backend="lsm")[0]
        second = _run(SC1_SCHEDULE, state_backend="lsm")[0]
        assert first == second


class TestLsmChaos:
    def test_kill_and_recover_on_lsm_is_exactly_once(self):
        oracle, _, _ = _run(SC1_SCHEDULE, state_backend="memory")
        faulted, _, recovery = _run(
            SC1_SCHEDULE, state_backend="lsm", workers=2, kill_at_step=10
        )
        assert recovery is not None and recovery.replayed_elements > 0
        assert faulted == oracle

    def test_inline_recover_restores_spilled_state(self):
        oracle, _, _ = _run(SC1_SCHEDULE, state_backend="memory")
        recovered, _, _ = _run(
            SC1_SCHEDULE, state_backend="lsm", kill_at_step=10
        )
        assert recovered == oracle

    def test_live_resize_on_lsm_preserves_outputs(self):
        oracle, _, _ = _run(SC1_SCHEDULE, state_backend="memory")
        for start, target in ((2, 4), (4, 2)):
            outputs, _, _ = _run(
                SC1_SCHEDULE,
                state_backend="lsm",
                workers=start,
                resize_at_step=7,
                resize_to=target,
            )
            assert outputs == oracle, f"lsm resize {start}->{target} diverged"


class TestArrangementDeterminism:
    def test_arrangements_equal_across_backends_and_workers(self):
        reference, summary, _ = _run(
            SC2_SCHEDULE, state_backend="memory", arrangements=True
        )
        assert reference and any(reference.values())
        assert summary["arrangement_count"] >= 1
        for backend, workers in (
            ("lsm", None),
            ("memory", 2),
            ("lsm", 2),
        ):
            outputs, _, _ = _run(
                SC2_SCHEDULE,
                state_backend=backend,
                workers=workers,
                arrangements=True,
            )
            assert outputs == reference, (
                f"arrangements on {backend}/workers={workers} diverged"
            )

    @staticmethod
    def _warm_attach_run(arrangements):
        """A base query arranges history; a late twin attaches at 3s.

        Both carry ``TruePredicate`` and a 1s tumbling window, so every
        pre-creation window of the late query is fully covered by
        arranged deltas by its deployment time.
        """
        config = EngineConfig(
            streams=STREAMS,
            parallelism=1,
            shared_arrangements=arrangements,
        )
        engine = AStreamEngine(config)
        base, late = WARM_ATTACH_QUERIES
        data = DataGenerator(seed=11)
        engine.submit(base, now_ms=0)
        for step in range(20):
            now = step * 250
            engine.watermark(now)
            if now == 3_000:
                engine.submit(late, now_ms=now)
            engine.tick(now)
            for offset in range(20):
                engine.push("A", now + offset * 12, data.next_tuple())
        engine.watermark(20_000)
        outputs = _canonical(engine)
        summary = engine.state_summary()
        engine.shutdown()
        return outputs, summary, late.query_id

    def test_warm_attach_backfills_only_with_arrangements_on(self):
        cold, cold_summary, late_id = self._warm_attach_run(False)
        warm, warm_summary, _ = self._warm_attach_run(True)
        assert cold_summary["backfilled_windows"] == 0
        assert warm_summary["backfilled_windows"] >= 1
        assert warm_summary["backfilled_results"] >= 1
        # Warm attach only *adds* results, for the late query alone:
        # every cold result is present in the warm run too.
        for query_id, outputs in cold.items():
            warm_outputs = set(warm.get(query_id, ()))
            assert all(item in warm_outputs for item in outputs)
        assert len(warm[late_id]) > len(cold[late_id])
