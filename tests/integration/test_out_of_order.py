"""Out-of-order delivery: disorder within the lateness bound is invisible.

The driver's jitter buffer delays tuples (keeping their event times)
while the watermark trails by ``lateness_ms``.  Event-time semantics
demand identical per-query results for the ordered and the disordered
run — the paper's out-of-order processing claim (§1.2 R1, §3.3) at the
whole-system level.
"""

import pytest

from repro.core.engine import AStreamEngine, EngineConfig
from repro.core.qos import QoSMonitor
from repro.minispe.cluster import ClusterSpec, SimulatedCluster
from repro.workloads.driver import AStreamAdapter, Driver, DriverConfig
from repro.workloads.querygen import QueryGenerator
from repro.workloads.scenarios import sc1_schedule


def _run(disorder_ms: int):
    generator = QueryGenerator(streams=("A", "B"), seed=17, window_max_seconds=2)
    schedule = sc1_schedule(
        generator, queries_per_second=2, query_parallelism=4, kind="join"
    )
    qos = QoSMonitor(sample_every=64)
    engine = AStreamEngine(
        EngineConfig(streams=("A", "B"), parallelism=1),
        cluster=SimulatedCluster(ClusterSpec(nodes=4)),
        on_deliver=qos.on_deliver,
    )
    driver = Driver(
        AStreamAdapter(engine),
        schedule,
        ("A", "B"),
        DriverConfig(
            input_rate_tps=300.0,
            duration_s=8.0,
            disorder_ms=disorder_ms,
            lateness_ms=disorder_ms,
        ),
        qos=qos,
    )
    report = driver.run()
    engine.watermark(60_000)  # flush every window for a fair comparison
    # Key by schedule position: query ids are globally unique per process,
    # so two runs' ids differ even for identical queries.
    counts = {
        index: engine.channels.count(request.query.query_id)
        for index, request in enumerate(schedule.sorted())
    }
    return counts, report


class TestDisorderInvisibleWithinLateness:
    def test_results_identical_to_ordered_run(self):
        ordered, ordered_report = _run(disorder_ms=0)
        disordered, disordered_report = _run(disorder_ms=400)
        assert disordered == ordered
        assert ordered_report.tuples_pushed == disordered_report.tuples_pushed
        assert sum(ordered.values()) > 0

    def test_heavier_disorder_still_identical(self):
        ordered, _ = _run(disorder_ms=0)
        disordered, _ = _run(disorder_ms=900)
        assert disordered == ordered

    def test_no_late_drops_with_covering_lateness(self):
        generator = QueryGenerator(streams=("A", "B"), seed=17,
                                   window_max_seconds=2)
        schedule = sc1_schedule(generator, 2, 4, kind="join")
        engine = AStreamEngine(
            EngineConfig(streams=("A", "B"), parallelism=1),
            cluster=SimulatedCluster(ClusterSpec(nodes=4)),
        )
        driver = Driver(
            AStreamAdapter(engine),
            schedule,
            ("A", "B"),
            DriverConfig(
                input_rate_tps=300.0, duration_s=6.0,
                disorder_ms=400, lateness_ms=400,
            ),
        )
        driver.run()
        assert engine.component_stats()["late_records_dropped"] == 0


class TestConfigValidation:
    def test_disorder_requires_covering_lateness(self):
        with pytest.raises(ValueError, match="lateness_ms"):
            DriverConfig(disorder_ms=500, lateness_ms=100)

    def test_negative_disorder_rejected(self):
        with pytest.raises(ValueError):
            DriverConfig(disorder_ms=-1)
