"""Chaos suite: scenario runs under seeded fault plans (ISSUE tentpole).

Each chaos run drives a full SC1/SC2 workload through the driver with a
:class:`FaultInjector` + :class:`Supervisor` attached, then compares
**per-query output byte-equality** against an oracle run of the same
seeded workload with no faults: supervised recovery (checkpoint restore
+ fault-free input-log replay) must make node crashes, channel drops,
channel duplicates, and retried operator exceptions invisible in the
output.  Determinism is asserted end-to-end: two runs with the same
fault-plan seed produce identical outputs *and* identical fault/recovery
event logs.
"""

from repro.core.engine import AStreamEngine, EngineConfig
from repro.core.qos import QoSMonitor
from repro.faults import (
    FaultEvent,
    FaultInjector,
    FaultKind,
    FaultPlan,
    Supervisor,
    SupervisorPolicy,
)
from repro.minispe.cluster import ClusterSpec, SimulatedCluster
from repro.workloads.driver import (
    AStreamAdapter,
    Driver,
    DriverConfig,
    RetryPolicy,
)
from repro.workloads.querygen import QueryGenerator
from repro.workloads.scenarios import sc1_schedule, sc2_schedule

STREAMS = ("A", "B")
CONFIG = dict(input_rate_tps=100.0, duration_s=10.0, step_ms=250)


def _sc1():
    return sc1_schedule(
        QueryGenerator(streams=STREAMS, seed=5), 1, 4, kind="join"
    )


def _sc2():
    return sc2_schedule(
        QueryGenerator(streams=STREAMS, seed=5), 2, 3, 3, kind="agg"
    )


def _sc1_fault_plan() -> FaultPlan:
    """Three node crashes plus one drop and one duplicate, spread out so
    each triggers its own recovery (the ISSUE acceptance scenario)."""
    plan = FaultPlan(name="sc1-chaos")
    for node, crash_ms in ((0, 2_000), (1, 4_500), (2, 7_000)):
        plan.add(FaultEvent(at_ms=crash_ms, kind=FaultKind.NODE_CRASH, node=node))
        plan.add(
            FaultEvent(
                at_ms=crash_ms + 1_500, kind=FaultKind.NODE_RESTORE, node=node
            )
        )
    plan.add(
        FaultEvent(at_ms=3_000, kind=FaultKind.CHANNEL_DROP,
                   edge="select:A->join:A~B", count=2)
    )
    plan.add(
        FaultEvent(at_ms=5_500, kind=FaultKind.CHANNEL_DUPLICATE,
                   edge="select:B->join:A~B", count=2)
    )
    return plan


def _sc2_fault_plan() -> FaultPlan:
    plan = FaultPlan(name="sc2-chaos")
    plan.add(FaultEvent(at_ms=2_500, kind=FaultKind.NODE_CRASH, node=3))
    plan.add(FaultEvent(at_ms=4_000, kind=FaultKind.NODE_RESTORE, node=3))
    # Fires once the selection stage has seen 50 more A-records; the
    # driver retries the tuple after supervised recovery.
    plan.add(
        FaultEvent(at_ms=3_500, kind=FaultKind.OPERATOR_EXCEPTION,
                   vertex="select:A", after_records=50, repeat=1)
    )
    plan.add(
        FaultEvent(at_ms=6_000, kind=FaultKind.CHANNEL_DUPLICATE,
                   edge="select:A->agg:A", count=3)
    )
    return plan


def _run(schedule, plan: FaultPlan = None):
    """One driver run; with a plan, the full chaos stack is attached.

    Pass the *same* schedule object to the oracle and chaos runs: query
    ids are allocated process-globally, so regenerating the schedule
    would label identical queries differently.
    """
    qos = QoSMonitor(sample_every=32)
    cluster = SimulatedCluster(ClusterSpec(nodes=4))
    engine = AStreamEngine(
        EngineConfig(streams=STREAMS, parallelism=1,
                     log_inputs=plan is not None),
        cluster=cluster,
        on_deliver=qos.on_deliver,
    )
    supervisor = None
    injector = None
    if plan is not None:
        injector = FaultInjector(plan, cluster=cluster)
        injector.attach(engine.runtime)
        supervisor = Supervisor(
            engine,
            injector=injector,
            policy=SupervisorPolicy(checkpoint_interval_ms=2_000),
        )
    driver = Driver(
        AStreamAdapter(engine),
        schedule,
        STREAMS,
        DriverConfig(**CONFIG),
        qos=qos,
        retry=RetryPolicy() if plan is not None else None,
        supervisor=supervisor,
    )
    report = driver.run()
    outputs = {
        query_id: [
            (output.timestamp, repr(output.value))
            for output in engine.results(query_id)
        ]
        for query_id in sorted(engine.channels.query_ids())
    }
    return report, outputs, supervisor, injector


class TestSC1Chaos:
    def test_outputs_byte_equal_to_oracle_despite_faults(self):
        schedule = _sc1()
        _, oracle, _, _ = _run(schedule)
        report, chaotic, supervisor, injector = _run(
            schedule, _sc1_fault_plan()
        )

        # The plan actually executed: 3 crashes + drop + duplicate.
        kinds = [record.event.kind for record in injector.records]
        assert kinds.count(FaultKind.NODE_CRASH) == 3
        assert FaultKind.CHANNEL_DROP in kinds
        assert FaultKind.CHANNEL_DUPLICATE in kinds

        # Every fault that corrupted state was recovered, with MTTR > 0.
        assert supervisor.recovery_count >= 5
        assert all(event.mttr_ms > 0 for event in supervisor.recovery_events)
        assert injector.unhandled_failures() == []
        assert report.recovery_events == supervisor.recovery_events

        # Exactly-once: every query's output is byte-equal to the oracle.
        assert set(chaotic) == set(oracle)
        for query_id in oracle:
            assert chaotic[query_id] == oracle[query_id], query_id

    def test_same_seed_identical_outputs_and_recovery_logs(self):
        schedule = _sc1()
        first = _run(schedule, _sc1_fault_plan())
        second = _run(schedule, _sc1_fault_plan())
        assert first[1] == second[1]  # outputs
        assert first[2].log_lines() == second[2].log_lines()  # recoveries
        assert first[3].log_lines() == second[3].log_lines()  # faults

    def test_checkpoints_bound_replay(self):
        report, _, supervisor, _ = _run(_sc1(), _sc1_fault_plan())
        assert supervisor.checkpoints_taken >= 3
        # With 2s checkpoints over a 10s run, no recovery replays the
        # whole history (compaction keeps the log to one interval).
        total_inputs = report.tuples_pushed
        for event in supervisor.recovery_events:
            assert event.replayed_elements < total_inputs


class TestSC2Chaos:
    def test_outputs_byte_equal_under_churn_and_operator_faults(self):
        schedule = _sc2()
        _, oracle, _, _ = _run(schedule)
        report, chaotic, supervisor, injector = _run(
            schedule, _sc2_fault_plan()
        )
        assert supervisor.recovery_count >= 3
        assert all(event.mttr_ms > 0 for event in supervisor.recovery_events)
        # The operator fault fired and the driver retried the tuple.
        assert report.tuple_retries >= 1
        assert report.dead_letters == []  # repeat=1 < max_attempts
        assert set(chaotic) == set(oracle)
        for query_id in oracle:
            assert chaotic[query_id] == oracle[query_id], query_id

    def test_same_seed_identical_runs(self):
        schedule = _sc2()
        first = _run(schedule, _sc2_fault_plan())
        second = _run(schedule, _sc2_fault_plan())
        assert first[1] == second[1]
        assert first[2].log_lines() == second[2].log_lines()


class TestPoisonTuple:
    def test_poison_tuple_is_dead_lettered_and_run_survives(self):
        plan = FaultPlan(name="poison")
        # repeat >= max_attempts: retries cannot save this tuple.
        plan.add(
            FaultEvent(at_ms=2_000, kind=FaultKind.OPERATOR_EXCEPTION,
                       vertex="select:A", after_records=10, repeat=10)
        )
        report, outputs, supervisor, injector = _run(_sc1(), plan)
        dead = [letter for letter in report.dead_letters
                if letter.kind == "tuple"]
        assert dead
        assert dead[0].attempts == RetryPolicy().max_attempts
        # The run itself survives and keeps producing output.
        assert report.tuples_pushed > 0
        assert any(outputs.values())
        assert supervisor.recovery_count >= 1
