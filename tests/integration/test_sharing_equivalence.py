"""The semantic-overlap optimizer must be invisible in the output (ISSUE 8).

The sharing rewrite (covering groups + stabbing index + residual
filters) is a pure optimisation: SC1/SC2 scenario runs and an
overlap-churn scenario — staggered creates and deletes of overlapping,
subsumed, and duplicate interval predicates mid-stream — must produce
byte-identical per-query outputs with the optimizer on and off, on the
inline and the process backends, and through a SIGKILLed worker
followed by checkpoint-restore + replay recovery.
"""

import pytest

from repro.core.engine import AStreamEngine, EngineConfig
from repro.core.parallel_engine import ProcessAStreamEngine
from repro.core.query import AggregationQuery, Comparison, FieldPredicate, WindowSpec
from repro.core.sql import ConjunctionPredicate
from repro.minispe.cluster import ClusterSpec, SimulatedCluster
from repro.workloads.datagen import DataGenerator
from repro.workloads.driver import AStreamAdapter, Driver, DriverConfig
from repro.workloads.querygen import QueryGenerator
from repro.workloads.scenarios import (
    ScheduledRequest,
    WorkloadSchedule,
    sc1_schedule,
    sc2_schedule,
)

STREAMS = ("A", "B")
CONFIG = dict(input_rate_tps=100.0, duration_s=8.0, step_ms=250)


def _sc1():
    return sc1_schedule(QueryGenerator(streams=STREAMS, seed=33), 1, 4, kind="join")


def _sc2():
    return sc2_schedule(QueryGenerator(streams=STREAMS, seed=33), 2, 3, 2, kind="agg")


def _interval_query(index: int, low: float, stream: str = "A") -> AggregationQuery:
    return AggregationQuery(
        stream=stream,
        predicate=ConjunctionPredicate(
            (
                FieldPredicate(0, Comparison.GE, low),
                FieldPredicate(0, Comparison.LE, low + 15),
            )
        ),
        window_spec=WindowSpec.tumbling(1_000),
        query_id=f"churn-{index}",
    )


def _churn_schedule() -> WorkloadSchedule:
    """Overlapping / subsumed / duplicate predicates churning mid-stream.

    Lows step by 5 over [0, 80], so consecutive queries overlap heavily;
    every 4th query repeats the previous low (value-identical predicate)
    and every 5th is fully subsumed ([low+5, low+10] inside [low,
    low+15]).  A third of the population is deleted mid-run, so sharing
    groups split and re-form across several changelog epochs.
    """
    requests = []
    for index in range(17):
        low = (index * 5) % 81
        if index % 4 == 3:
            low = ((index - 1) * 5) % 81  # duplicate of the previous one
        query = _interval_query(index, low)
        if index % 5 == 4:
            query = AggregationQuery(
                stream="A",
                predicate=ConjunctionPredicate(
                    (
                        FieldPredicate(0, Comparison.GE, low + 5),
                        FieldPredicate(0, Comparison.LE, low + 10),
                    )
                ),
                window_spec=WindowSpec.tumbling(1_000),
                query_id=f"churn-{index}",
            )
        requests.append(
            ScheduledRequest(at_ms=(index % 6) * 700, kind="create", query=query)
        )
        if index % 3 == 0:
            requests.append(
                ScheduledRequest(
                    at_ms=4_200 + index * 150,
                    kind="delete",
                    query_id=f"churn-{index}",
                )
            )
    return WorkloadSchedule(name="overlap-churn", requests=requests)


CHURN_SCHEDULE = _churn_schedule()


def _canonical(engine):
    return {
        query_id: [
            (output.timestamp, repr(output.value))
            for output in engine.canonical_results(query_id)
        ]
        for query_id in sorted(engine.result_counts())
    }


def _run(schedule, share: bool, workers=None):
    config = EngineConfig(streams=STREAMS, parallelism=1, share_overlapping=share)
    if workers is None:
        engine = AStreamEngine(
            config, cluster=SimulatedCluster(ClusterSpec(nodes=4))
        )
    else:
        engine = ProcessAStreamEngine(config, workers=workers)
    Driver(
        AStreamAdapter(engine),
        schedule,
        STREAMS,
        DriverConfig(batch_size=7, **CONFIG),
    ).run()
    outputs = _canonical(engine)
    engine.shutdown()
    return outputs


class TestSharingEquivalence:
    @pytest.mark.parametrize(
        "scenario",
        [_sc1, _sc2, lambda: CHURN_SCHEDULE],
        ids=["sc1", "sc2", "overlap-churn"],
    )
    def test_optimizer_is_byte_equal_on_both_backends(self, scenario):
        schedule = scenario()
        oracle = _run(schedule, share=False)
        assert oracle and any(oracle.values())
        inline_on = _run(schedule, share=True)
        assert inline_on == oracle, "inline sharing-on diverged"
        process_on = _run(schedule, share=True, workers=2)
        assert process_on == oracle, "process sharing-on diverged"


# ---------------------------------------------------------------------------
# Chaos: SIGKILL a worker mid-churn with the optimizer on
# ---------------------------------------------------------------------------

CHAOS_STEPS = 24
CHAOS_STEP_MS = 250


def _chaos_run(share: bool, workers=None, kill_at_step=None):
    """Manually drive the churn schedule so the kill lands at an exact
    point in the element sequence; every run sees the identical
    interleaving of submissions, records, watermarks, and checkpoint
    barriers."""
    config = EngineConfig(
        streams=STREAMS,
        parallelism=1,
        log_inputs=True,
        share_overlapping=share,
    )
    if workers is None:
        engine = AStreamEngine(config)
    else:
        engine = ProcessAStreamEngine(config, workers=workers)
    data = DataGenerator(seed=5)
    events = sorted(CHURN_SCHEDULE.requests, key=lambda event: event.at_ms)
    index = 0
    recovery = None
    for step in range(CHAOS_STEPS):
        now = step * CHAOS_STEP_MS
        while index < len(events) and events[index].at_ms <= now:
            event = events[index]
            index += 1
            if event.kind == "create":
                engine.submit(event.query, now_ms=now)
            else:
                engine.stop(event.query_id, now_ms=now)
        engine.tick(now)
        for stream in STREAMS:
            for offset in range(25):
                engine.push(stream, now + offset * 10, data.next_tuple())
        engine.watermark(now)
        if step % 8 == 7:
            engine.checkpoint()
        if kill_at_step is not None and step == kill_at_step:
            engine.kill_worker(0)
            assert engine.alive_workers == workers - 1
            recovery = engine.recover()
            assert engine.alive_workers == workers
    engine.watermark(CHAOS_STEPS * CHAOS_STEP_MS + 10_000)
    if hasattr(engine, "drain"):
        engine.drain()
    outputs = _canonical(engine)
    engine.shutdown()
    return outputs, recovery


class TestSharingKillRecovery:
    def test_kill_and_recover_stays_byte_equal_with_sharing_on(self):
        oracle, _ = _chaos_run(share=False)
        assert oracle and any(oracle.values())
        clean, _ = _chaos_run(share=True, workers=2)
        assert clean == oracle, "sharing-on clean process run diverged"
        faulted, recovery = _chaos_run(share=True, workers=2, kill_at_step=10)
        assert recovery is not None
        assert recovery.replayed_elements > 0
        assert faulted == oracle, "sharing-on kill+recover diverged"
