"""Property test: ad-hoc consistency of the shared engine vs the oracle.

Hypothesis generates random ad-hoc schedules — queries with random
windows and predicates created and deleted at random changelog points —
over a random data stream.  Every query's delivered results must equal
the brute-force oracle's, regardless of slot reuse, slicing layout, or
storage switching.  This is the paper's consistency requirement (§1.2 R2)
as an executable property.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.engine import AStreamEngine, EngineConfig
from repro.core.query import (
    Comparison,
    FieldPredicate,
    JoinQuery,
    WindowSpec,
)
from repro.minispe.cluster import ClusterSpec, SimulatedCluster
from tests.conftest import field_tuple
from tests.core.oracle import expected_join_multiset, join_outputs_multiset

PHASE_MS = 1_000
PHASES = 6


@st.composite
def _schedules(draw):
    """Random per-phase create/delete actions plus per-phase data."""
    actions = []
    live = []
    for phase in range(PHASES):
        # Maybe delete one live query.
        if live and draw(st.booleans()):
            victim = draw(st.sampled_from(live))
            live.remove(victim)
            actions.append((phase, "delete", victim))
        # Maybe create up to 2 queries.
        for _ in range(draw(st.integers(0, 2))):
            length = draw(st.integers(1, 3)) * PHASE_MS
            slide = draw(st.integers(1, length // PHASE_MS)) * PHASE_MS
            predicate_constant = draw(st.integers(0, 100))
            op = draw(st.sampled_from([Comparison.LT, Comparison.GE]))
            name = f"q{phase}-{len(actions)}"
            actions.append(
                (phase, "create", (name, length, slide, op, predicate_constant))
            )
            live.append(name)
    data = draw(
        st.lists(
            st.tuples(
                st.integers(0, PHASES * PHASE_MS - 1),  # timestamp
                st.integers(0, 3),                      # key
                st.integers(0, 100),                    # field value
            ),
            min_size=5,
            max_size=40,
        )
    )
    return actions, data


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(_schedules())
def test_random_adhoc_schedule_matches_oracle(schedule):
    actions, data = schedule
    engine = AStreamEngine(
        EngineConfig(streams=("A", "B"), parallelism=2),
        cluster=SimulatedCluster(ClusterSpec(nodes=4)),
    )
    queries = {}
    created_at = {}
    deleted_watermark = {}
    pushed = {"A": [], "B": []}
    last_watermark = 0

    by_phase = {}
    for phase, kind, payload in actions:
        by_phase.setdefault(phase, []).append((kind, payload))

    for phase in range(PHASES):
        now = phase * PHASE_MS
        # Apply this phase's query changes at the phase boundary.
        for kind, payload in by_phase.get(phase, []):
            if kind == "create":
                name, length, slide, op, constant = payload
                query = JoinQuery(
                    left_stream="A", right_stream="B",
                    left_predicate=FieldPredicate(0, op, constant),
                    right_predicate=FieldPredicate(1, op, constant),
                    window_spec=WindowSpec.sliding(length, slide),
                    query_id=name,
                )
                queries[name] = query
                created_at[name] = now
                engine.submit(query, now)
            else:
                deleted_watermark[payload] = last_watermark
                engine.stop(payload, now)
        engine.flush_session(now)
        # Push this phase's data (event times within the phase).
        for ts, key, field_value in data:
            if now <= ts < now + PHASE_MS:
                left = field_tuple(key=key, f0=field_value)
                right = field_tuple(key=key, f1=field_value)
                pushed["A"].append((ts, left))
                pushed["B"].append((ts, right))
                engine.push("A", ts, left)
                engine.push("B", ts, right)
        last_watermark = now + PHASE_MS
        engine.watermark(last_watermark)

    final_watermark = PHASES * PHASE_MS + 10_000
    engine.watermark(final_watermark)

    for name, query in queries.items():
        effective = deleted_watermark.get(name, final_watermark)
        expected = expected_join_multiset(
            query, created_at[name], pushed["A"], pushed["B"], effective
        )
        actual = join_outputs_multiset(engine.results(name))
        assert actual == expected, name


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(_schedules())
def test_random_adhoc_aggregations_match_oracle(schedule):
    """The same property for shared aggregations (§3.1.5)."""
    from repro.core.query import AggregationQuery
    from tests.core.oracle import agg_outputs_multiset, expected_agg_multiset

    actions, data = schedule
    engine = AStreamEngine(
        EngineConfig(streams=("A", "B"), parallelism=2),
        cluster=SimulatedCluster(ClusterSpec(nodes=4)),
    )
    queries = {}
    created_at = {}
    deleted_watermark = {}
    pushed = []
    last_watermark = 0

    by_phase = {}
    for phase, kind, payload in actions:
        by_phase.setdefault(phase, []).append((kind, payload))

    for phase in range(PHASES):
        now = phase * PHASE_MS
        for kind, payload in by_phase.get(phase, []):
            if kind == "create":
                name, length, slide, op, constant = payload
                query = AggregationQuery(
                    stream="A",
                    predicate=FieldPredicate(0, op, constant),
                    window_spec=WindowSpec.sliding(length, slide),
                    query_id=name,
                )
                queries[name] = query
                created_at[name] = now
                engine.submit(query, now)
            else:
                deleted_watermark[payload] = last_watermark
                engine.stop(payload, now)
        engine.flush_session(now)
        for ts, key, field_value in data:
            if now <= ts < now + PHASE_MS:
                value = field_tuple(key=key, f0=field_value)
                pushed.append((ts, value))
                engine.push("A", ts, value)
        last_watermark = now + PHASE_MS
        engine.watermark(last_watermark)

    final_watermark = PHASES * PHASE_MS + 10_000
    engine.watermark(final_watermark)

    for name, query in queries.items():
        effective = deleted_watermark.get(name, final_watermark)
        expected = expected_agg_multiset(
            query, created_at[name], pushed, effective
        )
        actual = agg_outputs_multiset(engine.results(name))
        assert actual == expected, name
