"""Micro-batching must be invisible in the output (ISSUE tentpole).

Full SC1/SC2 scenario runs are repeated with ``batch_size`` 1, 7, and 64
and the per-query outputs compared byte-for-byte: the vectorized batch
path (RecordBatch routing, ``process_batch`` operators, batched driver
pushes) is a pure encoding of the per-record element sequence.  The same
holds under a seeded chaos :class:`FaultPlan` — whole-batch retries
after supervised recovery must not duplicate or lose a single tuple.
"""

import pytest

from repro.core.engine import AStreamEngine, EngineConfig
from repro.core.qos import QoSMonitor
from repro.faults import (
    FaultEvent,
    FaultInjector,
    FaultKind,
    FaultPlan,
    Supervisor,
    SupervisorPolicy,
)
from repro.minispe.cluster import ClusterSpec, SimulatedCluster
from repro.workloads.driver import (
    AStreamAdapter,
    BaselineAdapter,
    Driver,
    DriverConfig,
    RetryPolicy,
)
from repro.baseline.deployment import BaselineDeploymentModel
from repro.baseline.engine import QueryAtATimeEngine
from repro.workloads.querygen import QueryGenerator
from repro.workloads.scenarios import sc1_schedule, sc2_schedule

STREAMS = ("A", "B")
BATCH_SIZES = (1, 7, 64)
CONFIG = dict(input_rate_tps=100.0, duration_s=8.0, step_ms=250)


def _sc1():
    return sc1_schedule(
        QueryGenerator(streams=STREAMS, seed=21), 1, 4, kind="join"
    )


def _sc2():
    return sc2_schedule(
        QueryGenerator(streams=STREAMS, seed=21), 2, 3, 2, kind="agg"
    )


def _fault_plan() -> FaultPlan:
    plan = FaultPlan(name="batch-chaos")
    plan.add(FaultEvent(at_ms=2_000, kind=FaultKind.NODE_CRASH, node=0))
    plan.add(FaultEvent(at_ms=3_500, kind=FaultKind.NODE_RESTORE, node=0))
    plan.add(
        FaultEvent(at_ms=3_000, kind=FaultKind.CHANNEL_DROP,
                   edge="select:A->join:A~B", count=2)
    )
    plan.add(
        FaultEvent(at_ms=4_500, kind=FaultKind.CHANNEL_DUPLICATE,
                   edge="select:B->join:A~B", count=2)
    )
    plan.add(
        FaultEvent(at_ms=5_000, kind=FaultKind.OPERATOR_EXCEPTION,
                   vertex="select:A", after_records=40, repeat=1)
    )
    return plan


def _run_astream(schedule, batch_size: int, plan: FaultPlan = None):
    qos = QoSMonitor(sample_every=32)
    cluster = SimulatedCluster(ClusterSpec(nodes=4))
    engine = AStreamEngine(
        EngineConfig(streams=STREAMS, parallelism=1,
                     log_inputs=plan is not None),
        cluster=cluster,
        on_deliver=qos.on_deliver,
    )
    supervisor = None
    if plan is not None:
        injector = FaultInjector(plan, cluster=cluster)
        injector.attach(engine.runtime)
        supervisor = Supervisor(
            engine,
            injector=injector,
            policy=SupervisorPolicy(checkpoint_interval_ms=2_000),
        )
    report = Driver(
        AStreamAdapter(engine),
        schedule,
        STREAMS,
        DriverConfig(batch_size=batch_size, **CONFIG),
        qos=qos,
        retry=RetryPolicy() if plan is not None else None,
        supervisor=supervisor,
    ).run()
    outputs = {
        query_id: [
            (output.timestamp, repr(output.value))
            for output in engine.results(query_id)
        ]
        for query_id in sorted(engine.channels.query_ids())
    }
    return report, outputs, supervisor


def _run_baseline(schedule, batch_size: int):
    qos = QoSMonitor(sample_every=32)
    engine = QueryAtATimeEngine(
        cluster=SimulatedCluster(ClusterSpec(nodes=64)),
        deployment=BaselineDeploymentModel(
            cold_start_ms=0, job_submit_ms=0, job_stop_ms=0, per_instance_ms=0
        ),
        parallelism=1,
        on_deliver=qos.on_deliver,
    )
    Driver(
        BaselineAdapter(engine),
        schedule,
        STREAMS,
        DriverConfig(batch_size=batch_size, **CONFIG),
        qos=qos,
    ).run()
    return {
        query_id: [
            (output.timestamp, repr(output.value))
            for output in engine.results(query_id)
        ]
        for query_id in sorted(engine.channels.query_ids())
    }


class TestAStreamBatchEquivalence:
    @pytest.mark.parametrize("scenario", [_sc1, _sc2], ids=["sc1", "sc2"])
    def test_outputs_byte_equal_across_batch_sizes(self, scenario):
        schedule = scenario()
        _, reference, _ = _run_astream(schedule, batch_size=1)
        assert reference and any(reference.values())
        for batch_size in BATCH_SIZES[1:]:
            _, outputs, _ = _run_astream(schedule, batch_size=batch_size)
            assert set(outputs) == set(reference)
            for query_id in reference:
                assert outputs[query_id] == reference[query_id], (
                    f"batch_size={batch_size} diverged on {query_id}"
                )

    @pytest.mark.parametrize("scenario", [_sc1, _sc2], ids=["sc1", "sc2"])
    def test_outputs_byte_equal_under_chaos(self, scenario):
        schedule = scenario()
        _, oracle, _ = _run_astream(schedule, batch_size=1)
        for batch_size in BATCH_SIZES:
            _, outputs, supervisor = _run_astream(
                schedule, batch_size=batch_size, plan=_fault_plan()
            )
            assert supervisor.recovery_count >= 1, batch_size
            assert set(outputs) == set(oracle)
            for query_id in oracle:
                assert outputs[query_id] == oracle[query_id], (
                    f"chaos batch_size={batch_size} diverged on {query_id}"
                )

    def test_chaos_batch_runs_are_seed_deterministic(self):
        schedule = _sc1()
        first = _run_astream(schedule, batch_size=7, plan=_fault_plan())
        second = _run_astream(schedule, batch_size=7, plan=_fault_plan())
        assert first[1] == second[1]
        assert first[2].log_lines() == second[2].log_lines()


class TestBaselineBatchEquivalence:
    def test_outputs_byte_equal_across_batch_sizes(self):
        schedule = _sc1()
        reference = _run_baseline(schedule, batch_size=1)
        assert reference and any(reference.values())
        for batch_size in BATCH_SIZES[1:]:
            outputs = _run_baseline(schedule, batch_size=batch_size)
            assert outputs == reference, f"batch_size={batch_size}"
