"""Cost-attribution conservation on the 500-query overlap workload.

ISSUE 9 acceptance criterion: per-query cost attribution must sum to
the total measured engine CPU within 1 % on the ROADMAP's 500-query
~30 %-pairwise-overlap workload.  Attribution is a proportional split
of the metered total, so conservation actually holds *exactly* — the
assertions below check the hard identity first and the 1 % bound as
the stated acceptance bar.

The workload mirrors ``bench_ablation_predicate_dedup``: 500
non-identical interval predicates ``low <= f0 <= low + 15`` with low
bounds uniform in [0, 85) under a fixed seed, expressed as flattened
conjunctions so the planner's normalization (not predicate identity)
drives the covering-group sharing whose amortized cost the attribution
has to split.
"""

import random

from repro.core.engine import EngineConfig
from repro.core.parallel_engine import ProcessAStreamEngine
from repro.core.query import (
    AggregationQuery,
    Comparison,
    FieldPredicate,
    WindowSpec,
)
from repro.core.sql import ConjunctionPredicate
from tests.conftest import field_tuple, make_engine

QUERIES = 500
INTERVAL_WIDTH = 15.0
CONSTANT_SPAN = 85.0
SEED = 2019
PUSHES = 400


def overlap_queries(count: int = QUERIES):
    rng = random.Random(SEED)
    queries = []
    for index in range(count):
        low = round(rng.uniform(0.0, CONSTANT_SPAN), 2)
        queries.append(
            AggregationQuery(
                stream="A",
                predicate=ConjunctionPredicate(
                    (
                        FieldPredicate(0, Comparison.GE, low),
                        FieldPredicate(0, Comparison.LE, low + INTERVAL_WIDTH),
                    )
                ),
                window_spec=WindowSpec.tumbling(1_000),
                query_id=f"ovl-{index}",
            )
        )
    return queries


def drive(engine, pushes: int = PUSHES):
    for query in overlap_queries():
        engine.submit(query, 0)
    engine.flush_session(0)
    for index in range(pushes):
        # f0 sweeps the [0, 100) predicate domain deterministically.
        engine.push(
            "A", index, field_tuple(key=index % 8, f0=(index * 7) % 100)
        )
    engine.watermark(pushes)


def assert_conserved(cost):
    total = cost["total_ns"]
    attributed = sum(cost["queries"].values()) + cost["unattributed_ns"]
    assert total > 0, "profile=True must meter data-path CPU"
    # The hard identity: proportional split + remainder handoff.
    assert attributed == total
    # The stated acceptance bar (held with zero slack, not 1 %).
    assert abs(attributed - total) <= 0.01 * total
    return total


class TestOverlapWorkloadAttribution:
    def test_inline_shares_sum_to_metered_total(self):
        engine = make_engine(streams=("A",), profile=True)
        drive(engine)
        cost = engine.cost_attribution()
        assert_conserved(cost)
        # Every query shares the covering group, so every query is
        # charged a share of the amortized scan.
        assert set(cost["queries"]) == {
            f"ovl-{index}" for index in range(QUERIES)
        }
        assert all(share > 0 for share in cost["queries"].values())

    def test_overlapping_pair_splits_shared_work_fairly(self):
        engine = make_engine(streams=("A",), profile=True)
        drive(engine)
        profile = engine.cost_profile()
        group_entries = [
            entry
            for entry in profile["streams"]["A"]
            if entry["kind"] == "groups"
        ]
        assert group_entries, "overlap workload must form covering groups"
        # The covering group spans (essentially) the whole population —
        # this is the shared work the split must amortize.
        assert max(len(e["queries"]) for e in group_entries) > QUERIES // 2

    def test_process_backend_merged_profile_conserves(self):
        engine = ProcessAStreamEngine(
            EngineConfig(streams=("A",), parallelism=1, profile=True),
            workers=2,
        )
        try:
            drive(engine, pushes=160)
            engine.drain()
            cost = engine.cost_attribution()
            assert_conserved(cost)
            assert len(cost["queries"]) == QUERIES
        finally:
            engine.shutdown()
