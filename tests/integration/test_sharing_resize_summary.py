"""sharing_summary() must merge coherently across a live resize.

ISSUE 9 satellite: the cross-shard merge (shape keys max, work counters
sum) has to stay *monotone* while the worker pool is mid-migration —
shard state moving between workers must neither double-count the
evaluation counters (exported state replayed into a restored shard) nor
lose them (a counter reset by the re-split).  The oracle is an identical
run without the resize: deterministic workload, so the final counters
must match exactly.
"""

from repro.core.engine import EngineConfig
from repro.core.parallel_engine import ProcessAStreamEngine
from repro.core.sql import parse_query
from repro.workloads.datagen import DataGenerator

STREAMS = ("A", "B")
STEPS = 12
STEP_MS = 100
RECORDS_PER_STEP = 20

# Nested bounds: the planner folds these into one covering group with
# residual filters, so group_evaluations / cover_skips / residual_checks
# all do real work on every push.
SQLS = (
    "SELECT * FROM A WHERE A.F0 > 100",
    "SELECT * FROM A WHERE A.F0 > 400",
    "SELECT * FROM A WHERE A.F0 > 700",
)

COUNTER_KEYS = (
    "group_evaluations",
    "cover_skips",
    "index_probes",
    "residual_checks",
)
SHAPE_KEYS = ("groups", "grouped_slots", "direct_predicates")


def _run(resize_at=None, workers=2, target=4):
    """Drive the workload; returns (per-step summaries, final summary)."""
    engine = ProcessAStreamEngine(
        EngineConfig(streams=STREAMS, parallelism=1, log_inputs=True),
        workers=workers,
    )
    for sql in SQLS:
        engine.submit(parse_query(sql), 0)
    engine.flush_session(0)
    generator = DataGenerator(seed=43)
    summaries = []
    for step in range(STEPS):
        now = step * STEP_MS
        if step == resize_at:
            engine.begin_resize(target)
            assert engine.migration_active
        for offset in range(RECORDS_PER_STEP):
            engine.push("A", now + offset, generator.next_tuple())
        engine.watermark(now)
        if engine.migration_active:
            engine.migration_step()
        engine.drain()
        summaries.append(engine.sharing_summary())
    assert not engine.migration_active
    final = engine.sharing_summary()
    engine.shutdown()
    return summaries, final


class TestSharingSummaryAcrossResize:
    def test_counters_monotone_and_shape_stable_through_resize(self):
        summaries, final = _run(resize_at=4)
        assert final["A"]["groups"] >= 1
        assert final["A"]["grouped_slots"] == len(SQLS)
        for prev, curr in zip(summaries, summaries[1:]):
            for key in COUNTER_KEYS:
                assert curr["A"][key] >= prev["A"][key], (
                    f"{key} went backwards across a migration step: "
                    f"{prev['A'][key]} -> {curr['A'][key]}"
                )
            for key in SHAPE_KEYS:
                assert curr["A"][key] == summaries[0]["A"][key]
        # Work happened on both sides of the resize.
        assert summaries[3]["A"]["group_evaluations"] > 0
        assert (
            final["A"]["group_evaluations"]
            > summaries[4]["A"]["group_evaluations"]
        )

    def test_resized_run_counters_match_steady_run_exactly(self):
        _, with_resize = _run(resize_at=4)
        _, steady = _run(resize_at=None)
        assert with_resize["A"] == steady["A"], (
            "migration double-counted or dropped sharing work counters"
        )

    def test_scale_down_also_conserves_counters(self):
        _, shrunk = _run(resize_at=5, workers=4, target=2)
        _, steady = _run(resize_at=None, workers=4)
        assert shrunk["A"] == steady["A"]
