"""Exactly-once integration: checkpoint + replay across the full engine.

Strategy: run the same element sequence (records, watermarks, *and*
changelog markers) through

1. a reference engine, uninterrupted;
2. an engine that is checkpointed mid-stream, "crashes", is restored
   into a freshly deployed engine, and replays the post-checkpoint
   suffix.

Per-query delivered results must be identical — every input processed
exactly once despite the failure, including consistency of ad-hoc query
creations woven into the stream (paper §3.3).
"""

from typing import List, Tuple

from repro.core.engine import AStreamEngine, EngineConfig
from repro.core.query import (
    AggregationQuery,
    JoinQuery,
    TruePredicate,
    WindowSpec,
)
from repro.minispe.cluster import ClusterSpec, SimulatedCluster
from repro.minispe.record import CheckpointBarrier, StreamElement
from tests.conftest import field_tuple


def _fresh_engine() -> AStreamEngine:
    return AStreamEngine(
        EngineConfig(streams=("A", "B"), parallelism=2),
        cluster=SimulatedCluster(ClusterSpec(nodes=4)),
    )


def _element_log() -> List[Tuple[str, int, object, str]]:
    """A deterministic mixed workload: data + two changelog points."""
    log: List[Tuple[str, str, tuple]] = []
    # (op, stream/None, args)
    for ts in range(0, 2_000, 100):
        log.append(("push", "A", (ts, field_tuple(key=ts % 3, f0=ts % 7))))
        log.append(("push", "B", (ts, field_tuple(key=ts % 3, f1=ts % 5))))
    log.append(("watermark", None, (2_000,)))
    for ts in range(2_000, 4_000, 100):
        log.append(("push", "A", (ts, field_tuple(key=ts % 3, f0=ts % 7))))
        log.append(("push", "B", (ts, field_tuple(key=ts % 3, f1=ts % 5))))
    log.append(("watermark", None, (4_000,)))
    for ts in range(4_000, 6_000, 100):
        log.append(("push", "A", (ts, field_tuple(key=ts % 3, f0=ts % 7))))
        log.append(("push", "B", (ts, field_tuple(key=ts % 3, f1=ts % 5))))
    log.append(("watermark", None, (8_000,)))
    return log


def _queries():
    join = JoinQuery(
        left_stream="A", right_stream="B",
        left_predicate=TruePredicate(), right_predicate=TruePredicate(),
        window_spec=WindowSpec.tumbling(2_000), query_id="eo-join",
    )
    agg = AggregationQuery(
        stream="A", predicate=TruePredicate(),
        window_spec=WindowSpec.tumbling(1_000), query_id="eo-agg",
    )
    return join, agg


def _apply(engine: AStreamEngine, entry) -> None:
    op, stream, args = entry
    if op == "push":
        engine.push(stream, *args)
    elif op == "watermark":
        engine.watermark(*args)
    elif op == "create":
        (query, now) = args
        engine.submit(query, now)
        engine.flush_session(now)


def _per_query_outputs(engine: AStreamEngine):
    return {
        query_id: [
            (output.timestamp, repr(output.value))
            for output in engine.results(query_id)
        ]
        for query_id in ("eo-join", "eo-agg", "eo-late")
    }


def _full_log():
    join, agg = _queries()
    late = JoinQuery(
        left_stream="A", right_stream="B",
        left_predicate=TruePredicate(), right_predicate=TruePredicate(),
        window_spec=WindowSpec.tumbling(1_000), query_id="eo-late",
    )
    log = [("create", None, (join, 0)), ("create", None, (agg, 0))]
    data = _element_log()
    # Weave an ad-hoc creation between the first and second data phase.
    first_phase = data[:41]
    rest = data[41:]
    log.extend(first_phase)
    log.append(("create", None, (late, 2_000)))
    log.extend(rest)
    return log


def test_recovery_reproduces_reference_run():
    log = _full_log()
    split = 55  # mid-second-phase: open windows + live queries in state

    # Reference: no failure.
    reference = _fresh_engine()
    for entry in log:
        _apply(reference, entry)
    expected = _per_query_outputs(reference)

    # Run with a crash: process prefix, checkpoint, crash, recover.
    primary = _fresh_engine()
    for entry in log[:split]:
        _apply(primary, entry)
    barrier = CheckpointBarrier(timestamp=0, checkpoint_id=1)
    for stream in ("A", "B"):
        primary.runtime.push(f"source:{stream}", barrier)
    snapshot = primary.runtime.completed_checkpoint(1)
    assert snapshot is not None
    prefix_outputs = _per_query_outputs(primary)

    # "Crash": the primary is discarded.  A fresh engine is deployed,
    # state restored, and the suffix replayed.
    recovered = AStreamEngine(
        EngineConfig(streams=("A", "B"), parallelism=2),
        cluster=SimulatedCluster(ClusterSpec(nodes=4)),
    )
    recovered.runtime.restore_checkpoint(snapshot)
    for entry in log[split:]:
        if entry[0] == "create":
            # Query creations are changelog markers in the stream: the
            # replayed marker must be byte-identical, so re-wire it
            # through the session of the recovered engine exactly as the
            # original did.
            _apply(recovered, entry)
        else:
            _apply(recovered, entry)
    suffix_outputs = _per_query_outputs(recovered)

    combined = {
        query_id: prefix_outputs[query_id] + suffix_outputs[query_id]
        for query_id in expected
    }
    assert combined == expected


class TestRandomCrashPositions:
    """Recovery must be correct no matter where the crash lands."""

    import pytest

    @staticmethod
    def _run_with_crash(split: int):
        from repro.core.engine import AStreamEngine, EngineConfig
        from repro.minispe.cluster import ClusterSpec, SimulatedCluster

        log = _full_log()
        split = min(split, len(log) - 1)
        engine = AStreamEngine(
            EngineConfig(streams=("A", "B"), parallelism=2, log_inputs=True),
            cluster=SimulatedCluster(ClusterSpec(nodes=4)),
        )
        for entry in log[:split]:
            _apply(engine, entry)
        engine.checkpoint()
        # A few more elements land after the checkpoint, then the crash.
        for entry in log[split : split + 7]:
            _apply(engine, entry)
        engine.recover()
        for entry in log[split + 7 :]:
            _apply(engine, entry)
        return _per_query_outputs(engine)

    def test_many_crash_positions(self):
        from repro.core.engine import AStreamEngine, EngineConfig
        from repro.minispe.cluster import ClusterSpec, SimulatedCluster

        log = _full_log()
        reference_engine = AStreamEngine(
            EngineConfig(streams=("A", "B"), parallelism=2),
            cluster=SimulatedCluster(ClusterSpec(nodes=4)),
        )
        for entry in log:
            _apply(reference_engine, entry)
        reference = _per_query_outputs(reference_engine)
        for split in (3, 20, 44, 60, 85, 110, len(log) - 2):
            assert self._run_with_crash(split) == reference, split
