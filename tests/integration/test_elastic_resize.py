"""Live resize must be invisible in the output (ISSUE 6 tentpole).

The elastic shard pool resizes at runtime — per-shard state exported
through the checkpoint pack/unpack seam, re-split by key hash, and
restored into the new worker set — while ingest keeps flowing (records
for not-yet-restored shards buffer and replay in order).  SC-style
scenario runs with mid-run resizes (2→4, 4→2, and chained) must stay
byte-identical to the in-process oracle, and so must a SIGKILL landing
in the middle of an in-flight migration (recovery falls back to the
last checkpoint + input-log replay, then re-repartitions on restore).
"""

import pytest

from repro.core.engine import AStreamEngine, EngineConfig
from repro.core.parallel_engine import ProcessAStreamEngine
from repro.workloads.datagen import DataGenerator
from repro.workloads.querygen import QueryGenerator
from repro.workloads.scenarios import sc1_schedule

STREAMS = ("A", "B")
STEPS = 24
STEP_MS = 250
RECORDS_PER_STEP = 25

# Built once: query ids carry a process-global counter, so comparison
# runs must share one schedule or identical queries get different ids.
AGG_SCHEDULE = sc1_schedule(
    QueryGenerator(streams=STREAMS, seed=61), 1, 4, kind="agg"
)
JOIN_SCHEDULE = sc1_schedule(
    QueryGenerator(streams=STREAMS, seed=62), 1, 3, kind="join"
)


def _canonical(engine):
    return {
        query_id: [
            (output.timestamp, repr(output.value))
            for output in engine.canonical_results(query_id)
        ]
        for query_id in sorted(engine.result_counts())
    }


def _run(
    schedule,
    workers=None,
    resizes=None,
    kill_mid_migration_at=None,
    join_data=False,
):
    """Drive one scenario with optional mid-run resizes.

    ``resizes`` maps step → target worker count; the resize *begins* at
    that step and its per-shard restores are then driven one step per
    loop iteration, overlapping live ingest.  ``kill_mid_migration_at``
    begins a resize at that step, restores exactly one shard, SIGKILLs
    worker 0 while the rest are still pending, and recovers.
    ``join_data`` feeds each stream its own seeded generator (identical
    key sequences, so joins actually match).
    """
    config = EngineConfig(streams=STREAMS, parallelism=1, log_inputs=True)
    if workers is None:
        engine = AStreamEngine(config)
    else:
        engine = ProcessAStreamEngine(config, workers=workers)
    if join_data:
        generators = {stream: DataGenerator(seed=9) for stream in STREAMS}
    else:
        shared = DataGenerator(seed=5)
        generators = {stream: shared for stream in STREAMS}
    events = sorted(schedule.requests, key=lambda event: event.at_ms)
    index = 0
    recovery = None
    resizes = resizes or {}
    for step in range(STEPS):
        now = step * STEP_MS
        while index < len(events) and events[index].at_ms <= now:
            event = events[index]
            index += 1
            if event.kind == "create":
                engine.submit(event.query, now_ms=now)
            else:
                engine.stop(event.query_id, now_ms=now)
        engine.tick(now)
        if workers is not None and step in resizes:
            engine.begin_resize(resizes[step])
            assert engine.migration_active
        for stream in STREAMS:
            for offset in range(RECORDS_PER_STEP):
                engine.push(
                    stream, now + offset * 10, generators[stream].next_tuple()
                )
        engine.watermark(now)
        if workers is not None and engine.migration_active:
            # One shard per step: ingest for the remaining pending
            # shards keeps buffering while restores proceed.
            engine.migration_step()
        # Checkpoint cadence deliberately avoids the resize windows:
        # checkpoints are sync collectives that finish an in-flight
        # migration wholesale, which would rob the incremental
        # migration_step loop of the shards it is asserted to restore.
        if step % 8 == 3:
            engine.checkpoint()
        if workers is not None and step == kill_mid_migration_at:
            engine.begin_resize(4)
            engine.migration_step()
            assert engine.migration_active, "kill must land mid-migration"
            engine.kill_worker(0)
            recovery = engine.recover()
            assert not engine.migration_active
            assert engine.alive_workers == 4
    engine.watermark(STEPS * STEP_MS + 10_000)
    if hasattr(engine, "drain"):
        engine.drain()
    outputs = _canonical(engine)
    counters = (
        engine.migration_counters()
        if isinstance(engine, ProcessAStreamEngine)
        else None
    )
    engine.shutdown()
    return outputs, counters, recovery


class TestElasticResize:
    def test_resize_up_and_down_preserve_outputs(self):
        oracle, _, _ = _run(AGG_SCHEDULE)
        assert oracle and any(oracle.values())
        for start, target, label in ((2, 4, "2->4"), (4, 2, "4->2")):
            outputs, counters, _ = _run(
                AGG_SCHEDULE, workers=start, resizes={6: target}
            )
            assert outputs == oracle, f"resize {label} diverged"
            assert counters["migrations"] == 1
            assert counters["migration_steps"] == target
            assert not counters["migration_active"]
            assert counters["migration_records_buffered"] > 0, (
                "ingest must have overlapped the migration"
            )

    def test_chained_resizes_preserve_outputs(self):
        oracle, _, _ = _run(AGG_SCHEDULE)
        outputs, counters, _ = _run(
            AGG_SCHEDULE, workers=2, resizes={5: 4, 14: 3}
        )
        assert outputs == oracle
        assert counters["migrations"] == 2

    def test_join_state_survives_resize(self):
        oracle, _, _ = _run(JOIN_SCHEDULE, join_data=True)
        assert oracle and any(oracle.values()), "join oracle must produce"
        outputs, _, _ = _run(
            JOIN_SCHEDULE, workers=2, resizes={6: 4}, join_data=True
        )
        assert outputs == oracle

    def test_kill_during_migration_recovers_exactly_once(self):
        oracle, _, _ = _run(AGG_SCHEDULE)
        outputs, counters, recovery = _run(
            AGG_SCHEDULE, workers=2, kill_mid_migration_at=10
        )
        assert recovery is not None
        assert recovery.replayed_elements > 0
        assert outputs == oracle, "kill mid-migration diverged"
        assert not counters["migration_active"]

    def test_resize_runs_are_deterministic(self):
        first = _run(AGG_SCHEDULE, workers=2, resizes={6: 4})[0]
        second = _run(AGG_SCHEDULE, workers=2, resizes={6: 4})[0]
        assert first == second

    def test_resize_validation(self):
        engine = ProcessAStreamEngine(
            EngineConfig(streams=STREAMS, parallelism=1), workers=2
        )
        try:
            with pytest.raises(ValueError):
                engine.begin_resize(0)
            engine.begin_resize(2)  # same size, no migration: a no-op
            assert not engine.migration_active
            assert engine.migration_counters()["migrations"] == 0
        finally:
            engine.shutdown()
