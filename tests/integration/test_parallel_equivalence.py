"""Process-sharded execution must be invisible in the output (ISSUE 3).

Full SC1/SC2 scenario runs are repeated on the process backend with 1,
2, and 4 workers and compared byte-for-byte (canonical result order)
against the in-process engine on the same schedule: hash-sharding keyed
state across worker processes plus the deterministic merge is a pure
re-encoding of the same computation.  The same must hold through a
SIGKILLed worker followed by checkpoint-restore + input-log replay
recovery, and repeated runs must be bit-identical (seeded determinism).
"""

import pytest

from repro.core.engine import AStreamEngine, EngineConfig
from repro.core.parallel_engine import ProcessAStreamEngine
from repro.core.qos import QoSMonitor
from repro.minispe.cluster import ClusterSpec, SimulatedCluster
from repro.workloads.datagen import DataGenerator
from repro.workloads.driver import AStreamAdapter, Driver, DriverConfig
from repro.workloads.querygen import QueryGenerator
from repro.workloads.scenarios import sc1_schedule, sc2_schedule

STREAMS = ("A", "B")
WORKER_COUNTS = (1, 2, 4)
CONFIG = dict(input_rate_tps=100.0, duration_s=8.0, step_ms=250)


def _sc1():
    return sc1_schedule(
        QueryGenerator(streams=STREAMS, seed=33), 1, 4, kind="join"
    )


def _sc2():
    return sc2_schedule(
        QueryGenerator(streams=STREAMS, seed=33), 2, 3, 2, kind="agg"
    )


def _canonical(engine):
    """Per-query outputs in the deterministic cross-backend order."""
    return {
        query_id: [
            (output.timestamp, repr(output.value))
            for output in engine.canonical_results(query_id)
        ]
        for query_id in sorted(engine.result_counts())
    }


def _run(schedule, workers=None, batch_size=7):
    """Drive one scenario; ``workers=None`` runs the inline engine."""
    qos = QoSMonitor(sample_every=32)
    config = EngineConfig(streams=STREAMS, parallelism=1)
    if workers is None:
        engine = AStreamEngine(
            config,
            cluster=SimulatedCluster(ClusterSpec(nodes=4)),
            on_deliver=qos.on_deliver,
        )
    else:
        engine = ProcessAStreamEngine(
            config, on_deliver=qos.on_deliver, workers=workers
        )
    Driver(
        AStreamAdapter(engine),
        schedule,
        STREAMS,
        DriverConfig(batch_size=batch_size, **CONFIG),
        qos=qos,
    ).run()
    counts = engine.result_counts()
    outputs = _canonical(engine)
    engine.shutdown()
    return counts, outputs


class TestParallelEquivalence:
    @pytest.mark.parametrize("scenario", [_sc1, _sc2], ids=["sc1", "sc2"])
    def test_outputs_byte_equal_across_worker_counts(self, scenario):
        schedule = scenario()
        reference_counts, reference = _run(schedule)
        assert reference and any(reference.values())
        for workers in WORKER_COUNTS:
            counts, outputs = _run(schedule, workers=workers)
            assert counts == reference_counts, f"workers={workers}"
            assert set(outputs) == set(reference)
            for query_id in reference:
                assert outputs[query_id] == reference[query_id], (
                    f"workers={workers} diverged on {query_id}"
                )

    def test_single_record_batches_equal_too(self):
        # batch_size=1 exercises the ("push", ...) single-record wire
        # path instead of the partitioned ("batch", ...) path.
        schedule = _sc1()
        _, reference = _run(schedule, batch_size=1)
        _, outputs = _run(schedule, workers=2, batch_size=1)
        assert outputs == reference

    def test_process_runs_are_deterministic(self):
        schedule = _sc2()
        first = _run(schedule, workers=4)
        second = _run(schedule, workers=4)
        assert first == second


# ---------------------------------------------------------------------------
# Chaos: SIGKILL a shard worker mid-run, recover, compare to fault-free
# ---------------------------------------------------------------------------

CHAOS_STEPS = 24
CHAOS_STEP_MS = 250

# Built once: query ids carry a process-global counter, so comparison
# runs must share one schedule or identical queries get different ids.
CHAOS_SCHEDULE = sc1_schedule(
    QueryGenerator(streams=STREAMS, seed=77), 1, 4, kind="agg"
)


def _chaos_run(workers=None, kill_at_step=None):
    """Manually drive a run with periodic checkpoints and optional kill.

    The driver is bypassed so the kill lands at an exact point in the
    element sequence; both engines see the identical interleaving of
    submissions, records, watermarks, and checkpoint barriers.
    """
    config = EngineConfig(streams=STREAMS, parallelism=1, log_inputs=True)
    if workers is None:
        engine = AStreamEngine(config)
    else:
        engine = ProcessAStreamEngine(config, workers=workers)
    data = DataGenerator(seed=5)
    events = sorted(CHAOS_SCHEDULE.requests, key=lambda event: event.at_ms)
    index = 0
    recovery = None
    for step in range(CHAOS_STEPS):
        now = step * CHAOS_STEP_MS
        while index < len(events) and events[index].at_ms <= now:
            event = events[index]
            index += 1
            if event.kind == "create":
                engine.submit(event.query, now_ms=now)
            else:
                engine.stop(event.query_id, now_ms=now)
        engine.tick(now)
        for stream in STREAMS:
            for offset in range(25):
                engine.push(stream, now + offset * 10, data.next_tuple())
        engine.watermark(now)
        if step % 8 == 7:
            engine.checkpoint()
        if kill_at_step is not None and step == kill_at_step:
            engine.kill_worker(0)
            assert engine.alive_workers == workers - 1
            recovery = engine.recover()
            assert engine.alive_workers == workers
    engine.watermark(CHAOS_STEPS * CHAOS_STEP_MS + 10_000)
    if hasattr(engine, "drain"):
        engine.drain()
    outputs = _canonical(engine)
    engine.shutdown()
    return outputs, recovery


class TestWorkerKillRecovery:
    def test_kill_and_recover_is_exactly_once(self):
        oracle, _ = _chaos_run()
        assert oracle and any(oracle.values())
        for workers in (2, 4):
            clean, _ = _chaos_run(workers=workers)
            assert clean == oracle, f"workers={workers} clean run diverged"
            faulted, recovery = _chaos_run(workers=workers, kill_at_step=10)
            assert recovery is not None
            assert recovery.replayed_elements > 0
            assert faulted == oracle, (
                f"workers={workers} kill+recover diverged"
            )

    def test_chaos_runs_are_seed_deterministic(self):
        first = _chaos_run(workers=2, kill_at_step=10)[0]
        second = _chaos_run(workers=2, kill_at_step=10)[0]
        assert first == second
