"""Cross-engine equivalence: AStream vs the query-at-a-time baseline.

For queries created at time 0 with tumbling windows, creation-anchored
(AStream) and epoch-aligned (baseline) windows coincide, so both engines
must produce identical per-query result multisets — the strongest
correctness check: two completely different execution paths, one answer.
"""

from collections import Counter

from repro.baseline import BaselineDeploymentModel, QueryAtATimeEngine
from repro.core.engine import AStreamEngine, EngineConfig
from repro.core.query import (
    AggregationKind,
    AggregationQuery,
    AggregationSpec,
    Comparison,
    FieldPredicate,
    JoinQuery,
    TruePredicate,
    WindowSpec,
)
from repro.minispe.cluster import ClusterSpec, SimulatedCluster
from repro.workloads.datagen import DataGenerator


def _engines():
    astream = AStreamEngine(
        EngineConfig(streams=("A", "B"), parallelism=2),
        cluster=SimulatedCluster(ClusterSpec(nodes=4)),
    )
    baseline = QueryAtATimeEngine(
        cluster=SimulatedCluster(ClusterSpec(nodes=16)),
        deployment=BaselineDeploymentModel(),
        parallelism=1,
    )
    return astream, baseline


def _drive(engine, queries, is_astream: bool):
    for query in queries:
        engine.submit(query, now_ms=0)
    if is_astream:
        engine.flush_session(0)
    gen_a = DataGenerator(seed=21, key_max=5)
    gen_b = DataGenerator(seed=22, key_max=5)
    for ts in range(0, 6_000, 75):
        engine.push("A", ts, gen_a.next_tuple())
        engine.push("B", ts, gen_b.next_tuple())
    engine.watermark(12_000)


def _join_multiset(engine, query_id) -> Counter:
    counts: Counter = Counter()
    for output in engine.results(query_id):
        value = output.value
        if hasattr(value, "parts"):  # AStream JoinedTuple
            left, right = value.parts
        else:  # baseline JoinResult
            left, right = value.left, value.right
        counts[(value.key, left.fields, right.fields, output.timestamp)] += 1
    return counts


def _agg_multiset(engine, query_id) -> Counter:
    counts: Counter = Counter()
    for output in engine.results(query_id):
        result = output.value
        counts[
            (result.key, result.window.start, result.window.end, result.value)
        ] += 1
    return counts


def test_join_queries_agree():
    queries = [
        JoinQuery(
            left_stream="A", right_stream="B",
            left_predicate=TruePredicate(),
            right_predicate=TruePredicate(),
            window_spec=WindowSpec.tumbling(2_000), query_id="eq-j1",
        ),
        JoinQuery(
            left_stream="A", right_stream="B",
            left_predicate=FieldPredicate(0, Comparison.GE, 40),
            right_predicate=FieldPredicate(1, Comparison.LT, 60),
            window_spec=WindowSpec.tumbling(1_000), query_id="eq-j2",
        ),
    ]
    astream, baseline = _engines()
    _drive(astream, queries, is_astream=True)
    _drive(baseline, queries, is_astream=False)
    for query in queries:
        assert _join_multiset(astream, query.query_id) == _join_multiset(
            baseline, query.query_id
        ), query.query_id
        assert astream.result_count(query.query_id) > 0


def test_aggregation_queries_agree():
    queries = [
        AggregationQuery(
            stream="A", predicate=TruePredicate(),
            window_spec=WindowSpec.tumbling(1_000), query_id="eq-a1",
        ),
        AggregationQuery(
            stream="A",
            predicate=FieldPredicate(2, Comparison.LE, 50),
            window_spec=WindowSpec.tumbling(3_000),
            aggregation=AggregationSpec(AggregationKind.MAX, field_index=1),
            query_id="eq-a2",
        ),
    ]
    astream, baseline = _engines()
    _drive(astream, queries, is_astream=True)
    _drive(baseline, queries, is_astream=False)
    for query in queries:
        assert _agg_multiset(astream, query.query_id) == _agg_multiset(
            baseline, query.query_id
        ), query.query_id
        assert astream.result_count(query.query_id) > 0


def test_mixed_population_agrees():
    queries = [
        JoinQuery(
            left_stream="A", right_stream="B",
            left_predicate=FieldPredicate(0, Comparison.LT, 70),
            right_predicate=TruePredicate(),
            window_spec=WindowSpec.tumbling(2_000), query_id="mx-j",
        ),
        AggregationQuery(
            stream="B", predicate=TruePredicate(),
            window_spec=WindowSpec.tumbling(2_000), query_id="mx-a",
        ),
    ]
    astream, baseline = _engines()
    _drive(astream, queries, is_astream=True)
    _drive(baseline, queries, is_astream=False)
    assert _join_multiset(astream, "mx-j") == _join_multiset(baseline, "mx-j")
    assert _agg_multiset(astream, "mx-a") == _agg_multiset(baseline, "mx-a")


from hypothesis import HealthCheck, given, settings, strategies as st


@st.composite
def _tumbling_populations(draw):
    """Random mixed query populations with tumbling windows at t=0
    (the regime where both engines' window semantics coincide)."""
    population = []
    for index in range(draw(st.integers(1, 4))):
        kind = draw(st.sampled_from(["join", "agg"]))
        length = draw(st.integers(1, 3)) * 1_000
        field_index = draw(st.integers(0, 4))
        op = draw(st.sampled_from([Comparison.LT, Comparison.GE]))
        constant = draw(st.integers(0, 100))
        population.append((index, kind, length, field_index, op, constant))
    return population


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(_tumbling_populations(), st.integers(0, 2**16))
def test_random_populations_agree_across_engines(population, data_seed):
    import itertools

    run_tag = next(_tag_counter)
    queries = []
    for index, kind, length, field_index, op, constant in population:
        name = f"hx-{run_tag}-{index}"
        if kind == "join":
            queries.append(
                JoinQuery(
                    left_stream="A", right_stream="B",
                    left_predicate=FieldPredicate(field_index, op, constant),
                    right_predicate=TruePredicate(),
                    window_spec=WindowSpec.tumbling(length),
                    query_id=name,
                )
            )
        else:
            queries.append(
                AggregationQuery(
                    stream="A",
                    predicate=FieldPredicate(field_index, op, constant),
                    window_spec=WindowSpec.tumbling(length),
                    query_id=name,
                )
            )

    def drive(engine, is_astream):
        for query in queries:
            engine.submit(query, now_ms=0)
        if is_astream:
            engine.flush_session(0)
        gen_a = DataGenerator(seed=data_seed, key_max=4)
        gen_b = DataGenerator(seed=data_seed + 1, key_max=4)
        for ts in range(0, 3_000, 130):
            engine.push("A", ts, gen_a.next_tuple())
            engine.push("B", ts, gen_b.next_tuple())
        engine.watermark(12_000)

    astream, baseline = _engines()
    drive(astream, True)
    drive(baseline, False)
    for query in queries:
        if isinstance(query, JoinQuery):
            assert _join_multiset(astream, query.query_id) == _join_multiset(
                baseline, query.query_id
            ), query.query_id
        else:
            assert _agg_multiset(astream, query.query_id) == _agg_multiset(
                baseline, query.query_id
            ), query.query_id


import itertools as _itertools

_tag_counter = _itertools.count()
