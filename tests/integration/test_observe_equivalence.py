"""Telemetry must be invisible in the output (ISSUE 4 acceptance).

Observe mode samples spans, fills gauges, and ships worker deltas on
ack frames — but never touches record payloads, keys, routing, or
ordering.  SC1/SC2 runs with ``observe=True`` must therefore be
byte-equal to observe-off runs on BOTH backends, while still producing
a non-trivial telemetry snapshot: per-operator latency breakdown
inline, per-shard operator stats and straggler skew on the process
backend, and an ordered control-plane event log that survives a worker
SIGKILL + recovery.
"""

import pytest

from repro.core.engine import AStreamEngine, EngineConfig
from repro.core.parallel_engine import ProcessAStreamEngine
from repro.core.qos import QoSMonitor
from repro.minispe.cluster import ClusterSpec, SimulatedCluster
from repro.obs.tracing import breakdown_from_snapshot
from repro.workloads.datagen import DataGenerator
from repro.workloads.driver import AStreamAdapter, Driver, DriverConfig
from repro.workloads.querygen import QueryGenerator
from repro.workloads.scenarios import sc1_schedule, sc2_schedule

STREAMS = ("A", "B")
CONFIG = dict(input_rate_tps=100.0, duration_s=6.0, step_ms=250)


def _sc1():
    return sc1_schedule(
        QueryGenerator(streams=STREAMS, seed=41), 1, 4, kind="join"
    )


def _sc2():
    return sc2_schedule(
        QueryGenerator(streams=STREAMS, seed=41), 2, 3, 2, kind="agg"
    )


def _canonical(engine):
    return {
        query_id: [
            (output.timestamp, repr(output.value))
            for output in engine.canonical_results(query_id)
        ]
        for query_id in sorted(engine.result_counts())
    }


def _run(schedule, workers=None, observe=False):
    """Drive one scenario; returns (outputs, obs snapshot or None)."""
    qos = QoSMonitor(sample_every=32)
    config = EngineConfig(
        streams=STREAMS,
        parallelism=1,
        observe=observe,
        obs_sample_every=8,
    )
    if workers is None:
        engine = AStreamEngine(
            config,
            cluster=SimulatedCluster(ClusterSpec(nodes=4)),
            on_deliver=qos.on_deliver,
        )
    else:
        engine = ProcessAStreamEngine(
            config, on_deliver=qos.on_deliver, workers=workers
        )
    Driver(
        AStreamAdapter(engine),
        schedule,
        STREAMS,
        DriverConfig(batch_size=7, **CONFIG),
        qos=qos,
    ).run()
    outputs = _canonical(engine)
    snapshot = engine.obs_snapshot() if observe else None
    engine.shutdown()
    return outputs, snapshot


class TestObserveInvisible:
    @pytest.mark.parametrize("scenario", [_sc1, _sc2], ids=["sc1", "sc2"])
    @pytest.mark.parametrize("workers", [None, 2], ids=["inline", "process"])
    def test_outputs_byte_equal_observe_on_vs_off(self, scenario, workers):
        schedule = scenario()
        reference, _ = _run(schedule, workers=workers, observe=False)
        assert reference and any(reference.values())
        observed, snapshot = _run(schedule, workers=workers, observe=True)
        assert observed == reference
        # The run was actually observed, not silently disabled.
        assert snapshot["events_total"] > 0
        breakdown = breakdown_from_snapshot(snapshot["trace"])
        assert breakdown["sampled"] > 0


class TestInlineSnapshot:
    def test_breakdown_attributes_all_sampled_time(self):
        _, snapshot = _run(_sc1(), observe=True)
        breakdown = breakdown_from_snapshot(snapshot["trace"])
        # Acceptance: stage sums within 5% of end-to-end; by
        # construction they telescope exactly.
        assert breakdown["coverage"] == pytest.approx(1.0)
        assert any(
            stage.startswith("join:") or stage.startswith("agg:")
            for stage in breakdown["stages"]
        )


class TestProcessSnapshot:
    def test_per_shard_stats_and_straggler_skew(self):
        _, snapshot = _run(_sc1(), workers=4, observe=True)
        registry = snapshot["registry"]

        # Per-shard operator state stays addressable after the merge.
        shards_seen = {
            entry["labels"]["shard"]
            for entry in registry.values()
            if "shard" in entry["labels"] and "operator" in entry["labels"]
        }
        assert shards_seen == {"0", "1", "2", "3"}

        # Shard balance gauges: one record count per shard, plus skew.
        records = {
            entry["labels"]["shard"]: entry["value"]
            for entry in registry.values()
            if entry["name"] == "shard_records"
        }
        assert set(records) == {"0", "1", "2", "3"}
        assert sum(records.values()) > 0
        assert registry["straggler_skew"]["value"] >= 1.0

        # The raw per-shard snapshots ride along for the inspector.
        assert set(snapshot["shards"]) == {"0", "1", "2", "3"}

        # Worker traces merge with exact attribution.
        breakdown = breakdown_from_snapshot(snapshot["trace"])
        assert breakdown["sampled"] > 0
        assert breakdown["coverage"] == pytest.approx(1.0)


# ---------------------------------------------------------------------------
# Chaos: the event log stays ordered through SIGKILL + recovery
# ---------------------------------------------------------------------------

CHAOS_STEPS = 24
CHAOS_STEP_MS = 250

CHAOS_SCHEDULE = sc1_schedule(
    QueryGenerator(streams=STREAMS, seed=91), 1, 4, kind="agg"
)


def _chaos_run(workers=None, kill_at_step=None, observe=False):
    config = EngineConfig(
        streams=STREAMS, parallelism=1, log_inputs=True, observe=observe
    )
    if workers is None:
        engine = AStreamEngine(config)
    else:
        engine = ProcessAStreamEngine(config, workers=workers)
    data = DataGenerator(seed=5)
    events = sorted(CHAOS_SCHEDULE.requests, key=lambda event: event.at_ms)
    index = 0
    for step in range(CHAOS_STEPS):
        now = step * CHAOS_STEP_MS
        while index < len(events) and events[index].at_ms <= now:
            event = events[index]
            index += 1
            if event.kind == "create":
                engine.submit(event.query, now_ms=now)
            else:
                engine.stop(event.query_id, now_ms=now)
        engine.tick(now)
        for stream in STREAMS:
            for offset in range(25):
                engine.push(stream, now + offset * 10, data.next_tuple())
        engine.watermark(now)
        if step % 8 == 7:
            engine.checkpoint()
        if kill_at_step is not None and step == kill_at_step:
            engine.kill_worker(0)
            engine.recover()
    engine.watermark(CHAOS_STEPS * CHAOS_STEP_MS + 10_000)
    if hasattr(engine, "drain"):
        engine.drain()
    outputs = _canonical(engine)
    log = engine.obs.events.events() if observe else None
    engine.shutdown()
    return outputs, log


class TestChaosEventLog:
    def test_event_log_ordered_through_kill_and_recover(self):
        oracle, _ = _chaos_run()
        faulted, log = _chaos_run(workers=2, kill_at_step=10, observe=True)
        assert faulted == oracle  # telemetry doesn't break exactly-once

        # Sequence numbers are strictly increasing (one merged history).
        seqs = [event["seq"] for event in log]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)

        kinds = [event["kind"] for event in log]
        assert "changelog" in kinds

        # The checkpoint that the recovery restored from precedes the
        # restore event in the log, and the replay actually happened.
        checkpoint_seq = next(
            e["seq"] for e in log if e["kind"] == "checkpoint"
        )
        restore = next(e for e in log if e["kind"] == "restore")
        assert checkpoint_seq < restore["seq"]
        assert restore["replayed_elements"] > 0

        # Worker events absorbed into the coordinator log carry their
        # source shard and origin sequence.
        absorbed = [event for event in log if "shard" in event]
        assert absorbed
        assert all("src_seq" in event for event in absorbed)

        # Workers keep shipping telemetry after the pool was rebuilt:
        # some absorbed event arrives after the restore.
        assert any(
            event["seq"] > restore["seq"] for event in absorbed
        )
