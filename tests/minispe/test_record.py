"""Tests for the stream element model."""

import pytest

from repro.minispe.record import (
    ChangelogMarker,
    CheckpointBarrier,
    Record,
    Watermark,
    is_control,
    is_data,
)


class TestRecord:
    def test_basic_fields(self):
        record = Record(timestamp=5, value="v", key=3)
        assert record.timestamp == 5
        assert record.value == "v"
        assert record.key == 3
        assert record.tags == {}

    def test_positional_construction_matches_hot_path_usage(self):
        record = Record(5, "v", 3, {"qs": 1})
        assert record.tags["qs"] == 1

    def test_with_tag_copies(self):
        record = Record(timestamp=1, value="v")
        tagged = record.with_tag("qs", 0b101)
        assert tagged.tags == {"qs": 0b101}
        assert record.tags == {}
        assert tagged.timestamp == record.timestamp

    def test_with_tag_does_not_share_dict(self):
        record = Record(timestamp=1, value="v", tags={"a": 1})
        tagged = record.with_tag("b", 2)
        assert record.tags == {"a": 1}
        assert tagged.tags == {"a": 1, "b": 2}

    def test_default_tags_are_not_shared_mutable_state(self):
        first = Record(timestamp=1, value="x")
        second = Record(timestamp=2, value="y")
        # Records with default tags share one immutable-by-convention
        # empty dict; with_tag must not leak writes between them.
        assert first.with_tag("k", 1).tags != second.tags

    def test_equality_ignores_tags(self):
        left = Record(timestamp=1, value="v", key=2, tags={"qs": 1})
        right = Record(timestamp=1, value="v", key=2, tags={"qs": 9})
        assert left == right
        assert hash(left) == hash(right)

    def test_inequality(self):
        assert Record(timestamp=1, value="v") != Record(timestamp=2, value="v")
        assert Record(timestamp=1, value="v") != Record(timestamp=1, value="w")


class TestControlElements:
    def test_watermark_frozen(self):
        watermark = Watermark(timestamp=10)
        with pytest.raises(Exception):
            watermark.timestamp = 20

    def test_marker_carries_changelog(self):
        marker = ChangelogMarker(timestamp=3, changelog="payload")
        assert marker.changelog == "payload"

    def test_barrier_checkpoint_id(self):
        barrier = CheckpointBarrier(timestamp=0, checkpoint_id=7)
        assert barrier.checkpoint_id == 7

    def test_is_data_is_control(self):
        assert is_data(Record(timestamp=0, value=None))
        assert not is_control(Record(timestamp=0, value=None))
        for element in (
            Watermark(timestamp=0),
            ChangelogMarker(timestamp=0),
            CheckpointBarrier(timestamp=0),
        ):
            assert is_control(element)
            assert not is_data(element)
