"""Tests for the basic operator framework."""

from typing import List

import pytest

from repro.minispe.operators import (
    FilterOperator,
    FlatMapOperator,
    KeyByOperator,
    MapOperator,
    Operator,
    OperatorContext,
    TwoInputOperator,
)
from repro.minispe.record import ChangelogMarker, Record, Watermark


def _collecting(operator: Operator) -> List:
    out: List = []
    operator.set_collector(out.append)
    operator.open(OperatorContext(operator.name, 0, 1))
    return out


class TestOperatorBase:
    def test_emit_before_wiring_raises(self):
        operator = MapOperator(lambda v: v)
        with pytest.raises(RuntimeError, match="wired"):
            operator.output(Record(timestamp=0, value=1))

    def test_default_forwards_watermark_and_marker(self):
        class Passthrough(Operator):
            def process(self, record):
                pass

        operator = Passthrough()
        out = _collecting(operator)
        operator.on_watermark(Watermark(timestamp=5))
        operator.on_marker(ChangelogMarker(timestamp=6))
        assert [element.timestamp for element in out] == [5, 6]

    def test_default_snapshot_is_none(self):
        operator = MapOperator(lambda v: v)
        assert operator.snapshot() is None
        operator.restore(None)  # no-op

    def test_two_input_process_rejected(self):
        class Join(TwoInputOperator):
            def process_left(self, record):
                pass

            def process_right(self, record):
                pass

        with pytest.raises(RuntimeError):
            Join().process(Record(timestamp=0, value=1))


class TestMapOperator:
    def test_transforms_value_preserves_metadata(self):
        operator = MapOperator(lambda v: v * 10)
        out = _collecting(operator)
        operator.process(Record(timestamp=7, value=3, key="k", tags={"qs": 1}))
        assert out[0].value == 30
        assert out[0].timestamp == 7
        assert out[0].key == "k"
        assert out[0].tags == {"qs": 1}


class TestFilterOperator:
    def test_keeps_matching(self):
        operator = FilterOperator(lambda v: v > 2)
        out = _collecting(operator)
        for value in range(5):
            operator.process(Record(timestamp=value, value=value))
        assert [record.value for record in out] == [3, 4]


class TestKeyByOperator:
    def test_rekeys(self):
        operator = KeyByOperator(lambda v: v % 2)
        out = _collecting(operator)
        operator.process(Record(timestamp=0, value=5))
        assert out[0].key == 1


class TestFlatMapOperator:
    def test_expands(self):
        operator = FlatMapOperator(lambda v: [v, v + 1])
        out = _collecting(operator)
        operator.process(Record(timestamp=0, value=10, key="k"))
        assert [record.value for record in out] == [10, 11]
        assert all(record.key == "k" for record in out)

    def test_empty_expansion(self):
        operator = FlatMapOperator(lambda v: [])
        out = _collecting(operator)
        operator.process(Record(timestamp=0, value=10))
        assert out == []


def test_operator_context_repr():
    context = OperatorContext("op", 1, 4)
    assert "op" in repr(context)
    assert "1/4" in repr(context)
