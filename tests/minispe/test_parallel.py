"""Tests for the process-parallel shard pool and sharded runtime.

These cover the transport layer with small toy programs: frame
batching and acks, the delivery-sample cap, worker error propagation,
chaos kills, and the hash-sharded routing / aligned snapshot collection
of :class:`~repro.minispe.parallel.ShardedRuntime`.  Byte-equality of
the full AStream engine across backends lives in
``tests/integration/test_parallel_equivalence.py``.
"""

import pytest

from repro.minispe.checkpoint import (
    SHARD_STATE_KEY,
    pack_shard_states,
    unpack_shard_states,
)
from repro.minispe.parallel import (
    ACK_DELIVERY_CAP,
    ProcessShardPool,
    ShardProgram,
    ShardWorkerError,
    ShardedRuntime,
)
from repro.minispe.record import Record, RecordBatch, Watermark
from repro.minispe.runtime import stable_hash


class EchoProgram(ShardProgram):
    """Toy program: accumulates values, emits deliveries, can raise."""

    def __init__(self, shard_index, shard_count):
        self.shard_index = shard_index
        self.shard_count = shard_count
        self.values = []
        self._deliveries = []

    def apply(self, op):
        kind = op[0]
        if kind == "add":
            self.values.append(op[1])
            return None
        if kind == "deliver":
            self._deliveries.extend(("q", i) for i in range(op[1]))
            return None
        if kind == "values":
            return list(self.values)
        if kind == "ident":
            return (self.shard_index, self.shard_count)
        if kind == "boom":
            raise RuntimeError("boom op")
        raise ValueError(f"unknown op {kind!r}")

    def take_deliveries(self, limit=None):
        if limit is None or limit >= len(self._deliveries):
            deliveries = self._deliveries
            self._deliveries = []
            return deliveries
        deliveries = self._deliveries[:limit]
        del self._deliveries[:limit]
        return deliveries


class KeyCollector(ShardProgram):
    """Toy program understanding the ShardedRuntime wire ops."""

    def __init__(self, shard_index, shard_count):
        self.shard_index = shard_index
        self.shard_count = shard_count
        self.keys = []
        self.watermarks = 0

    def apply(self, op):
        kind = op[0]
        if kind == "push":
            element = op[2]
            if isinstance(element, Record):
                self.keys.append(element.key)
            elif isinstance(element, Watermark):
                self.watermarks += 1
            return None
        if kind == "batch":
            self.keys.extend(record.key for record in op[2])
            return None
        if kind == "keys":
            return list(self.keys)
        if kind == "watermarks":
            return self.watermarks
        if kind == "snapshot":
            if not self.keys:
                return {"runtime": None}
            return {"runtime": {"keys": list(self.keys)}}
        if kind == "restore":
            self.keys = list(op[1]["runtime"]["keys"])
            return True
        if kind == "stats":
            return {"records_processed": {"collector": len(self.keys)}}
        raise ValueError(f"unknown op {kind!r}")


@pytest.fixture
def pool():
    pool = ProcessShardPool(2, EchoProgram, frame_records=4)
    yield pool
    pool.terminate()


class TestProcessShardPool:
    def test_sync_reaches_every_shard_in_order(self, pool):
        assert pool.sync(("ident",)) == [(0, 2), (1, 2)]

    def test_submitted_ops_apply_in_fifo_order(self, pool):
        for value in range(10):
            pool.submit(value % 2, ("add", value))
        values = pool.sync(("values",))
        assert values[0] == [0, 2, 4, 6, 8]
        assert values[1] == [1, 3, 5, 7, 9]

    def test_broadcast_hits_all_shards(self, pool):
        pool.broadcast(("add", "x"))
        assert pool.sync(("values",)) == [["x"], ["x"]]

    def test_frames_flush_at_frame_records(self, pool):
        # 4 records fill a frame; the 4th submission flushes without an
        # explicit drain, so the values arrive even before sync's flush.
        for value in range(4):
            pool.submit(0, ("add", value))
        handle = pool._handles[0]
        assert handle.buffer == []  # auto-flushed
        assert pool.sync(("values",))[0] == [0, 1, 2, 3]

    def test_regular_acks_cap_deliveries(self):
        received = []
        pool = ProcessShardPool(
            1, EchoProgram, on_deliver=lambda q, t: received.append((q, t))
        )
        try:
            pool.submit(0, ("deliver", 3 * ACK_DELIVERY_CAP))
            pool.drain()
            # One regular ack ships at most the cap; the backlog stays
            # on the worker (deadlock avoidance: acks must stay far
            # below the pipe buffer while frames are still flowing).
            assert len(received) == ACK_DELIVERY_CAP
            pool.sync(("values",))
            # Synchronous acks flush the whole backlog.
            assert len(received) == 3 * ACK_DELIVERY_CAP
        finally:
            pool.terminate()

    def test_worker_exception_raises_shard_error(self, pool):
        pool.submit(1, ("boom",))
        with pytest.raises(ShardWorkerError) as info:
            pool.drain()
        assert info.value.shard == 1
        assert "boom" in str(info.value)
        # The worker survives an op exception and keeps serving.
        assert pool.sync(("ident",)) == [(0, 2), (1, 2)]

    def test_kill_marks_worker_down(self, pool):
        pool.kill(0)
        assert pool.alive_workers == 1
        with pytest.raises(ShardWorkerError):
            pool.submit(0, ("add", 1))
            pool.drain()
        # The surviving shard still answers.
        assert pool.sync_one(1, ("ident",)) == (1, 2)

    def test_close_is_graceful_and_idempotent(self):
        pool = ProcessShardPool(2, EchoProgram)
        pool.submit(0, ("add", 1))
        pool.close()
        pool.close()
        assert all(not h.process.is_alive() for h in pool._handles)

    def test_validation(self):
        with pytest.raises(ValueError):
            ProcessShardPool(0, EchoProgram)
        with pytest.raises(ValueError):
            ProcessShardPool(1, EchoProgram, frame_records=0)
        with pytest.raises(ValueError):
            ProcessShardPool(1, EchoProgram, max_in_flight=0)


@pytest.fixture
def runtime():
    pool = ProcessShardPool(3, KeyCollector, frame_records=8)
    runtime = ShardedRuntime(pool)
    yield runtime
    pool.terminate()


class TestShardedRuntime:
    KEYS = list(range(17)) + ["alpha", "beta", "gamma"]

    def test_records_route_by_stable_hash(self, runtime):
        for key in self.KEYS:
            runtime.push("s", Record(timestamp=1, value="v", key=key))
        per_shard = runtime.pool.sync(("keys",))
        for shard, keys in enumerate(per_shard):
            assert keys == [
                key for key in self.KEYS if stable_hash(key) % 3 == shard
            ]

    def test_batch_partitioning_matches_single_pushes(self, runtime):
        records = [
            Record(timestamp=1, value="v", key=key) for key in self.KEYS
        ]
        runtime.push("s", RecordBatch(records))
        per_shard = runtime.pool.sync(("keys",))
        for shard, keys in enumerate(per_shard):
            assert keys == [
                key for key in self.KEYS if stable_hash(key) % 3 == shard
            ]

    def test_control_elements_broadcast(self, runtime):
        runtime.push("s", Watermark(timestamp=5))
        runtime.push("s", Watermark(timestamp=6))
        assert runtime.pool.sync(("watermarks",)) == [2, 2, 2]

    def test_records_processed_sums_shards(self, runtime):
        for key in range(6):
            runtime.push("s", Record(timestamp=1, value="v", key=key))
        assert runtime.records_processed() == {"collector": 6}

    def test_checkpoint_roundtrip(self, runtime):
        for key in self.KEYS:
            runtime.push("s", Record(timestamp=1, value="v", key=key))
        snapshot = runtime.completed_checkpoint(1)
        assert snapshot is not None
        before = runtime.pool.sync(("keys",))
        runtime.restore_checkpoint(snapshot)
        assert runtime.pool.sync(("keys",)) == before

    def test_incomplete_checkpoint_returns_none(self, runtime):
        # Shard key-sets are empty -> every shard reports no snapshot.
        assert runtime.completed_checkpoint(1) is None

    def test_restore_validates_shape(self, runtime):
        with pytest.raises(ValueError):
            runtime.restore_checkpoint({"not": "sharded"})
        with pytest.raises(ValueError):
            runtime.restore_checkpoint(pack_shard_states([{"runtime": {}}]))


class TestShardStatePacking:
    def test_roundtrip(self):
        states = [{"runtime": 1}, {"runtime": 2}]
        packed = pack_shard_states(states)
        assert SHARD_STATE_KEY in packed
        assert unpack_shard_states(packed) == states

    def test_unpack_rejects_other_snapshots(self):
        assert unpack_shard_states({"operators": {}}) is None
        assert unpack_shard_states("blob") is None
        assert unpack_shard_states(None) is None
