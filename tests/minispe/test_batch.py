"""Tests for the micro-batch data path (RecordBatch end to end).

The invariant under test everywhere: batching is an *encoding* of the
same element sequence, so any observable behaviour — per-channel record
order, watermark/marker alignment, operator outputs, fault-hook firings
— must be identical to pushing the records one by one.
"""

from typing import List

import pytest

from repro.minispe.graph import JobGraph, Partitioning
from repro.minispe.operators import (
    FilterOperator,
    FlatMapOperator,
    KeyByOperator,
    MapOperator,
    Operator,
)
from repro.minispe.record import Record, RecordBatch, Watermark, is_data
from repro.minispe.runtime import JobRuntime, stable_hash
from repro.minispe.sinks import CollectSink, CountingSink
from repro.minispe.sources import batched


def _records(count: int, key_mod: int = 3) -> List[Record]:
    return [
        Record(timestamp=i * 10, value=i, key=i % key_mod)
        for i in range(count)
    ]


class _BatchProbe(Operator):
    """Observes how elements arrive: batched or one by one."""

    def __init__(self):
        super().__init__("batch_probe")
        self.single: List[Record] = []
        self.batches: List[List[Record]] = []
        self.received: List[Record] = []
        """All records in arrival order, however they were delivered."""
        self.watermarks: List[int] = []

    def process(self, record):
        self.single.append(record)
        self.received.append(record)

    def process_batch(self, records):
        self.batches.append(list(records))
        self.received.extend(records)

    def on_watermark(self, watermark):
        self.watermarks.append(watermark.timestamp)


def _probe_runtime(parallelism: int = 1, partitioning=Partitioning.HASH):
    probes: List[_BatchProbe] = []

    def make_probe():
        probe = _BatchProbe()
        probes.append(probe)
        return probe

    graph = (
        JobGraph()
        .add_source("src")
        .add_operator("probe", make_probe, parallelism=parallelism)
        .connect("src", "probe", partitioning)
    )
    return JobRuntime(graph), probes


class TestRecordBatch:
    def test_basics(self):
        records = _records(3)
        batch = RecordBatch(records)
        assert len(batch) == 3
        assert list(batch) == records
        assert batch.timestamp == records[0].timestamp
        assert batch == RecordBatch(list(records))
        assert batch != RecordBatch(records[:2])
        assert is_data(batch)

    def test_empty_batch_timestamp(self):
        assert RecordBatch([]).timestamp == -1


class TestPushMany:
    def test_groups_records_into_batches(self):
        runtime, probes = _probe_runtime()
        count = runtime.push_many("src", _records(10), batch_size=4)
        assert count == 10
        assert [len(b) for b in probes[0].batches] == [4, 4, 2]
        assert probes[0].single == []

    def test_control_elements_flush_pending_batch(self):
        runtime, probes = _probe_runtime()
        records = _records(5)
        elements = records[:3] + [Watermark(timestamp=100)] + records[3:]
        runtime.push_many("src", elements, batch_size=10)
        probe = probes[0]
        # The watermark split the run of records exactly where it stood.
        assert [len(b) for b in probe.batches] == [3, 2]
        assert probe.watermarks == [100]
        flat = [r for b in probe.batches for r in b]
        assert flat == records

    def test_flattens_incoming_record_batches(self):
        runtime, probes = _probe_runtime()
        records = _records(6)
        runtime.push_many(
            "src",
            [RecordBatch(records[:4]), RecordBatch(records[4:])],
            batch_size=3,
        )
        flat = [r for b in probes[0].batches for r in b]
        assert flat == records
        assert all(len(b) <= 4 for b in probes[0].batches)

    def test_rejects_non_source_and_bad_batch_size(self):
        runtime, _ = _probe_runtime()
        with pytest.raises(KeyError):
            runtime.push_many("probe", _records(1))
        with pytest.raises(ValueError):
            runtime.push_many("src", _records(1), batch_size=0)


class TestBatchPartitioning:
    @pytest.mark.parametrize(
        "partitioning",
        [Partitioning.HASH, Partitioning.REBALANCE, Partitioning.BROADCAST],
    )
    def test_same_per_instance_sequences_as_per_record_path(
        self, partitioning
    ):
        records = _records(40, key_mod=7)

        runtime_a, probes_a = _probe_runtime(4, partitioning)
        for record in records:
            runtime_a.push("src", record)

        runtime_b, probes_b = _probe_runtime(4, partitioning)
        runtime_b.push_many("src", records, batch_size=8)

        for one_by_one, as_batches in zip(probes_a, probes_b):
            # Per-channel record order is the guarantee: each instance
            # sees exactly the records, in exactly the order, of the
            # per-record run — regardless of sub-batch boundaries.
            assert as_batches.received == one_by_one.received

    def test_rebalance_counter_continues_across_batches(self):
        records = _records(6, key_mod=2)
        runtime, probes = _probe_runtime(2, Partitioning.REBALANCE)
        runtime.push_many("src", records[:3], batch_size=10)
        runtime.push_many("src", records[3:], batch_size=10)
        assert [len(probe.received) for probe in probes] == [3, 3]

    def test_hash_batch_respects_stable_hash(self):
        records = _records(20, key_mod=5)
        runtime, probes = _probe_runtime(4, Partitioning.HASH)
        runtime.push_many("src", records, batch_size=20)
        for index, probe in enumerate(probes):
            for record in probe.received:
                assert stable_hash(record.key) % 4 == index


class TestVectorizedOperators:
    def _pipeline(self, make_operator):
        sink = CollectSink()
        graph = (
            JobGraph()
            .add_source("src")
            .add_operator("op", make_operator)
            .add_operator("sink", lambda: sink)
            .connect("src", "op", Partitioning.FORWARD)
            .connect("op", "sink", Partitioning.FORWARD)
        )
        return JobRuntime(graph), sink

    @pytest.mark.parametrize(
        "make_operator",
        [
            lambda: MapOperator(lambda v: v * 2),
            lambda: FilterOperator(lambda v: v % 3 == 0),
            lambda: KeyByOperator(lambda v: v % 2),
            lambda: FlatMapOperator(lambda v: [v, -v] if v % 2 else []),
        ],
        ids=["map", "filter", "key_by", "flat_map"],
    )
    def test_batch_output_equals_per_record_output(self, make_operator):
        records = _records(30)

        runtime_a, sink_a = self._pipeline(make_operator)
        for record in records:
            runtime_a.push("src", record)

        runtime_b, sink_b = self._pipeline(make_operator)
        runtime_b.push_many("src", records, batch_size=7)

        assert sink_b.collected == sink_a.collected

    def test_counting_sink_counts_batches(self):
        sink = CountingSink()
        graph = (
            JobGraph()
            .add_source("src")
            .add_operator("sink", lambda: sink)
            .connect("src", "sink", Partitioning.FORWARD)
        )
        JobRuntime(graph).push_many("src", _records(11), batch_size=4)
        assert sink.count == 11


class TestFaultHooksInsideBatches:
    def test_channel_hook_fires_per_record(self):
        records = _records(6)
        runtime, probes = _probe_runtime()
        seen: List[int] = []

        def channel_hook(edge, from_index, record):
            seen.append(record.value)
            if record.value == 1:
                return 0  # drop
            if record.value == 4:
                return 2  # duplicate
            return 1

        runtime.set_fault_hooks(channel_hook=channel_hook)
        runtime.push_many("src", records, batch_size=6)
        assert seen == [0, 1, 2, 3, 4, 5]
        assert [r.value for r in probes[0].received] == [0, 2, 3, 4, 4, 5]

    def test_deliver_hook_degrades_batch_to_per_record(self):
        records = _records(5)
        runtime, probes = _probe_runtime()

        class Boom(RuntimeError):
            pass

        def deliver_hook(vertex, index, record):
            if record.value == 3:
                raise Boom()

        runtime.set_fault_hooks(deliver_hook=deliver_hook)
        with pytest.raises(Boom):
            runtime.push_many("src", records, batch_size=5)
        # The hook fired per record: everything before the faulted record
        # was processed one at a time, nothing after it was.
        assert [r.value for r in probes[0].single] == [0, 1, 2]
        assert probes[0].batches == []


class TestBatchedHelper:
    def test_groups_and_flushes_on_controls(self):
        records = _records(5)
        elements = records[:3] + [Watermark(timestamp=40)] + records[3:]
        out = list(batched(elements, batch_size=2))
        assert [type(e).__name__ for e in out] == [
            "RecordBatch", "RecordBatch", "Watermark", "RecordBatch",
        ]
        assert [len(e) for e in out if isinstance(e, RecordBatch)] == [2, 1, 2]
        flat = [
            r for e in out if isinstance(e, RecordBatch) for r in e.records
        ]
        assert flat == records

    def test_flattens_and_regroups_batches(self):
        records = _records(7)
        out = list(batched([RecordBatch(records)], batch_size=3))
        assert [len(e) for e in out] == [3, 3, 1]

    def test_rejects_bad_batch_size(self):
        with pytest.raises(ValueError):
            list(batched([], batch_size=0))
