"""Tests and property tests for window assigners, triggers, evictors."""

import pytest
from hypothesis import given, strategies as st

from repro.minispe.record import Record, Watermark
from repro.minispe.windows import (
    CountTrigger,
    EventTimeTrigger,
    SessionWindows,
    SlidingWindows,
    TimeEvictor,
    TumblingWindows,
    Window,
    merge_session_windows,
)


class TestWindow:
    def test_contains(self):
        window = Window(0, 10)
        assert window.contains(0)
        assert window.contains(9)
        assert not window.contains(10)

    def test_empty_window_rejected(self):
        with pytest.raises(ValueError):
            Window(5, 5)

    def test_intersects(self):
        assert Window(0, 10).intersects(Window(9, 20))
        assert not Window(0, 10).intersects(Window(10, 20))

    def test_length_and_max_timestamp(self):
        window = Window(100, 250)
        assert window.length == 150
        assert window.max_timestamp() == 249

    def test_ordering(self):
        assert Window(0, 5) < Window(1, 2)


class TestTumblingWindows:
    def test_alignment(self):
        assigner = TumblingWindows(1_000)
        assert assigner.assign(0) == [Window(0, 1_000)]
        assert assigner.assign(999) == [Window(0, 1_000)]
        assert assigner.assign(1_000) == [Window(1_000, 2_000)]

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            TumblingWindows(0)

    @given(st.integers(min_value=0, max_value=10**9), st.integers(1, 10_000))
    def test_exactly_one_window_containing_timestamp(self, ts, length):
        windows = TumblingWindows(length).assign(ts)
        assert len(windows) == 1
        assert windows[0].contains(ts)


class TestSlidingWindows:
    def test_overlap_count(self):
        assigner = SlidingWindows(3_000, 1_000)
        windows = assigner.assign(5_500)
        assert len(windows) == 3
        for window in windows:
            assert window.contains(5_500)

    def test_slide_larger_than_length_rejected(self):
        with pytest.raises(ValueError):
            SlidingWindows(1_000, 2_000)

    @given(
        st.integers(min_value=0, max_value=10**8),
        st.integers(1, 5_000),
        st.integers(1, 5_000),
    )
    def test_every_assigned_window_contains_timestamp(self, ts, length, slide):
        if slide > length:
            length, slide = slide, length
        assigner = SlidingWindows(length, slide)
        windows = assigner.assign(ts)
        assert windows, "a timestamp always belongs to at least one window"
        assert len(windows) == len(set(windows))
        for window in windows:
            assert window.contains(ts)
        # Count matches ceil(length / slide) up to boundary effects.
        assert len(windows) <= -(-length // slide)


class TestSessionWindows:
    def test_proto_window(self):
        assigner = SessionWindows(2_000)
        assert assigner.assign(500) == [Window(500, 2_500)]
        assert assigner.is_session()

    def test_merge_overlapping(self):
        merged = merge_session_windows(
            [Window(0, 10), Window(5, 20), Window(30, 40)]
        )
        assert merged == [Window(0, 20), Window(30, 40)]

    def test_merge_touching(self):
        merged = merge_session_windows([Window(0, 10), Window(10, 15)])
        assert merged == [Window(0, 15)]

    def test_merge_empty(self):
        assert merge_session_windows([]) == []

    @given(
        st.lists(
            st.tuples(st.integers(0, 1_000), st.integers(1, 100)), max_size=20
        )
    )
    def test_merge_produces_disjoint_sorted_cover(self, raw):
        windows = [Window(start, start + length) for start, length in raw]
        merged = merge_session_windows(windows)
        for earlier, later in zip(merged, merged[1:]):
            assert earlier.end < later.start
        # Every original window is covered by some merged window.
        for window in windows:
            assert any(
                merged_window.start <= window.start
                and window.end <= merged_window.end
                for merged_window in merged
            )


class TestTriggers:
    def test_event_time_trigger(self):
        trigger = EventTimeTrigger()
        window = Window(0, 1_000)
        assert not trigger.on_watermark(Watermark(timestamp=998), window)
        assert trigger.on_watermark(Watermark(timestamp=999), window)

    def test_count_trigger(self):
        trigger = CountTrigger(2)
        window = Window(0, 10)
        record = Record(timestamp=1, value=None)
        assert not trigger.on_element(record, window)
        assert trigger.on_element(record, window)
        # Counter resets after firing.
        assert not trigger.on_element(record, window)

    def test_count_trigger_validates(self):
        with pytest.raises(ValueError):
            CountTrigger(0)


class TestTimeEvictor:
    def test_evicts_old_elements(self):
        evictor = TimeEvictor(keep_ms=100)
        window = Window(0, 1_000)
        old = Record(timestamp=800, value="old")
        new = Record(timestamp=950, value="new")
        assert evictor.evict([old, new], window) == [new]
