"""Tests for the simulated cluster and deployment cost models."""

import pytest

from repro.minispe.cluster import (
    ClusterCapacityError,
    ClusterSpec,
    DeploymentCostModel,
    SimulatedCluster,
)


class TestClusterSpec:
    def test_paper_defaults(self):
        spec = ClusterSpec()
        assert spec.nodes == 4
        assert spec.cores_per_node == 16
        assert spec.slots == 64

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterSpec(nodes=0)
        with pytest.raises(ValueError):
            ClusterSpec(cores_per_node=0)


class TestSlotAccounting:
    def test_allocate_release(self):
        cluster = SimulatedCluster(ClusterSpec(nodes=1, cores_per_node=4))
        cluster.allocate("job1", 3)
        assert cluster.used_slots == 3
        assert cluster.free_slots == 1
        cluster.release("job1")
        assert cluster.free_slots == 4

    def test_capacity_error(self):
        cluster = SimulatedCluster(ClusterSpec(nodes=1, cores_per_node=4))
        with pytest.raises(ClusterCapacityError):
            cluster.allocate("big", 5)

    def test_duplicate_allocation_rejected(self):
        cluster = SimulatedCluster(ClusterSpec(nodes=1, cores_per_node=4))
        cluster.allocate("job", 1)
        with pytest.raises(ValueError):
            cluster.allocate("job", 1)

    def test_release_unknown_is_noop(self):
        SimulatedCluster().release("ghost")

    def test_deployed_jobs(self):
        cluster = SimulatedCluster()
        cluster.allocate("a", 2)
        assert cluster.deployed_jobs() == {"a": 2}


class TestPerformanceModel:
    def test_speedup_matches_paper_ratio(self):
        four = SimulatedCluster(ClusterSpec(nodes=4))
        eight = SimulatedCluster(ClusterSpec(nodes=8))
        assert four.speedup() == pytest.approx(1.0)
        # Paper's 4 -> 8 node throughput ratio is about sqrt(2).
        assert eight.speedup() == pytest.approx(2 ** 0.5)

    def test_parallelism_for(self):
        cluster = SimulatedCluster(ClusterSpec(nodes=8))
        assert cluster.parallelism_for() == 8
        assert cluster.parallelism_for(max_parallelism=4) == 4


class TestClusterModes:
    def test_modeled_is_the_default(self):
        assert SimulatedCluster().mode == "modeled"

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            SimulatedCluster(mode="threads")

    def test_process_mode_pins_speedup_to_one(self):
        # Real worker processes measure wall time directly; applying the
        # modelled scale-out on top would double-count parallelism.
        eight = SimulatedCluster(ClusterSpec(nodes=8), mode="process")
        assert eight.speedup() == pytest.approx(1.0)
        assert SimulatedCluster(
            ClusterSpec(nodes=8), mode="modeled"
        ).speedup() == pytest.approx(2 ** 0.5)

    def test_process_mode_keeps_slot_accounting(self):
        cluster = SimulatedCluster(
            ClusterSpec(nodes=1, cores_per_node=4), mode="process"
        )
        cluster.allocate("job", 3)
        assert cluster.free_slots == 1
        with pytest.raises(ClusterCapacityError):
            cluster.allocate("big", 2)
        cluster.release("job")
        assert cluster.free_slots == 4


class TestDeploymentCostModel:
    def test_cold_deploy_exceeds_redeploy(self):
        model = DeploymentCostModel()
        assert model.cold_deploy_ms(16, 4) > model.redeploy_ms(16, 4)

    def test_placement_parallel_across_nodes(self):
        model = DeploymentCostModel(per_instance_ms=10)
        one_node = model.redeploy_ms(8, 1)
        four_nodes = model.redeploy_ms(8, 4)
        assert one_node > four_nodes

    def test_changelog_cost_scales_with_changes(self):
        model = DeploymentCostModel(changelog_apply_ms=5)
        assert model.changelog_ms(1) == 5
        assert model.changelog_ms(10) == 50
        assert model.changelog_ms(0) == 5  # floor: applying is never free


class TestNodeFaults:
    def test_fail_and_restore_adjust_capacity(self):
        cluster = SimulatedCluster(ClusterSpec(nodes=4))
        assert cluster.fail_node(2)
        assert cluster.healthy_nodes == 3
        assert cluster.failed_nodes == frozenset({2})
        assert cluster.total_slots == 3 * cluster.spec.cores_per_node
        assert cluster.restore_node(2)
        assert cluster.healthy_nodes == 4
        assert cluster.failed_nodes == frozenset()

    def test_repeat_fail_and_restore_are_noops(self):
        cluster = SimulatedCluster(ClusterSpec(nodes=2))
        assert cluster.fail_node(0)
        assert not cluster.fail_node(0)  # already down
        assert cluster.restore_node(0)
        assert not cluster.restore_node(0)  # already up

    def test_node_index_validated(self):
        cluster = SimulatedCluster(ClusterSpec(nodes=2))
        with pytest.raises(ValueError, match="out of range"):
            cluster.fail_node(2)
        with pytest.raises(ValueError, match="out of range"):
            cluster.restore_node(-1)

    def test_allocations_survive_failures_free_slots_go_negative(self):
        cluster = SimulatedCluster(ClusterSpec(nodes=2, cores_per_node=4))
        cluster.allocate("job", 6)
        assert cluster.free_slots == 2
        cluster.fail_node(1)
        # Deployed instances keep their slots while degraded.
        assert cluster.used_slots == 6
        assert cluster.free_slots == -2
        cluster.restore_node(1)
        assert cluster.free_slots == 2

    def test_recovery_cost_grows_as_survivors_shrink(self):
        cluster = SimulatedCluster(ClusterSpec(nodes=4))
        full = cluster.recovery_cost_ms(8)
        cluster.fail_node(0)
        cluster.fail_node(1)
        degraded = cluster.recovery_cost_ms(8)
        assert degraded >= full  # fewer nodes to parallelise placement
        assert full > 0
