"""Tests for operator-chain fusion (ISSUE 7).

Covers the graph rewrite (:func:`fuse_chains` boundaries), the compiled
closure's record-for-record equivalence with the unfused chain —
including a Hypothesis property over random stateless chains — plus the
transparency guarantees: sub-operator trace spans, checkpoint/recovery,
and fault-injected (chaos) kill/recover over a fused graph.
"""

from typing import List

import pytest
from hypothesis import given, settings, strategies as st

from repro.minispe.checkpoint import CheckpointCoordinator
from repro.minispe.fuse import FusedOperator, fuse_chains
from repro.minispe.graph import JobGraph, Partitioning
from repro.minispe.operators import (
    FilterOperator,
    FlatMapOperator,
    KeyByOperator,
    MapOperator,
    Operator,
)
from repro.minispe.record import Record, RecordBatch, Watermark
from repro.minispe.runtime import JobRuntime
from repro.minispe.sinks import CollectSink
from repro.minispe.window_operators import WindowedAggregateOperator
from repro.minispe.windows import TumblingWindows
from repro.obs import Observability
from repro.obs.tracing import TraceCollector


def _chain_graph(sink_holder: List[CollectSink], fused: bool) -> JobGraph:
    def make_sink():
        sink = CollectSink()
        sink_holder.append(sink)
        return sink

    graph = (
        JobGraph("fusion_test")
        .add_source("src")
        .add_operator("map1", lambda: MapOperator(lambda v: v + 1, "map1"), fusible=True)
        .add_operator(
            "filter1",
            lambda: FilterOperator(lambda v: v % 2 == 0, "filter1"),
            fusible=True,
        )
        .add_operator(
            "key_by", lambda: KeyByOperator(lambda v: v % 3, "key_by"), fusible=True
        )
        .add_operator("sink", make_sink)
        .connect("src", "map1")
        .connect("map1", "filter1")
        .connect("filter1", "key_by")
        .connect("key_by", "sink", Partitioning.HASH)
    )
    return fuse_chains(graph) if fused else graph


class TestFuseChainsRewrite:
    def test_chain_collapses_to_one_vertex(self):
        graph = _chain_graph([], fused=True)
        assert "fused[map1+filter1+key_by]" in graph.vertices
        assert "map1" not in graph.vertices
        edges = {(e.source, e.target) for e in graph.edges}
        assert ("src", "fused[map1+filter1+key_by]") in edges
        assert ("fused[map1+filter1+key_by]", "sink") in edges
        assert len(graph.vertices) == 3

    def test_input_graph_not_modified(self):
        sinks: List[CollectSink] = []
        graph = _chain_graph(sinks, fused=False)
        before = (dict(graph.vertices), list(graph.edges))
        fuse_chains(graph)
        assert (graph.vertices, graph.edges) == before

    def test_non_fusible_vertex_breaks_chain(self):
        graph = (
            JobGraph()
            .add_source("src")
            .add_operator("m1", lambda: MapOperator(lambda v: v), fusible=True)
            .add_operator("stateful", lambda: MapOperator(lambda v: v))
            .add_operator("m2", lambda: MapOperator(lambda v: v), fusible=True)
            .add_operator("m3", lambda: MapOperator(lambda v: v), fusible=True)
            .connect("src", "m1")
            .connect("m1", "stateful")
            .connect("stateful", "m2")
            .connect("m2", "m3")
        )
        fused = fuse_chains(graph)
        # m1 alone cannot fuse; m2+m3 can.
        assert "m1" in fused.vertices
        assert "stateful" in fused.vertices
        assert "fused[m2+m3]" in fused.vertices

    def test_hash_edge_breaks_chain(self):
        graph = (
            JobGraph()
            .add_source("src")
            .add_operator("m1", lambda: MapOperator(lambda v: v), fusible=True)
            .add_operator("m2", lambda: MapOperator(lambda v: v), fusible=True)
            .connect("src", "m1")
            .connect("m1", "m2", Partitioning.HASH)
        )
        fused = fuse_chains(graph)
        assert set(fused.vertices) == {"src", "m1", "m2"}

    def test_fanout_breaks_chain(self):
        graph = (
            JobGraph()
            .add_source("src")
            .add_operator("m1", lambda: MapOperator(lambda v: v), fusible=True)
            .add_operator("m2", lambda: MapOperator(lambda v: v), fusible=True)
            .add_operator("m3", lambda: MapOperator(lambda v: v), fusible=True)
            .connect("src", "m1")
            .connect("m1", "m2")
            .connect("m1", "m3")
        )
        fused = fuse_chains(graph)
        assert set(fused.vertices) == {"src", "m1", "m2", "m3"}

    def test_parallelism_mismatch_breaks_chain(self):
        graph = (
            JobGraph()
            .add_source("src")
            .add_operator("m1", lambda: MapOperator(lambda v: v), 1, fusible=True)
            .add_operator("m2", lambda: MapOperator(lambda v: v), 2, fusible=True)
            .connect("src", "m1")
            .connect("m1", "m2", Partitioning.REBALANCE)
        )
        fused = fuse_chains(graph)
        assert set(fused.vertices) == {"src", "m1", "m2"}


class TestFusedEquivalence:
    def _run(self, fused: bool, elements) -> List[Record]:
        sinks: List[CollectSink] = []
        runtime = JobRuntime(_chain_graph(sinks, fused))
        for element in elements:
            runtime.push("src", element)
        runtime.push("src", Watermark(10_000))
        return [r for sink in sinks for r in sink.collected]

    def test_per_record_equivalence(self):
        records = [Record(i, i, i % 5) for i in range(50)]
        assert self._run(False, records) == self._run(True, records)

    def test_batched_equivalence(self):
        batches = [
            RecordBatch([Record(b * 10 + i, b * 10 + i, i) for i in range(8)])
            for b in range(6)
        ]
        unfused = self._run(False, batches)
        fused = self._run(True, batches)
        assert unfused == fused
        # keys are re-keyed by the chain's key_by in both modes
        assert all(r.key == r.value % 3 for r in fused)

    def test_flat_map_fans_out_in_chain(self):
        def graph(fused):
            sinks: List[CollectSink] = []

            def make_sink():
                sink = CollectSink()
                sinks.append(sink)
                return sink

            g = (
                JobGraph()
                .add_source("src")
                .add_operator(
                    "fm",
                    lambda: FlatMapOperator(lambda v: [v, -v], "fm"),
                    fusible=True,
                )
                .add_operator(
                    "f", lambda: FilterOperator(lambda v: v > 0, "f"), fusible=True
                )
                .add_operator("sink", make_sink)
                .connect("src", "fm")
                .connect("fm", "f")
                .connect("f", "sink")
            )
            return (fuse_chains(g) if fused else g), sinks

        outs = []
        for fused in (False, True):
            g, sinks = graph(fused)
            runtime = JobRuntime(g)
            runtime.push("src", RecordBatch([Record(i, i + 1) for i in range(10)]))
            outs.append([r for sink in sinks for r in sink.collected])
        assert outs[0] == outs[1]
        assert len(outs[0]) == 10  # negatives filtered

    OP_SPECS = st.lists(
        st.sampled_from(["inc", "double", "mod_filter", "pos_filter", "fan", "rekey"]),
        min_size=1,
        max_size=5,
    )

    @staticmethod
    def _op_for(spec: str, index: int) -> Operator:
        name = f"{spec}{index}"
        if spec == "inc":
            return MapOperator(lambda v: v + 1, name)
        if spec == "double":
            return MapOperator(lambda v: v * 2, name)
        if spec == "mod_filter":
            return FilterOperator(lambda v: v % 3 != 0, name)
        if spec == "pos_filter":
            return FilterOperator(lambda v: v > 0, name)
        if spec == "fan":
            return FlatMapOperator(lambda v: [v, v + 10], name)
        return KeyByOperator(lambda v: v % 4, name)

    @settings(max_examples=40, deadline=None)
    @given(
        specs=OP_SPECS,
        values=st.lists(st.integers(-50, 50), min_size=0, max_size=30),
    )
    def test_property_fused_equals_unfused(self, specs, values):
        """Any stateless chain produces identical output fused or not."""
        results = []
        for fused in (False, True):
            sinks: List[CollectSink] = []

            def make_sink():
                sink = CollectSink()
                sinks.append(sink)
                return sink

            graph = JobGraph().add_source("src")
            previous = "src"
            for index, spec in enumerate(specs):
                name = f"op{index}"
                graph.add_operator(
                    name,
                    lambda spec=spec, index=index: self._op_for(spec, index),
                    fusible=True,
                )
                graph.connect(previous, name)
                previous = name
            graph.add_operator("sink", make_sink)
            graph.connect(previous, "sink")
            if fused:
                graph = fuse_chains(graph)
                if len(specs) > 1:
                    assert any(name.startswith("fused[") for name in graph.vertices)
            runtime = JobRuntime(graph)
            runtime.push(
                "src",
                RecordBatch([Record(i, v, i % 2) for i, v in enumerate(values)]),
            )
            results.append([r for sink in sinks for r in sink.collected])
        assert results[0] == results[1]
        for unfused_record, fused_record in zip(results[0], results[1]):
            assert unfused_record.key == fused_record.key
            assert unfused_record.tags == fused_record.tags


class TestFusedOperatorUnit:
    def test_name_and_compiled(self):
        op = FusedOperator([MapOperator(lambda v: v, "a"), MapOperator(lambda v: v, "b")])
        assert op.name == "fused[a+b]"
        assert not op.fusible  # no re-fusion

    def test_empty_chain_rejected(self):
        with pytest.raises(ValueError):
            FusedOperator([])

    def test_stagewise_fallback_without_fuse_step(self):
        class PlainDouble(Operator):
            def process(self, record):
                self.output(Record(record.timestamp, record.value * 2, record.key))

        op = FusedOperator([MapOperator(lambda v: v + 1, "m"), PlainDouble("d")])
        out: List[Record] = []
        op.set_collector(
            lambda e: out.extend(e.records) if isinstance(e, RecordBatch) else out.append(e)
        )
        op.process_batch([Record(0, 1), Record(1, 2)])
        assert [r.value for r in out] == [4, 6]

    def test_traced_batch_reports_sub_operator_spans(self):
        op = FusedOperator(
            [
                MapOperator(lambda v: v + 1, "map1"),
                FilterOperator(lambda v: v % 2 == 0, "filter1"),
            ]
        )
        out: List[Record] = []
        op.set_collector(
            lambda e: out.extend(e.records) if isinstance(e, RecordBatch) else out.append(e)
        )
        tracer = TraceCollector(sample_every=1)
        assert tracer.maybe_start()
        op.process_batch_traced([Record(i, i) for i in range(10)], tracer)
        tracer.finish()
        stages = tracer.breakdown()["stages"]
        assert "map1" in stages and "filter1" in stages
        assert [r.value for r in out] == [2, 4, 6, 8, 10]

    def test_runtime_trace_breaks_down_fused_stage(self):
        """End to end: a sampled push through a fused graph attributes
        spans to the sub-operators, not one opaque fused stage."""
        obs = Observability(sample_every=1)
        sinks: List[CollectSink] = []
        runtime = JobRuntime(_chain_graph(sinks, fused=True), obs=obs)
        for i in range(8):
            runtime.push("src", Record(i, i))
        runtime.push("src", RecordBatch([Record(10 + i, i) for i in range(8)]))
        stages = obs.tracer.breakdown()["stages"]
        assert {"map1", "filter1", "key_by"} <= set(stages)

    def test_snapshot_round_trip(self):
        class Counting(Operator):
            fusible = True

            def __init__(self):
                super().__init__("counting")
                self.count = 0

            def fuse_step(self, downstream):
                def step(timestamp, value, key, tags):
                    self.count += 1
                    downstream(timestamp, value, key, tags)

                return step

            def snapshot(self):
                return self.count

            def restore(self, snapshot):
                self.count = snapshot or 0

        op = FusedOperator([MapOperator(lambda v: v, "m"), Counting()])
        op.set_collector(lambda e: None)
        op.process_batch([Record(0, 0), Record(1, 1)])
        state = op.snapshot()
        assert state["1:counting"] == 2
        restored = FusedOperator([MapOperator(lambda v: v, "m"), Counting()])
        restored.restore(state)
        assert restored.operators[1].count == 2

    def test_stateless_chain_snapshot_is_none(self):
        op = FusedOperator([MapOperator(lambda v: v, "m")])
        assert op.snapshot() is None


def _stateful_fused_job(sink_holder: List[CollectSink]):
    """Fused stateless chain feeding a keyed windowed aggregate."""

    def make_agg():
        return WindowedAggregateOperator(
            TumblingWindows(1_000),
            init=lambda: 0,
            add=lambda acc, value: acc + value,
            merge=lambda a, b: a + b,
        )

    def make_sink():
        sink = CollectSink()
        sink_holder.append(sink)
        return sink

    def build():
        graph = (
            JobGraph("fused_chaos")
            .add_source("src")
            .add_operator(
                "map1", lambda: MapOperator(lambda v: v + 1, "map1"), fusible=True
            )
            .add_operator(
                "filter1",
                lambda: FilterOperator(lambda v: v % 7 != 0, "filter1"),
                fusible=True,
            )
            .add_operator(
                "key_by",
                lambda: KeyByOperator(lambda v: v % 2, "key_by"),
                fusible=True,
            )
            .add_operator("agg", make_agg, parallelism=2)
            .add_operator("sink", make_sink)
            .connect("src", "map1")
            .connect("map1", "filter1")
            .connect("filter1", "key_by")
            .connect("key_by", "agg", Partitioning.HASH)
            .connect("agg", "sink", Partitioning.REBALANCE)
        )
        return JobRuntime(fuse_chains(graph))

    return build


class TestFusedChaos:
    def test_checkpoint_recovery_through_fused_chain(self):
        """Kill after a checkpoint mid-window; recovery must produce the
        same window results as an uninterrupted run."""
        baseline_sinks: List[CollectSink] = []
        build = _stateful_fused_job(baseline_sinks)
        baseline = build()
        for i in range(40):
            baseline.push("src", Record(i * 50, i, i % 2))
        baseline.push("src", Watermark(10_000))
        expected = sorted(
            (r.timestamp, r.key, r.value)
            for sink in baseline_sinks
            for r in sink.collected
        )

        sinks: List[CollectSink] = []
        build = _stateful_fused_job(sinks)
        coordinator = CheckpointCoordinator(build(), runtime_factory=build)
        for i in range(25):
            coordinator.push("src", Record(i * 50, i, i % 2))
        coordinator.trigger_checkpoint()
        for i in range(25, 40):
            coordinator.push("src", Record(i * 50, i, i % 2))
        # "kill": throw away the live runtime, restore + replay
        sinks.clear()
        recovered = coordinator.recover()
        recovered.push("src", Watermark(10_000))
        actual = sorted(
            (r.timestamp, r.key, r.value)
            for sink in sinks
            for r in sink.collected
        )
        assert actual == expected

    def test_injected_fault_mid_batch_then_recover(self):
        """A deliver-hook fault inside the fused stage (seeded chaos)
        aborts the push; recovery replays to the exact same output."""
        sinks: List[CollectSink] = []
        build = _stateful_fused_job(sinks)
        coordinator = CheckpointCoordinator(build(), runtime_factory=build)
        for i in range(10):
            coordinator.push("src", Record(i * 50, i, i % 2))
        coordinator.trigger_checkpoint()

        failures = {"remaining": 1}

        def deliver_hook(vertex, index, record):
            if "fused[" in vertex and record.value == 14 and failures["remaining"]:
                failures["remaining"] -= 1
                raise RuntimeError("injected fused-stage fault")

        coordinator.runtime.set_fault_hooks(deliver_hook=deliver_hook)
        with pytest.raises(RuntimeError, match="injected fused-stage fault"):
            coordinator.push(
                "src", RecordBatch([Record(500 + i, 12 + i, i % 2) for i in range(6)])
            )
        sinks.clear()
        recovered = coordinator.recover()
        recovered.push("src", Watermark(10_000))
        recovered_out = sorted(
            (r.timestamp, r.key, r.value)
            for sink in sinks
            for r in sink.collected
        )

        # The uninterrupted reference run over the same logged inputs.
        ref_sinks: List[CollectSink] = []
        ref = _stateful_fused_job(ref_sinks)()
        for i in range(10):
            ref.push("src", Record(i * 50, i, i % 2))
        ref.push(
            "src", RecordBatch([Record(500 + i, 12 + i, i % 2) for i in range(6)])
        )
        ref.push("src", Watermark(10_000))
        expected = sorted(
            (r.timestamp, r.key, r.value)
            for sink in ref_sinks
            for r in sink.collected
        )
        assert recovered_out == expected
