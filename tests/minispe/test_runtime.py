"""Tests for the push-based runtime: routing, alignment, determinism."""

from typing import List

import pytest

from repro.minispe.graph import JobGraph, Partitioning
from repro.minispe.operators import (
    FilterOperator,
    MapOperator,
    Operator,
    TwoInputOperator,
)
from repro.minispe.record import (
    ChangelogMarker,
    Record,
    StreamElement,
    Watermark,
)
from repro.minispe.runtime import JobRuntime, stable_hash
from repro.minispe.sinks import CollectSink


class _Probe(Operator):
    """Records everything delivered to it."""

    def __init__(self):
        super().__init__("probe")
        self.records: List[Record] = []
        self.watermarks: List[int] = []
        self.markers: List[ChangelogMarker] = []

    def process(self, record):
        self.records.append(record)
        self.output(record)

    def on_watermark(self, watermark):
        self.watermarks.append(watermark.timestamp)
        self.output(watermark)

    def on_marker(self, marker):
        self.markers.append(marker)
        self.output(marker)


class _TwoInputProbe(TwoInputOperator):
    def __init__(self):
        super().__init__("join_probe")
        self.left: List[Record] = []
        self.right: List[Record] = []
        self.watermarks: List[int] = []

    def process_left(self, record):
        self.left.append(record)

    def process_right(self, record):
        self.right.append(record)

    def on_watermark(self, watermark):
        self.watermarks.append(watermark.timestamp)
        self.output(watermark)


def _simple_runtime(parallelism: int = 2):
    probes: List[_Probe] = []

    def make_probe():
        probe = _Probe()
        probes.append(probe)
        return probe

    graph = (
        JobGraph()
        .add_source("src")
        .add_operator("probe", make_probe, parallelism=parallelism)
        .connect("src", "probe", Partitioning.HASH)
    )
    return JobRuntime(graph), probes


class TestStableHash:
    def test_int_identity(self):
        assert stable_hash(42) == 42

    def test_string_stable(self):
        assert stable_hash("abc") == stable_hash("abc")

    def test_distinct_strings_usually_differ(self):
        assert stable_hash("abc") != stable_hash("abd")


class TestRouting:
    def test_hash_partitioning_keeps_keys_together(self):
        runtime, probes = _simple_runtime(parallelism=3)
        for index in range(30):
            runtime.push("src", Record(timestamp=index, value=index, key=index % 5))
        for probe in probes:
            keys = {record.key for record in probe.records}
            for other in probes:
                if other is not probe:
                    assert keys.isdisjoint(
                        {record.key for record in other.records}
                    )

    def test_push_to_non_source_rejected(self):
        runtime, _ = _simple_runtime()
        with pytest.raises(KeyError):
            runtime.push("probe", Record(timestamp=0, value=0))

    def test_broadcast_reaches_all_instances(self):
        probes = []

        def make_probe():
            probe = _Probe()
            probes.append(probe)
            return probe

        graph = (
            JobGraph()
            .add_source("src")
            .add_operator("probe", make_probe, parallelism=3)
            .connect("src", "probe", Partitioning.BROADCAST)
        )
        runtime = JobRuntime(graph)
        runtime.push("src", Record(timestamp=0, value="x", key=1))
        assert all(len(probe.records) == 1 for probe in probes)

    def test_rebalance_round_robins(self):
        probes = []

        def make_probe():
            probe = _Probe()
            probes.append(probe)
            return probe

        graph = (
            JobGraph()
            .add_source("src")
            .add_operator("probe", make_probe, parallelism=2)
            .connect("src", "probe", Partitioning.REBALANCE)
        )
        runtime = JobRuntime(graph)
        for index in range(4):
            runtime.push("src", Record(timestamp=index, value=index))
        assert [len(probe.records) for probe in probes] == [2, 2]


class TestWatermarkAlignment:
    def test_watermark_broadcast_to_parallel_instances(self):
        runtime, probes = _simple_runtime(parallelism=2)
        runtime.push("src", Watermark(timestamp=100))
        assert all(probe.watermarks == [100] for probe in probes)

    def test_two_input_alignment_uses_minimum(self):
        join_holder = []

        def make_join():
            join = _TwoInputProbe()
            join_holder.append(join)
            return join

        graph = (
            JobGraph()
            .add_source("a")
            .add_source("b")
            .add_operator("join", make_join)
            .connect("a", "join", Partitioning.HASH, input_index=0)
            .connect("b", "join", Partitioning.HASH, input_index=1)
        )
        runtime = JobRuntime(graph)
        runtime.push("a", Watermark(timestamp=100))
        assert join_holder[0].watermarks == []  # b still at -inf
        runtime.push("b", Watermark(timestamp=50))
        assert join_holder[0].watermarks == [50]
        runtime.push("b", Watermark(timestamp=200))
        assert join_holder[0].watermarks == [50, 100]

    def test_regressing_watermark_ignored(self):
        runtime, probes = _simple_runtime(parallelism=1)
        runtime.push("src", Watermark(timestamp=100))
        runtime.push("src", Watermark(timestamp=50))
        assert probes[0].watermarks == [100]


class TestMarkerAlignment:
    def test_marker_delivered_once_per_instance_with_two_inputs(self):
        class _Changelog:
            sequence = 1

        join_holder = []

        def make_join():
            probe = _Probe()
            join_holder.append(probe)
            return probe

        graph = (
            JobGraph()
            .add_source("a")
            .add_source("b")
            .add_operator("merge", make_join)
            .connect("a", "merge", Partitioning.HASH)
            .connect("b", "merge", Partitioning.HASH)
        )
        runtime = JobRuntime(graph)
        marker = ChangelogMarker(timestamp=0, changelog=_Changelog())
        runtime.push("a", marker)
        assert join_holder[0].markers == []  # waiting for input b
        runtime.push("b", marker)
        assert len(join_holder[0].markers) == 1

    def test_two_input_routing(self):
        join_holder = []

        def make_join():
            join = _TwoInputProbe()
            join_holder.append(join)
            return join

        graph = (
            JobGraph()
            .add_source("a")
            .add_source("b")
            .add_operator("join", make_join)
            .connect("a", "join", Partitioning.HASH, input_index=0)
            .connect("b", "join", Partitioning.HASH, input_index=1)
        )
        runtime = JobRuntime(graph)
        runtime.push("a", Record(timestamp=0, value="left", key=1))
        runtime.push("b", Record(timestamp=0, value="right", key=1))
        join = join_holder[0]
        assert [record.value for record in join.left] == ["left"]
        assert [record.value for record in join.right] == ["right"]


class TestPipelines:
    def test_map_filter_chain(self):
        sink_holder = []

        def make_sink():
            sink = CollectSink()
            sink_holder.append(sink)
            return sink

        graph = (
            JobGraph()
            .add_source("src")
            .add_operator("double", lambda: MapOperator(lambda v: v * 2))
            .add_operator("big", lambda: FilterOperator(lambda v: v >= 6))
            .add_operator("sink", make_sink)
            .connect("src", "double", Partitioning.REBALANCE)
            .connect("double", "big", Partitioning.FORWARD)
            .connect("big", "sink", Partitioning.FORWARD)
        )
        runtime = JobRuntime(graph)
        for value in range(5):
            runtime.push("src", Record(timestamp=value, value=value))
        assert sink_holder[0].values() == [6, 8]

    def test_records_processed_counts(self):
        runtime, _ = _simple_runtime(parallelism=2)
        for index in range(10):
            runtime.push("src", Record(timestamp=index, value=index, key=index))
        assert runtime.records_processed()["probe"] == 10

    def test_determinism_same_inputs_same_outputs(self):
        def run_once():
            sink_holder = []

            def make_sink():
                sink = CollectSink()
                sink_holder.append(sink)
                return sink

            graph = (
                JobGraph()
                .add_source("src")
                .add_operator("map", lambda: MapOperator(lambda v: v + 1), 2)
                .add_operator("sink", make_sink)
                .connect("src", "map", Partitioning.HASH)
                .connect("map", "sink", Partitioning.REBALANCE)
            )
            runtime = JobRuntime(graph)
            for index in range(20):
                runtime.push(
                    "src", Record(timestamp=index, value=index, key=index % 3)
                )
            return [record.value for record in sink_holder[0].collected]

        assert run_once() == run_once()


class TestForwardChains:
    def test_forward_preserves_instance_affinity(self):
        """A forward chain keeps each key on one instance end to end."""
        probes_a, probes_b = [], []

        def make_a():
            probe = _Probe()
            probes_a.append(probe)
            return probe

        def make_b():
            probe = _Probe()
            probes_b.append(probe)
            return probe

        graph = (
            JobGraph()
            .add_source("src")
            .add_operator("first", make_a, parallelism=2)
            .add_operator("second", make_b, parallelism=2)
            .connect("src", "first", Partitioning.HASH)
            .connect("first", "second", Partitioning.FORWARD)
        )
        runtime = JobRuntime(graph)
        for index in range(20):
            runtime.push("src", Record(timestamp=index, value=index, key=index))
        for probe_a, probe_b in zip(probes_a, probes_b):
            assert [r.value for r in probe_a.records] == [
                r.value for r in probe_b.records
            ]

    def test_rebalance_counters_are_per_edge(self):
        probes_x, probes_y = [], []

        def make_x():
            probe = _Probe()
            probes_x.append(probe)
            return probe

        def make_y():
            probe = _Probe()
            probes_y.append(probe)
            return probe

        graph = (
            JobGraph()
            .add_source("src")
            .add_operator("x", make_x, parallelism=2)
            .add_operator("y", make_y, parallelism=2)
            .connect("src", "x", Partitioning.REBALANCE)
            .connect("src", "y", Partitioning.REBALANCE)
        )
        runtime = JobRuntime(graph)
        for index in range(4):
            runtime.push("src", Record(timestamp=index, value=index))
        # Each edge round-robins independently: both fan-outs are even.
        assert [len(p.records) for p in probes_x] == [2, 2]
        assert [len(p.records) for p in probes_y] == [2, 2]


class TestStableHashDistribution:
    def test_int_keys_spread_over_instances(self):
        counts = [0, 0, 0]
        for key in range(999):
            counts[stable_hash(key) % 3] += 1
        assert min(counts) > 250  # roughly uniform

    def test_string_keys_spread_over_instances(self):
        counts = [0, 0, 0]
        for key in range(999):
            counts[stable_hash(f"user-{key}") % 3] += 1
        assert min(counts) > 250
