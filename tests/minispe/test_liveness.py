"""Worker liveness probing: idle deaths and wedges, bounded detection.

Before the monitor, a worker that died while *idle* was invisible until
the next data-path send raised; a worker wedged mid-op held the
coordinator's blocked ``recv`` forever.  The pool's heartbeat monitor
(``heartbeat_interval_s``) bounds idle-death detection by the probe
period, and the ack deadline (``ack_deadline_s``) SIGKILLs a worker
with outstanding frames and no pipe progress so recovery can proceed.
The supervisor drains both via ``poll_worker_failures`` and escalates
into an ordinary supervised recovery with MTTR accounting.
"""

import os
import signal
import time

import pytest

from repro.core.engine import EngineConfig
from repro.core.parallel_engine import ProcessAStreamEngine
from repro.faults.supervisor import Supervisor, SupervisorPolicy
from repro.minispe.parallel import ProcessShardPool, ShardProgram
from repro.workloads.querygen import QueryGenerator
from repro.workloads.scenarios import sc1_schedule

HEARTBEAT_S = 0.05
DETECTION_BOUND_S = 2.0
"""Generous CI bound — the point is that detection is bounded by probe
cadence at all, not by the (possibly never) next data-path send."""


class SleepyProgram(ShardProgram):
    """Toy program that can wedge inside an op."""

    def __init__(self, shard_index, shard_count):
        self.shard_index = shard_index
        self.shard_count = shard_count
        self.values = []

    def apply(self, op):
        kind = op[0]
        if kind == "add":
            self.values.append(op[1])
            return None
        if kind == "sleep":
            time.sleep(op[1])
            return None
        if kind == "values":
            return list(self.values)
        raise ValueError(f"unknown op {kind!r}")

    def take_deliveries(self, limit=None):
        return []


def _wait_for_failures(poll, timeout_s=DETECTION_BOUND_S):
    """Poll until the liveness monitor reports; returns (failures, s)."""
    started = time.monotonic()
    while time.monotonic() - started < timeout_s:
        failures = poll()
        if failures:
            return failures, time.monotonic() - started
        time.sleep(0.01)
    return [], time.monotonic() - started


class TestPoolLiveness:
    def test_idle_worker_death_detected_within_probe_bound(self):
        pool = ProcessShardPool(
            2, SleepyProgram, heartbeat_interval_s=HEARTBEAT_S
        )
        try:
            assert pool.sync(("values",)) == [[], []]  # both alive
            # Kill behind the pool's back: the process dies while idle,
            # with no in-flight frame to error on.
            os.kill(pool._handles[0].process.pid, signal.SIGKILL)
            failures, elapsed = _wait_for_failures(pool.poll_failures)
            assert failures, (
                f"idle death not detected within {DETECTION_BOUND_S}s"
            )
            assert failures[0].shard == 0
            assert failures[0].reason == "exit"
            assert elapsed < DETECTION_BOUND_S
            assert pool.alive_workers == 1
            # The surviving shard still answers.
            assert pool.sync_one(1, ("values",)) == []
        finally:
            pool.terminate()

    def test_wedged_worker_hits_ack_deadline(self):
        pool = ProcessShardPool(
            2,
            SleepyProgram,
            frame_records=1,  # each submit ships (and counts) immediately
            heartbeat_interval_s=HEARTBEAT_S,
            ack_deadline_s=0.3,
        )
        try:
            pool.submit(0, ("sleep", 60.0))
            pool.submit(0, ("add", 1))  # outstanding work behind the wedge
            failures, _ = _wait_for_failures(pool.poll_failures)
            assert failures
            assert failures[0].shard == 0
            assert failures[0].reason == "ack_deadline"
            assert pool.alive_workers == 1
        finally:
            pool.terminate()

    def test_no_monitor_means_no_proactive_detection(self):
        pool = ProcessShardPool(2, SleepyProgram)
        try:
            os.kill(pool._handles[0].process.pid, signal.SIGKILL)
            time.sleep(0.2)
            assert pool.poll_failures() == []  # only the next send notices
        finally:
            pool.terminate()


class TestSupervisedWorkerDeath:
    def test_idle_death_recovers_with_mttr_accounting(self):
        engine = ProcessAStreamEngine(
            EngineConfig(streams=("A", "B"), parallelism=1, log_inputs=True),
            workers=2,
            heartbeat_interval_s=HEARTBEAT_S,
        )
        supervisor = Supervisor(
            engine, policy=SupervisorPolicy(checkpoint_interval_ms=0)
        )
        try:
            schedule = sc1_schedule(
                QueryGenerator(streams=("A", "B"), seed=71), 1, 2, kind="agg"
            )
            for request in schedule.sorted():
                if request.kind == "create":
                    engine.submit(request.query, now_ms=0)
            for offset in range(40):
                engine.push("A", offset * 10, {"v": offset})
            engine.watermark(1_000)
            engine.checkpoint()
            # The worker dies idle; only the heartbeat probe can see it.
            os.kill(
                engine.runtime.pool._handles[0].process.pid, signal.SIGKILL
            )
            deadline = time.monotonic() + DETECTION_BOUND_S
            event = None
            now_ms = 2_000
            while event is None and time.monotonic() < deadline:
                event = supervisor.heartbeat(now_ms)
                now_ms += 50
                time.sleep(0.01)
            assert event is not None, "supervisor never saw the death"
            assert "worker_death: shard 0 (exit)" in event.cause
            assert event.mttr_ms >= 0
            assert supervisor.worker_failures_detected == 1
            assert supervisor.recovery_count == 1
            assert supervisor.mean_mttr_ms == event.mttr_ms
            assert engine.alive_workers == 2  # recovery rebuilt the pool
            counters = engine.migration_counters()
            assert counters["worker_failures_by_reason"] == {"exit": 1}
            # The replayed engine still answers data-path calls.
            engine.push("A", 2_000, {"v": 99})
            engine.drain()
        finally:
            engine.shutdown()
