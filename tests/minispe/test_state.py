"""Tests for keyed and operator state backends."""

from repro.minispe.state import KeyedState, OperatorState


class TestKeyedState:
    def test_default_factory(self):
        state = KeyedState(default_factory=list)
        state.get("k").append(1)
        assert state.get("k") == [1]

    def test_no_factory_returns_none(self):
        state = KeyedState()
        assert state.get("missing") is None

    def test_put_and_contains(self):
        state = KeyedState()
        state.put("k", 42)
        assert state.contains("k")
        assert state.get("k") == 42

    def test_remove_is_idempotent(self):
        state = KeyedState()
        state.put("k", 1)
        state.remove("k")
        state.remove("k")
        assert not state.contains("k")

    def test_len_and_keys(self):
        state = KeyedState()
        state.put("a", 1)
        state.put("b", 2)
        assert len(state) == 2
        assert sorted(state.keys()) == ["a", "b"]

    def test_items(self):
        state = KeyedState()
        state.put("a", 1)
        assert list(state.items()) == [("a", 1)]

    def test_clear(self):
        state = KeyedState()
        state.put("a", 1)
        state.clear()
        assert len(state) == 0

    def test_snapshot_is_deep_copy(self):
        state = KeyedState(default_factory=list)
        state.get("k").append(1)
        snapshot = state.snapshot()
        state.get("k").append(2)
        assert snapshot["k"] == [1]

    def test_restore_is_deep_copy(self):
        state = KeyedState(default_factory=list)
        snapshot = {"k": [1]}
        state.restore(snapshot)
        state.get("k").append(2)
        assert snapshot["k"] == [1]
        assert state.get("k") == [1, 2]


class TestOperatorState:
    def test_initial_value(self):
        assert OperatorState(5).value == 5
        assert OperatorState().value is None

    def test_set_value(self):
        state = OperatorState()
        state.value = "x"
        assert state.value == "x"

    def test_snapshot_restore_round_trip(self):
        state = OperatorState({"nested": [1]})
        snapshot = state.snapshot()
        state.value["nested"].append(2)
        restored = OperatorState()
        restored.restore(snapshot)
        assert restored.value == {"nested": [1]}
