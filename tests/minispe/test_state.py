"""Tests for keyed and operator state backends."""

from repro.minispe.state import KeyedState, OperatorState
from repro.store.backend import make_state_store
from repro.store.lsm import LSMStateStore


class TestKeyedState:
    def test_default_factory(self):
        state = KeyedState(default_factory=list)
        state.get("k").append(1)
        assert state.get("k") == [1]

    def test_no_factory_returns_none(self):
        state = KeyedState()
        assert state.get("missing") is None

    def test_put_and_contains(self):
        state = KeyedState()
        state.put("k", 42)
        assert state.contains("k")
        assert state.get("k") == 42

    def test_remove_is_idempotent(self):
        state = KeyedState()
        state.put("k", 1)
        state.remove("k")
        state.remove("k")
        assert not state.contains("k")

    def test_len_and_keys(self):
        state = KeyedState()
        state.put("a", 1)
        state.put("b", 2)
        assert len(state) == 2
        assert sorted(state.keys()) == ["a", "b"]

    def test_items(self):
        state = KeyedState()
        state.put("a", 1)
        assert list(state.items()) == [("a", 1)]

    def test_clear(self):
        state = KeyedState()
        state.put("a", 1)
        state.clear()
        assert len(state) == 0

    def test_snapshot_is_deep_copy(self):
        state = KeyedState(default_factory=list)
        state.get("k").append(1)
        snapshot = state.snapshot()
        state.get("k").append(2)
        assert snapshot["k"] == [1]

    def test_restore_is_deep_copy(self):
        state = KeyedState(default_factory=list)
        snapshot = {"k": [1]}
        state.restore(snapshot)
        state.get("k").append(2)
        assert snapshot["k"] == [1]
        assert state.get("k") == [1, 2]

    def test_peek_does_not_create_state(self):
        state = KeyedState(default_factory=list)
        assert state.peek("ghost") is None
        assert state.peek("ghost", "d") == "d"
        assert len(state) == 0 and not state.contains("ghost")
        state.get("ghost")  # the read-modify accessor DOES create
        assert state.contains("ghost")
        state.put("k", 7)
        assert state.peek("k") == 7

    def test_snapshot_shares_immutable_values(self):
        state = KeyedState()
        scalar_tuple = (1, "a", 2.5, None)
        nested = ("outer", [1, 2])
        state.put("shared", scalar_tuple)
        state.put("copied", nested)
        state.put("n", 7)
        snapshot = state.snapshot()
        # All-immutable tuples and scalars are shared, not copied...
        assert snapshot["shared"] is scalar_tuple
        assert snapshot["n"] == 7
        # ...while anything mutable (even inside a tuple) is deep-copied.
        assert snapshot["copied"] is not nested
        assert snapshot["copied"][1] is not nested[1]
        nested[1].append(3)
        assert snapshot["copied"] == ("outer", [1, 2])

    def test_keyed_state_over_lsm_store(self):
        store = make_state_store("lsm", memtable_entries=4)
        state = KeyedState(default_factory=list, store=store)
        assert state.store is store
        for i in range(12):  # crosses the memtable cap → spills
            state.put(i, [i])
        assert isinstance(store, LSMStateStore)
        assert store.stats()["segments"] > 0
        assert len(state) == 12
        assert state.peek(3) == [3]
        snapshot = state.snapshot()
        state.get(3).append(99)
        assert snapshot[3] == [3]
        fresh = KeyedState(store=make_state_store("lsm"))
        fresh.restore(snapshot)
        assert fresh.peek(3) == [3]
        assert len(fresh) == 12
        fresh.store.close()
        store.close()


class TestOperatorState:
    def test_initial_value(self):
        assert OperatorState(5).value == 5
        assert OperatorState().value is None

    def test_set_value(self):
        state = OperatorState()
        state.value = "x"
        assert state.value == "x"

    def test_snapshot_restore_round_trip(self):
        state = OperatorState({"nested": [1]})
        snapshot = state.snapshot()
        state.value["nested"].append(2)
        restored = OperatorState()
        restored.restore(snapshot)
        assert restored.value == {"nested": [1]}
