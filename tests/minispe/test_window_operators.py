"""Tests for the substrate's per-query windowed operators."""

from typing import List

from repro.minispe.graph import JobGraph, Partitioning
from repro.minispe.record import Record, Watermark
from repro.minispe.runtime import JobRuntime
from repro.minispe.sinks import CollectSink
from repro.minispe.window_operators import (
    JoinResult,
    WindowedAggregateOperator,
    WindowedJoinOperator,
    WindowResult,
)
from repro.minispe.windows import (
    SessionWindows,
    SlidingWindows,
    TumblingWindows,
    Window,
)

import pytest


def _sum_aggregate(assigner):
    return WindowedAggregateOperator(
        assigner,
        init=lambda: 0,
        add=lambda acc, value: acc + value,
        merge=lambda a, b: a + b,
    )


def _run_aggregate(assigner, records, watermark_ts):
    collected: List[Record] = []
    operator = _sum_aggregate(assigner)
    operator.set_collector(collected.append)
    for record in records:
        operator.process(record)
    operator.on_watermark(Watermark(timestamp=watermark_ts))
    return [
        record.value
        for record in collected
        if isinstance(record, Record) and isinstance(record.value, WindowResult)
    ]


class TestWindowedAggregate:
    def test_tumbling_sum_per_key(self):
        records = [
            Record(timestamp=100, value=1, key="a"),
            Record(timestamp=200, value=2, key="a"),
            Record(timestamp=300, value=5, key="b"),
            Record(timestamp=1_100, value=7, key="a"),
        ]
        results = _run_aggregate(TumblingWindows(1_000), records, 2_000)
        by_key_window = {
            (result.key, result.window): result.value for result in results
        }
        assert by_key_window[("a", Window(0, 1_000))] == 3
        assert by_key_window[("b", Window(0, 1_000))] == 5
        assert by_key_window[("a", Window(1_000, 2_000))] == 7

    def test_window_not_fired_before_watermark(self):
        results = _run_aggregate(
            TumblingWindows(1_000),
            [Record(timestamp=100, value=1, key="a")],
            watermark_ts=998,
        )
        assert results == []

    def test_sliding_window_counts_tuple_multiple_times(self):
        results = _run_aggregate(
            SlidingWindows(2_000, 1_000),
            [Record(timestamp=1_500, value=10, key="a")],
            watermark_ts=4_000,
        )
        # ts 1500 belongs to windows [0,2000) and [1000,3000).
        assert sorted(result.window.start for result in results) == [0, 1_000]
        assert all(result.value == 10 for result in results)

    def test_session_merging(self):
        results = _run_aggregate(
            SessionWindows(1_000),
            [
                Record(timestamp=0, value=1, key="a"),
                Record(timestamp=500, value=2, key="a"),   # merges
                Record(timestamp=3_000, value=4, key="a"),  # separate session
            ],
            watermark_ts=10_000,
        )
        values = sorted(result.value for result in results)
        assert values == [3, 4]
        windows = sorted(result.window for result in results)
        assert windows[0] == Window(0, 1_500)
        assert windows[1] == Window(3_000, 4_000)

    def test_session_requires_merge_function(self):
        with pytest.raises(ValueError, match="merge"):
            WindowedAggregateOperator(
                SessionWindows(1_000), init=lambda: 0, add=lambda a, v: a + v
            )

    def test_state_removed_after_fire(self):
        operator = _sum_aggregate(TumblingWindows(1_000))
        operator.set_collector(lambda element: None)
        operator.process(Record(timestamp=0, value=1, key="a"))
        assert operator.pending_windows() == 1
        operator.on_watermark(Watermark(timestamp=2_000))
        assert operator.pending_windows() == 0

    def test_snapshot_restore_round_trip(self):
        operator = _sum_aggregate(TumblingWindows(1_000))
        operator.set_collector(lambda element: None)
        operator.process(Record(timestamp=0, value=3, key="a"))
        snapshot = operator.snapshot()

        collected = []
        fresh = _sum_aggregate(TumblingWindows(1_000))
        fresh.set_collector(collected.append)
        fresh.restore(snapshot)
        fresh.on_watermark(Watermark(timestamp=2_000))
        results = [
            r.value
            for r in collected
            if isinstance(r, Record) and isinstance(r.value, WindowResult)
        ]
        assert results[0].value == 3


class TestWindowedJoin:
    def _run_join(self, records_left, records_right, watermark_ts, assigner=None):
        collected: List[Record] = []
        operator = WindowedJoinOperator(assigner or TumblingWindows(1_000))
        operator.set_collector(collected.append)
        for record in records_left:
            operator.process_left(record)
        for record in records_right:
            operator.process_right(record)
        operator.on_watermark(Watermark(timestamp=watermark_ts))
        return [
            record
            for record in collected
            if isinstance(record, Record) and isinstance(record.value, JoinResult)
        ]

    def test_equi_join_within_window(self):
        results = self._run_join(
            [Record(timestamp=100, value="l1", key=1)],
            [
                Record(timestamp=200, value="r1", key=1),
                Record(timestamp=300, value="r2", key=2),
            ],
            watermark_ts=2_000,
        )
        assert len(results) == 1
        assert results[0].value.left == "l1"
        assert results[0].value.right == "r1"

    def test_no_join_across_windows(self):
        results = self._run_join(
            [Record(timestamp=100, value="l1", key=1)],
            [Record(timestamp=1_100, value="r1", key=1)],
            watermark_ts=3_000,
        )
        assert results == []

    def test_result_timestamp_is_newest_component(self):
        results = self._run_join(
            [Record(timestamp=100, value="l1", key=1)],
            [Record(timestamp=700, value="r1", key=1)],
            watermark_ts=2_000,
        )
        assert results[0].timestamp == 700

    def test_cross_product_per_key(self):
        results = self._run_join(
            [
                Record(timestamp=1, value="l1", key=1),
                Record(timestamp=2, value="l2", key=1),
            ],
            [
                Record(timestamp=3, value="r1", key=1),
                Record(timestamp=4, value="r2", key=1),
            ],
            watermark_ts=2_000,
        )
        pairs = {(r.value.left, r.value.right) for r in results}
        assert pairs == {
            ("l1", "r1"), ("l1", "r2"), ("l2", "r1"), ("l2", "r2"),
        }

    def test_session_windows_rejected(self):
        with pytest.raises(ValueError):
            WindowedJoinOperator(SessionWindows(1_000))

    def test_buffers_cleared_after_fire(self):
        operator = WindowedJoinOperator(TumblingWindows(1_000))
        operator.set_collector(lambda element: None)
        operator.process_left(Record(timestamp=0, value="l", key=1))
        assert operator.buffered_tuples() == 1
        operator.on_watermark(Watermark(timestamp=2_000))
        assert operator.buffered_tuples() == 0


class TestInsidePipeline:
    def test_join_in_runtime_with_parallelism(self):
        sink_holder = []

        def make_sink():
            sink = CollectSink()
            sink_holder.append(sink)
            return sink

        graph = (
            JobGraph()
            .add_source("a")
            .add_source("b")
            .add_operator(
                "join",
                lambda: WindowedJoinOperator(TumblingWindows(1_000)),
                parallelism=2,
            )
            .add_operator("sink", make_sink)
            .connect("a", "join", Partitioning.HASH, input_index=0)
            .connect("b", "join", Partitioning.HASH, input_index=1)
            .connect("join", "sink", Partitioning.REBALANCE)
        )
        runtime = JobRuntime(graph)
        for key in range(4):
            runtime.push("a", Record(timestamp=100, value=f"l{key}", key=key))
            runtime.push("b", Record(timestamp=200, value=f"r{key}", key=key))
        runtime.push("a", Watermark(timestamp=2_000))
        runtime.push("b", Watermark(timestamp=2_000))
        assert len(sink_holder[0].collected) == 4
