"""Tests for metrics primitives."""

import pytest

from repro.minispe.metrics import Counter, Gauge, Histogram, MetricRegistry


class TestCounter:
    def test_inc(self):
        counter = Counter()
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)

    def test_reset(self):
        counter = Counter()
        counter.inc(3)
        counter.reset()
        assert counter.value == 0


class TestGauge:
    def test_set(self):
        gauge = Gauge()
        gauge.set(2.5)
        assert gauge.value == 2.5


class TestHistogram:
    def test_empty_stats(self):
        histogram = Histogram()
        assert histogram.mean() == 0.0
        assert histogram.percentile(99) == 0.0
        assert histogram.minimum() == 0.0
        assert histogram.maximum() == 0.0

    def test_basic_stats(self):
        histogram = Histogram()
        for value in (1, 2, 3, 4):
            histogram.record(value)
        assert histogram.count == 4
        assert histogram.mean() == 2.5
        assert histogram.minimum() == 1
        assert histogram.maximum() == 4

    def test_percentiles(self):
        histogram = Histogram()
        for value in range(1, 101):
            histogram.record(value)
        assert histogram.percentile(50) == 50
        assert histogram.percentile(99) == 99
        assert histogram.percentile(100) == 100
        assert histogram.percentile(0) == 1

    def test_percentile_bounds(self):
        with pytest.raises(ValueError):
            Histogram().percentile(101)
        with pytest.raises(ValueError):
            Histogram().percentile(-1)

    def test_single_sample_boundaries(self):
        # Nearest-rank at the reservoir boundaries: one sample answers
        # every percentile, including p=0 and p=100 (ISSUE 4 satellite).
        histogram = Histogram()
        histogram.record(7.5)
        for p in (0, 0.1, 50, 99.9, 100):
            assert histogram.percentile(p) == 7.5

    def test_fractional_percentiles_nearest_rank(self):
        histogram = Histogram()
        for value in range(1, 11):
            histogram.record(value)
        assert histogram.percentile(0.1) == 1  # ceil(0.001*10) = rank 1
        assert histogram.percentile(10) == 1
        assert histogram.percentile(10.1) == 2
        assert histogram.percentile(99.9) == 10

    def test_quantiles_bulk_matches_percentile(self):
        histogram = Histogram()
        for value in range(1, 101):
            histogram.record(value)
        ps = (0, 25, 50, 90, 99, 100)
        assert histogram.quantiles(ps) == [
            histogram.percentile(p) for p in ps
        ]

    def test_quantiles_empty(self):
        assert Histogram().quantiles((50, 99)) == [0.0, 0.0]

    def test_reservoir_small_returns_all_sorted(self):
        histogram = Histogram()
        for value in (3, 1, 2):
            histogram.record(value)
        assert histogram.reservoir(size=64) == [1, 2, 3]

    def test_reservoir_strided_keeps_extremes_ordered(self):
        histogram = Histogram()
        for value in range(1000):
            histogram.record(value)
        reservoir = histogram.reservoir(size=64)
        assert len(reservoir) == 64
        assert reservoir == sorted(reservoir)
        assert reservoir[0] == 0
        assert reservoir[-1] == 999

    def test_sort_cache_invalidation(self):
        histogram = Histogram()
        histogram.record(5)
        assert histogram.percentile(50) == 5
        histogram.record(1)  # must invalidate the cached sort
        assert histogram.percentile(0) == 1

    def test_max_samples_drops(self):
        histogram = Histogram(max_samples=2)
        for value in range(5):
            histogram.record(value)
        assert histogram.count == 2
        assert histogram.dropped == 3

    def test_reset(self):
        histogram = Histogram()
        histogram.record(1)
        histogram.reset()
        assert histogram.count == 0


class TestMetricRegistry:
    def test_lazy_creation_and_reuse(self):
        registry = MetricRegistry()
        counter = registry.counter("c")
        counter.inc()
        assert registry.counter("c").value == 1

    def test_counter_value_missing(self):
        assert MetricRegistry().counter_value("nope") is None

    def test_snapshot(self):
        registry = MetricRegistry()
        registry.counter("c").inc(2)
        registry.gauge("g").set(1.5)
        registry.histogram("h").record(10)
        snapshot = registry.snapshot()
        assert snapshot["c"] == 2
        assert snapshot["g"] == 1.5
        assert snapshot["h.mean"] == 10
