"""Tests for the job graph."""

import pytest

from repro.minispe.graph import JobGraph, Partitioning
from repro.minispe.operators import MapOperator


def _op():
    return MapOperator(lambda value: value)


class TestConstruction:
    def test_duplicate_vertex_rejected(self):
        graph = JobGraph().add_source("src")
        with pytest.raises(ValueError):
            graph.add_source("src")

    def test_unknown_edge_endpoints_rejected(self):
        graph = JobGraph().add_source("src")
        with pytest.raises(KeyError):
            graph.connect("src", "nope")
        with pytest.raises(KeyError):
            graph.connect("nope", "src")

    def test_invalid_input_index(self):
        graph = JobGraph().add_source("a").add_operator("b", _op)
        with pytest.raises(ValueError):
            graph.connect("a", "b", input_index=2)

    def test_zero_parallelism_rejected(self):
        with pytest.raises(ValueError):
            JobGraph().add_operator("op", _op, parallelism=0)


class TestValidation:
    def test_no_source_rejected(self):
        graph = JobGraph().add_operator("op", _op)
        with pytest.raises(ValueError, match="no source"):
            graph.validate()

    def test_orphan_operator_rejected(self):
        graph = JobGraph().add_source("src").add_operator("op", _op)
        with pytest.raises(ValueError, match="no inputs"):
            graph.validate()

    def test_forward_parallelism_mismatch_rejected(self):
        graph = (
            JobGraph()
            .add_source("src")
            .add_operator("op", _op, parallelism=2)
            .connect("src", "op", Partitioning.FORWARD)
        )
        with pytest.raises(ValueError, match="forward edge"):
            graph.validate()

    def test_cycle_rejected(self):
        graph = (
            JobGraph()
            .add_source("src")
            .add_operator("a", _op)
            .add_operator("b", _op)
            .connect("src", "a", Partitioning.REBALANCE)
            .connect("a", "b", Partitioning.REBALANCE)
            .connect("b", "a", Partitioning.REBALANCE)
        )
        with pytest.raises(ValueError, match="cycle"):
            graph.validate()

    def test_valid_graph_passes(self):
        graph = (
            JobGraph()
            .add_source("src")
            .add_operator("op", _op, parallelism=3)
            .connect("src", "op", Partitioning.HASH)
        )
        graph.validate()


class TestQueries:
    def _diamond(self) -> JobGraph:
        return (
            JobGraph("diamond")
            .add_source("src")
            .add_operator("left", _op)
            .add_operator("right", _op)
            .add_operator("sink", _op)
            .connect("src", "left", Partitioning.REBALANCE)
            .connect("src", "right", Partitioning.REBALANCE)
            .connect("left", "sink", Partitioning.REBALANCE)
            .connect("right", "sink", Partitioning.REBALANCE)
        )

    def test_topological_order(self):
        order = self._diamond().topological_order()
        assert order[0] == "src"
        assert order[-1] == "sink"
        assert set(order) == {"src", "left", "right", "sink"}

    def test_in_out_edges(self):
        graph = self._diamond()
        assert {edge.target for edge in graph.out_edges("src")} == {"left", "right"}
        assert {edge.source for edge in graph.in_edges("sink")} == {"left", "right"}

    def test_total_instances_excludes_sources(self):
        graph = (
            JobGraph()
            .add_source("src")
            .add_operator("a", _op, parallelism=3)
            .add_operator("b", _op, parallelism=2)
            .connect("src", "a", Partitioning.REBALANCE)
            .connect("a", "b", Partitioning.REBALANCE)
        )
        assert graph.total_instances() == 5

    def test_sources(self):
        graph = self._diamond()
        assert [vertex.name for vertex in graph.sources()] == ["src"]


def test_repr_smoke():
    graph = (
        JobGraph("pretty")
        .add_source("src")
        .add_operator("op", _op)
        .connect("src", "op", Partitioning.REBALANCE)
    )
    text = repr(graph)
    assert "pretty" in text
    assert "vertices=2" in text
