"""Tests for source helpers and sink operators."""

import pytest

from repro.minispe.record import Record, Watermark
from repro.minispe.sinks import CallbackSink, CollectSink, CountingSink
from repro.minispe.sources import (
    ReplayableSource,
    final_watermark,
    records_from,
    with_periodic_watermarks,
)


class TestRecordsFrom:
    def test_uses_value_key_attribute(self):
        class Value:
            key = 7

        records = list(records_from([(10, Value())]))
        assert records[0].key == 7
        assert records[0].timestamp == 10

    def test_key_fn_override(self):
        records = list(records_from([(1, "abc")], key_fn=len))
        assert records[0].key == 3


class TestPeriodicWatermarks:
    def test_watermarks_interleaved(self):
        records = [Record(timestamp=ts, value=ts) for ts in (100, 600, 1_200)]
        elements = list(with_periodic_watermarks(records, interval_ms=500))
        kinds = [type(element).__name__ for element in elements]
        assert kinds == ["Record", "Watermark", "Record", "Watermark", "Record"]
        watermarks = [e.timestamp for e in elements if isinstance(e, Watermark)]
        assert watermarks == [500, 1_000]

    def test_lateness_delays_watermarks(self):
        records = [Record(timestamp=ts, value=ts) for ts in (600, 1_200)]
        elements = list(
            with_periodic_watermarks(records, interval_ms=500, lateness_ms=300)
        )
        watermarks = [e.timestamp for e in elements if isinstance(e, Watermark)]
        assert watermarks == [500]  # 1200-300=900 < 1000, second held back

    def test_validation(self):
        with pytest.raises(ValueError):
            list(with_periodic_watermarks([], interval_ms=0))
        with pytest.raises(ValueError):
            list(with_periodic_watermarks([], interval_ms=10, lateness_ms=-1))

    def test_final_watermark(self):
        assert final_watermark(99).timestamp == 99


class TestReplayableSource:
    def test_log_and_replay(self):
        source = ReplayableSource("src")
        elements = [Record(timestamp=i, value=i) for i in range(5)]
        for element in elements:
            source.record(element)
        assert source.position == 5
        assert list(source.replay_from(3)) == elements[3:]

    def test_negative_offset_rejected(self):
        with pytest.raises(ValueError):
            list(ReplayableSource("src").replay_from(-1))


class TestSinks:
    def test_collect_sink(self):
        sink = CollectSink()
        sink.process(Record(timestamp=1, value="x"))
        assert sink.values() == ["x"]
        snapshot = sink.snapshot()
        sink.process(Record(timestamp=2, value="y"))
        sink.restore(snapshot)
        assert sink.values() == ["x"]

    def test_callback_sink(self):
        seen = []
        sink = CallbackSink(seen.append)
        record = Record(timestamp=1, value="x")
        sink.process(record)
        assert seen == [record]

    def test_callback_sink_watermark_hook(self):
        marks = []
        sink = CallbackSink(lambda record: None, watermark_callback=marks.append)
        sink.on_watermark(Watermark(timestamp=9))
        assert marks[0].timestamp == 9

    def test_counting_sink(self):
        sink = CountingSink()
        for index in range(3):
            sink.process(Record(timestamp=index, value=index))
        assert sink.count == 3
        snapshot = sink.snapshot()
        sink.process(Record(timestamp=9, value=9))
        sink.restore(snapshot)
        assert sink.count == 3

    def test_sinks_swallow_control_elements(self):
        # Terminal operators must not forward (they have no collector).
        for sink in (CollectSink(), CountingSink()):
            sink.on_watermark(Watermark(timestamp=1))
            sink.on_marker(None)
