"""Tests for the virtual clock."""

import pytest

from repro.minispe.time import MS_PER_SECOND, VirtualClock, seconds


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now_ms == 0

    def test_custom_start(self):
        assert VirtualClock(start_ms=500).now_ms == 500

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock(start_ms=-1)

    def test_advance(self):
        clock = VirtualClock()
        assert clock.advance(250) == 250
        assert clock.advance(250) == 500

    def test_advance_negative_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-1)

    def test_advance_to(self):
        clock = VirtualClock()
        clock.advance_to(1_000)
        assert clock.now_ms == 1_000

    def test_advance_to_backwards_rejected(self):
        clock = VirtualClock(start_ms=100)
        with pytest.raises(ValueError):
            clock.advance_to(99)

    def test_advance_to_same_time_allowed(self):
        clock = VirtualClock(start_ms=100)
        assert clock.advance_to(100) == 100


def test_seconds_helper():
    assert seconds(2) == 2 * MS_PER_SECOND
    assert seconds(0.5) == 500
