"""Tests for checkpoint coordination and replay recovery."""

from typing import List

import pytest

from repro.minispe.checkpoint import (
    CheckpointCoordinator,
    CheckpointFailed,
    SourceLog,
)
from repro.minispe.graph import JobGraph, Partitioning
from repro.minispe.record import Record, Watermark
from repro.minispe.runtime import JobRuntime
from repro.minispe.sinks import CollectSink
from repro.minispe.window_operators import WindowedAggregateOperator
from repro.minispe.windows import TumblingWindows


class TestSourceLog:
    def test_global_order_preserved(self):
        log = SourceLog(["a", "b"])
        log.append("a", Record(timestamp=1, value=1))
        log.append("b", Record(timestamp=2, value=2))
        log.append("a", Record(timestamp=3, value=3))
        replayed = log.replay(0)
        assert [source for source, _ in replayed] == ["a", "b", "a"]

    def test_replay_from_offset(self):
        log = SourceLog(["a"])
        for index in range(5):
            log.append("a", Record(timestamp=index, value=index))
        assert len(log.replay(3)) == 2

    def test_unknown_source_rejected(self):
        log = SourceLog(["a"])
        with pytest.raises(KeyError):
            log.append("b", Record(timestamp=0, value=0))

    def test_empty_sources_rejected(self):
        with pytest.raises(ValueError):
            SourceLog([])


def _make_job(sink_holder: List[CollectSink]):
    def make_agg():
        return WindowedAggregateOperator(
            TumblingWindows(1_000),
            init=lambda: 0,
            add=lambda acc, value: acc + value,
            merge=lambda a, b: a + b,
        )

    def make_sink():
        sink = CollectSink()
        sink_holder.append(sink)
        return sink

    def build():
        graph = (
            JobGraph("agg_job")
            .add_source("src")
            .add_operator("agg", make_agg, parallelism=2)
            .add_operator("sink", make_sink)
            .connect("src", "agg", Partitioning.HASH)
            .connect("agg", "sink", Partitioning.REBALANCE)
        )
        return JobRuntime(graph)

    return build


class TestCheckpointCoordinator:
    def test_checkpoint_completes_synchronously(self):
        sinks: List[CollectSink] = []
        build = _make_job(sinks)
        coordinator = CheckpointCoordinator(build(), runtime_factory=build)
        coordinator.push("src", Record(timestamp=10, value=1, key=0))
        checkpoint_id = coordinator.trigger_checkpoint()
        assert coordinator.last_completed is not None
        assert coordinator.last_completed.checkpoint_id == checkpoint_id
        assert coordinator.last_completed.offset == 1

    def test_recovery_resumes_mid_window(self):
        """State before the checkpoint + replay after it = same results."""
        sinks: List[CollectSink] = []
        build = _make_job(sinks)
        coordinator = CheckpointCoordinator(build(), runtime_factory=build)

        coordinator.push("src", Record(timestamp=100, value=1, key=0))
        coordinator.push("src", Record(timestamp=200, value=2, key=0))
        coordinator.trigger_checkpoint()
        coordinator.push("src", Record(timestamp=300, value=4, key=0))

        # Crash: all live state is lost; recover from the checkpoint.
        sinks.clear()
        coordinator.recover()
        coordinator.push("src", Watermark(timestamp=2_000))
        results = [record.value for sink in sinks for record in sink.collected]
        assert len(results) == 1
        assert results[0].value == 1 + 2 + 4

    def test_recovery_without_checkpoint_replays_everything(self):
        sinks: List[CollectSink] = []
        build = _make_job(sinks)
        coordinator = CheckpointCoordinator(build(), runtime_factory=build)
        coordinator.push("src", Record(timestamp=100, value=5, key=0))
        sinks.clear()
        coordinator.recover()
        coordinator.push("src", Watermark(timestamp=2_000))
        results = [record.value for sink in sinks for record in sink.collected]
        assert results[0].value == 5

    def test_recovery_requires_factory(self):
        sinks: List[CollectSink] = []
        build = _make_job(sinks)
        coordinator = CheckpointCoordinator(build())
        with pytest.raises(RuntimeError):
            coordinator.recover()

    def test_exactly_once_no_duplicates_after_recovery(self):
        """Pre-checkpoint records must not be double-counted on replay."""
        sinks: List[CollectSink] = []
        build = _make_job(sinks)
        coordinator = CheckpointCoordinator(build(), runtime_factory=build)
        for index in range(10):
            coordinator.push(
                "src", Record(timestamp=100 + index, value=1, key=index % 2)
            )
        coordinator.trigger_checkpoint()
        sinks.clear()
        coordinator.recover()
        coordinator.push("src", Watermark(timestamp=2_000))
        total = sum(
            record.value.value for sink in sinks for record in sink.collected
        )
        assert total == 10  # each record counted exactly once

    def test_repeated_checkpoints_advance_offsets(self):
        sinks: List[CollectSink] = []
        build = _make_job(sinks)
        coordinator = CheckpointCoordinator(build(), runtime_factory=build)
        coordinator.push("src", Record(timestamp=1, value=1, key=0))
        coordinator.trigger_checkpoint()
        coordinator.push("src", Record(timestamp=2, value=1, key=0))
        coordinator.trigger_checkpoint()
        offsets = [checkpoint.offset for checkpoint in coordinator.completed]
        assert offsets == [1, 2]


class TestBarrierAlignment:
    def test_barrier_on_one_source_does_not_complete(self):
        """A two-source job snapshots only when barriers are aligned."""
        from repro.minispe.graph import JobGraph, Partitioning
        from repro.minispe.operators import MapOperator
        from repro.minispe.record import CheckpointBarrier

        sink_holder: List[CollectSink] = []

        def make_sink():
            sink = CollectSink()
            sink_holder.append(sink)
            return sink

        graph = (
            JobGraph()
            .add_source("a")
            .add_source("b")
            .add_operator("merge", lambda: MapOperator(lambda v: v))
            .add_operator("sink", make_sink)
            .connect("a", "merge", Partitioning.HASH)
            .connect("b", "merge", Partitioning.HASH)
            .connect("merge", "sink", Partitioning.FORWARD)
        )
        runtime = JobRuntime(graph)
        barrier = CheckpointBarrier(timestamp=0, checkpoint_id=1)
        runtime.push("a", barrier)
        assert runtime.completed_checkpoint(1) is None  # b missing
        runtime.push("b", barrier)
        assert runtime.completed_checkpoint(1) is not None

    def test_interleaved_data_between_barriers_lands_post_snapshot(self):
        """Records arriving between the two sources' barriers are part of
        the post-checkpoint epoch in the snapshot of aligned operators."""
        from repro.minispe.graph import JobGraph, Partitioning
        from repro.minispe.record import CheckpointBarrier

        def make_agg():
            return WindowedAggregateOperator(
                TumblingWindows(10_000),
                init=lambda: 0,
                add=lambda acc, value: acc + value,
                merge=lambda a, b: a + b,
            )

        agg_holder = []

        def tracked_agg():
            operator = make_agg()
            agg_holder.append(operator)
            return operator

        graph = (
            JobGraph()
            .add_source("a")
            .add_source("b")
            .add_operator("agg", tracked_agg)
            .connect("a", "agg", Partitioning.HASH)
            .connect("b", "agg", Partitioning.HASH)
        )
        runtime = JobRuntime(graph)
        runtime.push("a", Record(timestamp=1, value=1, key=0))
        barrier = CheckpointBarrier(timestamp=0, checkpoint_id=1)
        runtime.push("a", barrier)
        # In-flight record on the other source before ITS barrier: the
        # snapshot is taken at alignment, so this record is included —
        # it belongs to the pre-checkpoint epoch of source b.
        runtime.push("b", Record(timestamp=2, value=10, key=0))
        runtime.push("b", barrier)
        snapshot = runtime.completed_checkpoint(1)
        acc_state = snapshot["agg"][0]
        total = sum(acc_state.values())
        assert total == 11

class TestSourceLogCompaction:
    def test_truncate_keeps_global_offsets_stable(self):
        log = SourceLog(["a"])
        for index in range(6):
            log.append("a", Record(timestamp=index, value=index))
        assert log.truncate(4) == 4
        assert log.base_offset == 4
        assert log.retained == 2
        assert log.position == 6  # global offsets keep advancing
        assert [record.value for _, record in log.replay(4)] == [4, 5]

    def test_truncate_below_base_is_a_noop(self):
        log = SourceLog(["a"])
        for index in range(4):
            log.append("a", Record(timestamp=index, value=index))
        log.truncate(3)
        assert log.truncate(1) == 0
        assert log.base_offset == 3

    def test_truncate_beyond_position_rejected(self):
        log = SourceLog(["a"])
        log.append("a", Record(timestamp=0, value=0))
        with pytest.raises(ValueError):
            log.truncate(2)

    def test_replay_of_compacted_offset_rejected(self):
        log = SourceLog(["a"])
        for index in range(4):
            log.append("a", Record(timestamp=index, value=index))
        log.truncate(2)
        with pytest.raises(ValueError, match="compacted"):
            log.replay(1)

    def test_coordinator_compaction_preserves_recovery(self):
        sinks: List[CollectSink] = []
        build = _make_job(sinks)
        coordinator = CheckpointCoordinator(build(), runtime_factory=build)
        coordinator.push("src", Record(timestamp=100, value=1, key=0))
        coordinator.trigger_checkpoint()
        coordinator.push("src", Record(timestamp=200, value=2, key=0))
        coordinator.trigger_checkpoint()
        coordinator.push("src", Record(timestamp=300, value=4, key=0))
        dropped = coordinator.compact()
        assert dropped == 2
        assert coordinator.completed == [coordinator.last_completed]
        sinks.clear()
        coordinator.recover()
        coordinator.push("src", Watermark(timestamp=2_000))
        results = [record.value for sink in sinks for record in sink.collected]
        assert results[0].value == 1 + 2 + 4  # nothing lost to compaction

    def test_auto_compact_bounds_retained_entries(self):
        sinks: List[CollectSink] = []
        build = _make_job(sinks)
        coordinator = CheckpointCoordinator(
            build(), runtime_factory=build, auto_compact=True
        )
        for step in range(10):
            coordinator.push("src", Record(timestamp=step, value=1, key=0))
            coordinator.trigger_checkpoint()
        assert coordinator.log.retained == 0
        assert len(coordinator.completed) == 1


class TestFailedCheckpoints:
    def _failing(self, coordinator):
        """Make the *current* runtime refuse to acknowledge snapshots."""
        coordinator.runtime.completed_checkpoint = lambda checkpoint_id: None

    def test_failed_checkpoint_raises_and_is_dropped(self):
        sinks: List[CollectSink] = []
        build = _make_job(sinks)
        coordinator = CheckpointCoordinator(build(), runtime_factory=build)
        coordinator.push("src", Record(timestamp=100, value=1, key=0))
        first = coordinator.trigger_checkpoint()
        self._failing(coordinator)
        with pytest.raises(CheckpointFailed) as excinfo:
            coordinator.trigger_checkpoint()
        assert excinfo.value.checkpoint_id == first + 1
        # The completed list is untouched by the failure.
        assert [c.checkpoint_id for c in coordinator.completed] == [first]

    def test_recovery_after_failed_checkpoint_uses_previous(self):
        sinks: List[CollectSink] = []
        build = _make_job(sinks)
        coordinator = CheckpointCoordinator(build(), runtime_factory=build)
        coordinator.push("src", Record(timestamp=100, value=1, key=0))
        coordinator.trigger_checkpoint()
        coordinator.push("src", Record(timestamp=200, value=2, key=0))
        self._failing(coordinator)
        with pytest.raises(CheckpointFailed):
            coordinator.trigger_checkpoint()
        sinks.clear()
        coordinator.recover()  # falls back to checkpoint 1 + replay
        coordinator.push("src", Watermark(timestamp=2_000))
        results = [record.value for sink in sinks for record in sink.collected]
        assert len(results) == 1
        assert results[0].value == 1 + 2

    def test_checkpoint_ids_advance_past_a_failure(self):
        sinks: List[CollectSink] = []
        build = _make_job(sinks)
        coordinator = CheckpointCoordinator(build(), runtime_factory=build)
        coordinator.push("src", Record(timestamp=100, value=1, key=0))
        first = coordinator.trigger_checkpoint()
        self._failing(coordinator)
        with pytest.raises(CheckpointFailed):
            coordinator.trigger_checkpoint()
        coordinator.recover()  # fresh runtime: snapshots work again
        third = coordinator.trigger_checkpoint()
        assert third == first + 2  # the failed id is not reused
        assert coordinator.last_completed.checkpoint_id == third
